#!/usr/bin/env python3
"""Hunting concurrency bugs with stateless model checking (section 6).

Recreates the paper's Fig. 4 workflow:

1. model-check the correct implementation's compaction/reclamation harness
   -- hundreds of explored interleavings, no failure;
2. re-inject issue #14 (compaction does not pin the extent it writes the
   merged run into) and let PCT find the losing interleaving;
3. replay the failing schedule deterministically;
4. show the Loom-style exhaustive checker proving a small primitive
   (the superblock buffer pool) deadlock-free -- and finding the issue #12
   deadlock when the flush's lock order is inverted.

    python examples/concurrent_race_hunt.py
"""

from repro.concurrency import DeadlockError, model, replay
from repro.concurrency.scheduler import TaskFailed
from repro.core.concurrent_harnesses import (
    buffer_pool_harness,
    compaction_reclaim_harness,
)
from repro.shardstore import Fault, FaultSet


def main() -> None:
    print("== 1. correct implementation under PCT ==")
    result = model(
        compaction_reclaim_harness(FaultSet.none()),
        strategy="pct",
        iterations=150,
        seed=3,
        pct_steps_hint=128,
    )
    assert result.passed
    print(f"  {result.executions} interleavings ({result.total_steps} scheduling "
          "decisions): read-after-write consistency holds\n")

    print("== 2. re-inject issue #14 (compaction/reclamation race) ==")
    faulty = compaction_reclaim_harness(
        FaultSet.only(Fault.COMPACTION_RECLAIM_RACE)
    )
    result = model(faulty, strategy="pct", iterations=300, seed=3,
                   pct_steps_hint=128)
    assert not result.passed
    assert isinstance(result.failure, TaskFailed)
    print(f"  race found after {result.executions} interleavings:")
    print(f"    {result.failure.original}")
    print(f"  failing schedule has {len(result.failing_schedule)} decisions\n")

    print("== 3. deterministic replay of the failing schedule ==")
    try:
        replay(faulty, result.failing_schedule)
    except TaskFailed as exc:
        print(f"  replayed: {exc.original}\n")

    print("== 4. exhaustive (Loom-style) checking of the buffer pool ==")
    result = model(buffer_pool_harness(FaultSet.none()), strategy="dfs")
    assert result.passed and result.exhausted
    print(f"  correct lock order: all {result.executions} interleavings "
          "explored, no deadlock (a proof, not a sample)")
    result = model(
        buffer_pool_harness(FaultSet.only(Fault.BUFFER_POOL_DEADLOCK)),
        strategy="random",
        iterations=300,
        seed=3,
    )
    assert not result.passed and isinstance(result.failure, DeadlockError)
    print(f"  inverted lock order (issue #12): deadlock found after "
          f"{result.executions} interleavings:\n    {result.failure}")


if __name__ == "__main__":
    main()
