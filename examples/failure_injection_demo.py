#!/usr/bin/env python3
"""Failure injection and relaxed conformance checking (section 4.4).

Disks fail; at S3's scale they fail constantly, and ShardStore must handle
IO errors without operator intervention.  This example shows:

1. a transient read failure surfacing through the API and the store
   carrying on afterwards;
2. the conformance harness's *relaxed equivalence*: after an injected
   failure an operation may fail with no data, but may never return wrong
   data -- and untouched keys stay strictly checked;
3. the property-based failure-injection suite (the ``FailDiskOnce``
   alphabet) running clean against the correct implementation.

    python examples/failure_injection_demo.py
"""

from repro.core import BiasConfig, StoreHarness, failure_alphabet, run_conformance
from repro.shardstore import (
    FailureMode,
    FaultSet,
    IoError,
    StoreConfig,
    StoreSystem,
)


def main() -> None:
    system = StoreSystem(StoreConfig(seed=5))
    store = system.store

    print("== 1. a transient read failure ==")
    store.put(b"important", b"payload" * 40)
    store.flush_index()
    store.drain()
    extent = store.index.get(b"important")[0].extent
    store.cache.invalidate_all()  # force the next read to touch the disk
    system.disk.arm_fault(extent, FailureMode.ONCE, writes=False)
    try:
        store.get(b"important")
    except IoError as exc:
        print(f"  read failed as injected: {exc}")
    value = store.get(b"important")  # transient: the retry succeeds
    print(f"  retry succeeded: {len(value)} bytes intact\n")

    print("== 2. relaxed equivalence after a failed write ==")
    harness = StoreHarness(FaultSet.none(), seed=9)
    hstore = harness.system.store
    hstore.put(b"stable", b"S" * 100)
    harness.model.put(b"stable", b"S" * 100)
    from repro.core.alphabet import Operation

    # Arm a write fault, then attempt a put that will fail midway.
    target = harness.system.config.data_extents[0]
    failure = harness.apply(0, Operation("FailDiskOnce", (target,)))
    assert failure is None
    failure = harness.apply(1, Operation("PumpIo", (50,)))  # fault fires here
    assert failure is None
    print(f"  harness entered relaxed mode (has_failed={harness.has_failed})")
    # The untouched key is still checked strictly:
    failure = harness.apply(2, Operation("Get", (b"stable",)))
    print(f"  strict check on untouched key: "
          f"{'violation!' if failure else 'passes'}\n")

    print("== 3. the failure-injection property suite (correct impl) ==")
    report = run_conformance(
        lambda seed: StoreHarness(FaultSet.none(), seed),
        failure_alphabet(),
        sequences=40,
        ops_per_sequence=80,
        bias=BiasConfig(),
    )
    assert report.passed, report.failure
    print(f"  {report.sequences_run} sequences with injected IO failures: "
          "no wrong data ever returned")


if __name__ == "__main__":
    main()
