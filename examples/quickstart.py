#!/usr/bin/env python3
"""Quickstart: a ShardStore key-value store and its durability promises.

Runs a single-disk store through the basic API -- put/get/delete -- and
shows the soft-updates machinery the paper is built around: every mutating
operation returns a ``Dependency`` that can be polled with
``is_persistent()``, writeback happens asynchronously in dependency order,
and a clean reboot recovers everything.

    python examples/quickstart.py
"""

from repro.shardstore import NotFoundError, StoreConfig, StoreSystem


def main() -> None:
    system = StoreSystem(StoreConfig(seed=42))
    store = system.store

    print("== putting three shards ==")
    deps = {}
    for name, payload in [
        (b"shard-alpha", b"A" * 300),
        (b"shard-beta", b"B" * 150),
        (b"shard-gamma", b"C" * 500),
    ]:
        deps[name] = store.put(name, payload)
        print(f"  put {name.decode():<12} ({len(payload)} bytes)  "
              f"persistent={deps[name].is_persistent()}")

    print("\n== reads are served immediately (write-back is asynchronous) ==")
    print(f"  get shard-beta -> {len(store.get(b'shard-beta'))} bytes")
    print(f"  pending IO records: {store.pending_io_count}")

    print("\n== durability arrives as the IO scheduler writes back ==")
    store.flush_index()       # the index entry leg of each put's dependency
    store.flush_superblock()  # the soft-write-pointer leg
    while store.pending_io_count:
        store.pump(4)
        persistent = sum(1 for d in deps.values() if d.is_persistent())
        print(f"  pumped 4 IOs; persistent puts: {persistent}/3, "
              f"pending: {store.pending_io_count}")

    print("\n== delete and clean reboot ==")
    store.delete(b"shard-beta")
    store = system.clean_reboot()
    print(f"  keys after reboot: {[k.decode() for k in store.keys()]}")
    try:
        store.get(b"shard-beta")
    except NotFoundError:
        print("  shard-beta is gone (tombstone persisted), as expected")
    assert store.get(b"shard-alpha") == b"A" * 300
    assert store.get(b"shard-gamma") == b"C" * 500
    print("  surviving shards read back intact")

    print("\n== forward progress (section 5): after a clean shutdown, every "
          "dependency reports persistent ==")
    print(f"  {all(d.is_persistent() for d in deps.values())}")


if __name__ == "__main__":
    main()
