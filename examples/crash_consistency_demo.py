#!/usr/bin/env python3
"""Crash-consistency checking end to end (section 5).

Demonstrates the paper's two crash properties on a live store:

1. runs the crash-consistency property test on the *correct*
   implementation -- dirty reboots at arbitrary writeback points never
   violate persistence;
2. re-injects the paper's issue #8 (a write missing its soft-write-pointer
   dependency), lets the checker find it, and minimizes the failing
   sequence to a handful of operations, just like section 4.3.

    python examples/crash_consistency_demo.py
"""

from repro.core import (
    BiasConfig,
    StoreHarness,
    crash_alphabet,
    minimize,
    replay_fails,
    run_conformance,
)
from repro.shardstore import Fault, FaultSet


def main() -> None:
    print("== 1. correct implementation: crash states are always consistent ==")
    report = run_conformance(
        lambda seed: StoreHarness(FaultSet.none(), seed),
        crash_alphabet(),
        sequences=40,
        ops_per_sequence=80,
        bias=BiasConfig(),
    )
    assert report.passed, report.failure
    print(f"  {report.sequences_run} random histories with dirty reboots: "
          "no persistence or forward-progress violation\n")

    print("== 2. re-inject issue #8 (write missing soft-pointer dependency) ==")
    fault = FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP)
    factory = lambda seed: StoreHarness(fault, seed)  # noqa: E731
    report = run_conformance(
        factory,
        crash_alphabet(),
        sequences=40,
        ops_per_sequence=80,
        bias=BiasConfig(),
    )
    assert not report.passed
    print(f"  detected after {report.sequences_run} sequences:")
    print(f"    {report.failure}\n")

    print("== 3. automatic minimization (section 4.3) ==")
    fails = replay_fails(factory, report.failing_seed)
    reduced, stats = minimize(report.failing_sequence, fails)
    print(f"  {stats.initial_ops} ops / {stats.initial_crashes} crashes / "
          f"{stats.initial_bytes_written} bytes written")
    print(f"    -> {stats.final_ops} ops / {stats.final_crashes} crash / "
          f"{stats.final_bytes_written} bytes")
    print("  minimized reproducer:")
    for op in reduced:
        print(f"    {op}")
    assert fails(reduced), "minimized sequence must still fail"
    print("  (replays deterministically)")


if __name__ == "__main__":
    main()
