#!/usr/bin/env python3
"""Verifying the reference models themselves (section 3.2).

The specifications in this methodology are executable reference models --
and specifications can be wrong too: the paper's issue #15 was a bug in
the chunk-store *model* (reused locators), and issue #9 a bug in the
crash-aware model.  Section 3.2 describes early experiments proving
properties of the models with the Prusti verifier.

This example reproduces that layer with bounded-exhaustive verification:
every operation sequence up to a depth bound over a closed argument
universe, checked against temporal properties.  Within the bound, it is a
proof.

    python examples/model_verification.py
"""

from repro.core.model_verify import (
    verify_chunkstore_model,
    verify_kv_model,
)
from repro.shardstore import Fault, FaultSet


def main() -> None:
    print("== 1. the paper's example property on the KV reference model ==")
    print("   'a mapping is removed if and only if a delete was received'")
    result = verify_kv_model(depth=4)
    assert result.verified
    print(f"   verified over ALL {result.sequences_checked:,} operation "
          f"sequences up to depth {result.max_depth} (a bounded proof)\n")

    print("== 2. the chunk-store model's locator-uniqueness invariant ==")
    result = verify_chunkstore_model(depth=5)
    assert result.verified
    print(f"   verified over {result.sequences_checked:,} sequences\n")

    print("== 3. re-inject the paper's issue #15 (model reuses locators) ==")
    result = verify_chunkstore_model(
        depth=5, faults=FaultSet.only(Fault.MODEL_REUSES_LOCATORS)
    )
    assert not result.verified
    print(f"   counterexample found: {result.message}")
    print("   sequence:")
    for op in result.counterexample:
        print(f"     {op}")
    print("\n   (the small-scope hypothesis at work: the spec bug that bit "
          "the paper's team\n   is provably present within a handful of "
          "operations)")


if __name__ == "__main__":
    main()
