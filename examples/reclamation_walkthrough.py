#!/usr/bin/env python3
"""Walkthrough of chunk storage and reclamation (the paper's Fig. 1).

Builds the exact Fig. 1 scenario: three shards stored as chunks on
extents, one deleted (leaving an unreferenced chunk -- the hole), then
chunk reclamation evacuating the live chunks, updating the index, and
resetting the extent so its space is reusable.  Prints the on-disk layout
before and after, like the figure.

    python examples/reclamation_walkthrough.py
"""

from repro.shardstore import StoreConfig, StoreSystem
from repro.shardstore.chunk import PagedReader, scan_chunks


def render_layout(store, title: str) -> None:
    print(title)
    page = store.config.geometry.page_size
    for extent in store.chunk_store.owned_extents():
        limit = store.scheduler.soft_pointer(extent)
        reader = PagedReader(
            lambda off, length, e=extent: store.cache.read(e, off, length),
            limit,
            page,
        )
        chunks = scan_chunks(reader, page)
        open_marker = " (open)" if extent == store.chunk_store.open_extent else ""
        print(f"  extent {extent}{open_marker}:")
        for offset, chunk in chunks:
            kind = "LSM-run " if chunk.kind else "shard   "
            live = "live" if _is_live(store, extent, offset, chunk) else "DEAD"
            print(
                f"    [{offset:>5}..{offset + chunk.frame_length:>5}) "
                f"{kind} {chunk.key!r:<18} {live}"
            )


def _is_live(store, extent, offset, chunk) -> bool:
    from repro.shardstore.chunk import KIND_DATA, Locator

    locator = Locator(extent, offset, chunk.frame_length)
    if chunk.kind == KIND_DATA:
        locators = store.index.get(chunk.key)
        return locators is not None and locator in locators
    return store.index.is_run_live(locator)


def main() -> None:
    system = StoreSystem(StoreConfig(seed=11))
    store = system.store

    print("== write three shards (Fig. 1a's 0x13, 0x28, 0x75) ==")
    for key, fill in [(b"shard-0x13", 0x13), (b"shard-0x28", 0x28),
                      (b"shard-0x75", 0x75)]:
        store.put(key, bytes([fill]) * 300)
    store.flush_index()
    store.drain()
    render_layout(store, "\non-disk layout:")

    print("\n== delete shard-0x28: its chunk becomes an unreferenced hole ==")
    store.delete(b"shard-0x28")
    store.flush_index()
    store.drain()
    render_layout(store, "\nlayout with the hole (Fig. 1a):")

    print("\n== reclaim the extent: evacuate live chunks, drop the hole, "
          "reset ==")
    victim = store.chunk_store.rotate_open()
    result = store.reclaim(victim)
    store.drain()
    print(f"  reclaimed extent {victim}: scanned {result.scanned_chunks} "
          f"chunks, evacuated {result.evacuated}, dropped {result.dropped}")
    print(f"  extent {victim} write pointer is now "
          f"{system.disk.write_pointer(victim)} (space reusable)")
    render_layout(store, "\nlayout after reclamation (Fig. 1b):")

    print("\n== the live shards moved but read back intact ==")
    for key, fill in [(b"shard-0x13", 0x13), (b"shard-0x75", 0x75)]:
        value = store.get(key)
        assert value == bytes([fill]) * 300
        print(f"  {key.decode()}: {len(value)} bytes at "
              f"{store.index.get(key)}")


if __name__ == "__main__":
    main()
