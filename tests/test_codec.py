"""Unit tests for the untrusted-byte value/record codec."""

import pytest

from repro.serialization.codec import (
    Preencoded,
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    record_size,
    scan_records,
    scan_records_with_end,
)
from repro.shardstore.errors import CorruptionError


class TestValueRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            b"",
            b"\x00\xff" * 100,
            "",
            "unicode ☃ text",
            [],
            [1, b"two", "three", None, False],
            {},
            {"k": 1, b"raw": b"v", 3: [None]},
            {"nested": {"deep": [{"er": True}]}},
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_dict_encoding_is_canonical(self):
        a = encode_value({"x": 1, "y": 2})
        b = encode_value({"y": 2, "x": 1})
        assert a == b

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            encode_value(3.14)

    def test_bool_is_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_preencoded_splices_byte_identical(self):
        # The superblock caches its ownership map's encoding; splicing the
        # cached bytes must be indistinguishable from encoding the value.
        ownership = {e: ("data" if e % 2 else "free") for e in range(8)}
        plain = encode_value({"epoch": 3, "ownership": ownership})
        spliced = encode_value(
            {"epoch": 3, "ownership": Preencoded(encode_value(ownership))}
        )
        assert spliced == plain
        assert decode_value(spliced) == {"epoch": 3, "ownership": ownership}

    def test_preencoded_inside_list_and_nested(self):
        inner = Preencoded(encode_value([1, b"two"]))
        assert decode_value(encode_value([inner, 3])) == [[1, b"two"], 3]


class TestValueCorruption:
    def test_truncated_input(self):
        data = encode_value([1, 2, 3])
        for cut in range(len(data)):
            with pytest.raises(CorruptionError):
                decode_value(data[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(CorruptionError):
            decode_value(encode_value(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(CorruptionError):
            decode_value(b"\x63")

    def test_bad_bool(self):
        with pytest.raises(CorruptionError):
            decode_value(bytes([6, 7]))

    def test_invalid_utf8(self):
        raw = bytearray(encode_value("ab"))
        raw[-2:] = b"\xff\xfe"
        with pytest.raises(CorruptionError):
            decode_value(bytes(raw))

    def test_huge_container_length(self):
        import struct

        with pytest.raises(CorruptionError):
            decode_value(b"\x03" + struct.pack("<I", 0xFFFFFFFF))

    def test_deep_nesting_rejected_not_crash(self):
        data = b"\x03\x01\x00\x00\x00" * 64 + encode_value(None)
        with pytest.raises(CorruptionError):
            decode_value(data)

    def test_unhashable_dict_key(self):
        # dict with a list key: tag 4, one entry, key = list
        import struct

        data = b"\x04" + struct.pack("<I", 1) + encode_value([1]) + encode_value(2)
        with pytest.raises(CorruptionError):
            decode_value(data)


class TestRecords:
    def test_roundtrip(self):
        record = encode_record({"epoch": 9}, page_size=128)
        assert len(record) % 128 == 0
        value, consumed = decode_record(record)
        assert value == {"epoch": 9}
        assert consumed <= len(record)

    def test_record_size_matches(self):
        value = {"a": b"x" * 200}
        assert record_size(value, 128) == len(encode_record(value, 128))

    def test_bad_magic(self):
        record = bytearray(encode_record({"epoch": 1}, 128))
        record[0] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_record(bytes(record))

    def test_crc_detects_flip(self):
        record = bytearray(encode_record({"epoch": 1}, 128))
        record[20] ^= 0x01
        with pytest.raises(CorruptionError):
            decode_record(bytes(record))

    def test_out_of_bounds_offset(self):
        record = encode_record({"epoch": 1}, 128)
        with pytest.raises(CorruptionError):
            decode_record(record, offset=len(record) - 2)
        with pytest.raises(CorruptionError):
            decode_record(record, offset=-5)


class TestScan:
    def test_scan_multiple_records(self):
        log = b"".join(encode_record({"epoch": i}, 128) for i in range(4))
        records = scan_records(log, 128)
        assert [v["epoch"] for _, v in records] == [0, 1, 2, 3]

    def test_scan_stops_at_torn_tail(self):
        good = encode_record({"epoch": 0}, 128)
        torn = encode_record({"epoch": 1, "pad": b"x" * 200}, 128)[:128]
        records, end = scan_records_with_end(good + torn, 128)
        assert len(records) == 1
        assert end == len(good)

    def test_scan_of_garbage_is_empty(self):
        records, end = scan_records_with_end(b"\xde\xad\xbe\xef" * 64, 128)
        assert records == []
        assert end == 0

    def test_scan_page_alignment(self):
        record = encode_record({"epoch": 0, "big": b"z" * 300}, 128)
        assert len(record) % 128 == 0
        records = scan_records(record + encode_record({"epoch": 1}, 128), 128)
        assert len(records) == 2
