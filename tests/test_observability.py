"""Tests for the observability layer: recorders, metrics, rendering.

The hand-computed cases pin the counters to exact values a human can
re-derive from the workload, so instrumentation drift (double-counting, a
missed hot-path guard) fails loudly rather than shifting numbers silently.
"""

import pytest

from repro.shardstore import (
    DiskGeometry,
    Fault,
    KeyNotFoundError,
    NULL_RECORDER,
    RingRecorder,
    StoreConfig,
    StoreSystem,
)
from repro.shardstore.disk import InMemoryDisk
from repro.shardstore.observability import (
    MAX_FAULT_EVENTS,
    Metrics,
    NullRecorder,
    counter_value,
    merge_metrics,
    render_fault_events,
    render_metrics,
    render_snapshot,
    render_trace,
)


def _geometry():
    return DiskGeometry(num_extents=8, extent_size=2048, page_size=128)


class TestDiskCountersHandComputed:
    def test_writes_reads_and_bytes(self):
        recorder = RingRecorder()
        disk = InMemoryDisk(_geometry(), recorder=recorder)
        disk.write(0, 0, b"a" * 100)
        disk.write(0, 100, b"b" * 28)
        disk.read(0, 0, 100)
        metrics = recorder.metrics.snapshot()
        assert counter_value(metrics, "disk.writes") == 2
        assert counter_value(metrics, "disk.bytes_written") == 128
        assert counter_value(metrics, "disk.reads") == 1
        assert counter_value(metrics, "disk.bytes_read") == 100
        histogram = metrics["histograms"]["disk.write_bytes"]
        assert histogram["count"] == 2
        assert histogram["total"] == 128
        assert histogram["min"] == 28
        assert histogram["max"] == 100

    def test_reset_counter(self):
        recorder = RingRecorder()
        disk = InMemoryDisk(_geometry(), recorder=recorder)
        disk.write(0, 0, b"x" * 128)
        disk.reset(0)
        disk.reset(1)
        assert counter_value(recorder.metrics.snapshot(), "disk.resets") == 2


class TestStoreCountersHandComputed:
    def test_scheduler_issues_every_enqueued_record(self):
        recorder = RingRecorder()
        system = StoreSystem(
            StoreConfig(geometry=_geometry(), recorder=recorder)
        )
        store = system.store
        for i in range(5):
            store.put(b"k%d" % i, b"v" * 40)
        store.drain()
        metrics = recorder.metrics.snapshot()
        enqueued = counter_value(metrics, "scheduler.records_enqueued")
        written = counter_value(metrics, "scheduler.records_written")
        assert enqueued > 0
        assert written == enqueued  # drained: nothing left behind
        assert counter_value(metrics, "scheduler.ios_issued") == counter_value(
            metrics, "disk.writes"
        )
        assert metrics["gauges"]["scheduler.queue_depth"]["last"] == 0

    def test_cache_hit_on_immediate_reread(self):
        recorder = RingRecorder()
        system = StoreSystem(
            StoreConfig(geometry=_geometry(), recorder=recorder)
        )
        store = system.store
        store.put(b"k", b"v" * 40)
        before = counter_value(
            recorder.metrics.snapshot(), "cache.hits"
        )
        assert store.get(b"k") == b"v" * 40
        after = counter_value(recorder.metrics.snapshot(), "cache.hits")
        assert after > before  # unflushed data must be served by the cache

    def test_delete_of_absent_key_traces_a_failed_span(self):
        recorder = RingRecorder()
        system = StoreSystem(
            StoreConfig(geometry=_geometry(), recorder=recorder)
        )
        with pytest.raises(KeyNotFoundError):
            system.store.delete(b"missing")
        ends = [e for e in recorder.trace() if e["type"] == "end"]
        assert ends and ends[-1]["name"] == "delete"
        assert ends[-1].get("failed") is True


class TestRingRecorder:
    def test_spans_nest_and_tick_monotonically(self):
        recorder = RingRecorder()
        with recorder.span("outer", a=1):
            recorder.event("inner-event")
            with recorder.span("inner"):
                pass
        trace = recorder.trace()
        assert [e["type"] for e in trace] == ["span", "event", "span", "end", "end"]
        assert [e["depth"] for e in trace] == [0, 1, 1, 1, 0]
        assert [e["tick"] for e in trace] == [1, 2, 3, 4, 5]

    def test_ring_is_bounded(self):
        recorder = RingRecorder(capacity=8)
        for i in range(100):
            recorder.event("e", i=i)
        trace = recorder.trace()
        assert len(trace) == 8
        assert trace[-1]["fields"]["i"] == 99

    def test_fault_event_log_caps_and_counts_overflow(self):
        recorder = RingRecorder()
        for _ in range(MAX_FAULT_EVENTS + 5):
            recorder.fault_event(Fault.RECLAIM_OFF_BY_ONE, "reclamation")
        snap = recorder.snapshot()
        assert len(snap["fault_events"]) == MAX_FAULT_EVENTS
        assert snap["fault_events_dropped"] == 5
        # The counter keeps the true total even past the log cap.
        assert counter_value(snap["metrics"], "faults.events") == (
            MAX_FAULT_EVENTS + 5
        )

    def test_fault_event_record_shape(self):
        recorder = RingRecorder()
        recorder.fault_event(
            Fault.CACHE_NOT_DRAINED_ON_RESET, "buffer cache", "detail here"
        )
        (record,) = recorder.snapshot()["fault_events"]
        assert record["id"] == Fault.CACHE_NOT_DRAINED_ON_RESET.value
        assert record["fault"] == "CACHE_NOT_DRAINED_ON_RESET"
        assert record["component"] == "buffer cache"
        assert record["detail"] == "detail here"

    def test_null_recorder_records_nothing(self):
        recorder = NullRecorder()
        assert not recorder.enabled
        with recorder.span("op"):
            recorder.count("c")
            recorder.event("e")
            recorder.fault_event(Fault.RECLAIM_OFF_BY_ONE, "reclamation")
        assert recorder.snapshot() == {}

    def test_default_recorder_is_shared_null(self):
        system = StoreSystem(StoreConfig(geometry=_geometry()))
        assert system.store.recorder is NULL_RECORDER


class TestMergeMetrics:
    def test_counters_sum_gauges_peak_histograms_combine(self):
        a, b = Metrics(), Metrics()
        a.count("c", 3)
        b.count("c", 4)
        b.count("only-b")
        a.gauge("g", 10)
        b.gauge("g", 7)
        a.observe("h", 2)
        b.observe("h", 100)
        merged = merge_metrics([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"c": 7, "only-b": 1}
        assert merged["gauges"]["g"] == {"max": 10}
        histogram = merged["histograms"]["h"]
        assert histogram["count"] == 2
        assert histogram["total"] == 102
        assert histogram["min"] == 2
        assert histogram["max"] == 100

    def test_empty_snapshots_are_skipped(self):
        merged = merge_metrics([{}, Metrics().snapshot()])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


class TestRendering:
    def test_render_metrics_includes_cache_hit_rate(self):
        metrics = Metrics()
        metrics.count("cache.hits", 3)
        metrics.count("cache.misses", 1)
        out = render_metrics(metrics.snapshot())
        assert "cache hit rate" in out
        assert "75.0%" in out

    def test_render_trace_marks_failed_spans(self):
        recorder = RingRecorder()
        try:
            with recorder.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        out = render_trace(recorder.trace())
        assert "+ boom" in out
        assert "FAILED" in out

    def test_render_fault_events_empty(self):
        assert render_fault_events([]) == "(no fault events)"

    def test_render_snapshot_has_all_sections(self):
        recorder = RingRecorder()
        recorder.count("disk.writes", 2)
        recorder.fault_event(Fault.RECLAIM_OFF_BY_ONE, "reclamation")
        out = render_snapshot(recorder.snapshot())
        assert "disk.writes" in out
        assert "fault events:" in out
        assert "trace:" in out
        assert "RECLAIM_OFF_BY_ONE" in out
