"""Unit tests for the stateless model checking substrate."""

import pytest

from repro.concurrency import (
    AtomicCell,
    Condvar,
    DeadlockError,
    DfsExplorer,
    Mutex,
    TaskFailed,
    model,
    replay,
    spawn,
)


def _counter_race():
    """Classic lost update: two unsynchronised read-modify-writes."""
    cell = AtomicCell(0, name="counter")

    def incr():
        value = cell.load()
        cell.store(value + 1)

    def body():
        t1 = spawn(incr, "t1")
        t2 = spawn(incr, "t2")
        t1.join()
        t2.join()
        assert cell.load() == 2, f"lost update: {cell.load()}"

    return body


def _counter_safe():
    cell = AtomicCell(0, name="counter")

    def incr():
        cell.fetch_update(lambda v: v + 1)

    def body():
        t1 = spawn(incr, "t1")
        t2 = spawn(incr, "t2")
        t1.join()
        t2.join()
        assert cell.load() == 2

    return body


def _lock_inversion():
    a, b = Mutex(None, name="A"), Mutex(None, name="B")

    def t1():
        with a:
            with b:
                pass

    def t2():
        with b:
            with a:
                pass

    def body():
        h1, h2 = spawn(t1, "t1"), spawn(t2, "t2")
        h1.join()
        h2.join()

    return body


class TestDfs:
    def test_finds_lost_update(self):
        result = model(_counter_race, strategy="dfs")
        assert not result.passed
        assert isinstance(result.failure, TaskFailed)
        assert "lost update" in str(result.failure.original)

    def test_exhausts_safe_program(self):
        result = model(_counter_safe, strategy="dfs")
        assert result.passed
        assert result.exhausted
        assert result.executions > 1  # several interleavings exist

    def test_finds_deadlock(self):
        result = model(_lock_inversion, strategy="dfs")
        assert not result.passed
        assert isinstance(result.failure, DeadlockError)

    def test_budget_respected(self):
        result = DfsExplorer(max_executions=3).explore(_counter_safe)
        assert result.executions <= 3
        assert not result.exhausted or result.executions <= 3


class TestRandomAndPct:
    @pytest.mark.parametrize("strategy", ["random", "pct"])
    def test_finds_race(self, strategy):
        result = model(
            _counter_race, strategy=strategy, iterations=200, seed=1,
            pct_steps_hint=16,
        )
        assert not result.passed

    @pytest.mark.parametrize("strategy", ["random", "pct"])
    def test_safe_program_passes(self, strategy):
        result = model(_counter_safe, strategy=strategy, iterations=50, seed=1)
        assert result.passed
        assert result.executions == 50

    def test_deterministic_for_seed(self):
        a = model(_counter_race, strategy="random", iterations=100, seed=9)
        b = model(_counter_race, strategy="random", iterations=100, seed=9)
        assert a.executions == b.executions
        assert a.failing_schedule == b.failing_schedule

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            model(_counter_safe, strategy="quantum")


class TestReplay:
    def test_failing_schedule_replays(self):
        result = model(_counter_race, strategy="dfs")
        with pytest.raises(TaskFailed):
            replay(_counter_race, result.failing_schedule)


class TestPrimitives:
    def test_mutex_mutual_exclusion(self):
        def harness():
            lock = Mutex(None, name="m")
            log = []

            def critical(tag):
                def body():
                    with lock:
                        log.append((tag, "in"))
                        log.append((tag, "out"))

                return body

            def body():
                t1 = spawn(critical("a"), "a")
                t2 = spawn(critical("b"), "b")
                t1.join()
                t2.join()
                # Critical sections never interleave.
                for i in range(0, len(log), 2):
                    assert log[i][0] == log[i + 1][0]
                    assert log[i][1] == "in" and log[i + 1][1] == "out"

            return body

        result = model(harness, strategy="dfs")
        assert result.passed and result.exhausted

    def test_condvar_wakeup(self):
        def harness():
            flag = AtomicCell(False, name="flag")
            cond = Condvar("c")
            seen = []

            def waiter():
                cond.wait_until(flag.load)
                seen.append(flag.load())

            def setter():
                flag.store(True)
                cond.notify_all()

            def body():
                t1 = spawn(waiter, "waiter")
                t2 = spawn(setter, "setter")
                t1.join()
                t2.join()
                assert seen == [True]

            return body

        result = model(harness, strategy="dfs", max_executions=2000)
        assert result.passed

    def test_primitives_work_without_scheduler(self):
        """Outside the model checker, primitives are plain thread tools."""
        cell = AtomicCell(0)
        lock = Mutex([])

        def work():
            cell.fetch_update(lambda v: v + 1)
            with lock as items:
                items.append(1)

        handles = [spawn(work, f"w{i}") for i in range(4)]
        for handle in handles:
            handle.join()
        assert cell.load() == 4
        with lock as items:
            assert len(items) == 4


class TestSchedulerMechanics:
    def test_step_log_records_reasons(self):
        from repro.concurrency import FixedSchedule, ModelScheduler

        def body_factory():
            cell = AtomicCell(0, name="x")

            def body():
                cell.store(1)
                cell.load()

            return body

        scheduler = ModelScheduler(FixedSchedule([]))
        scheduler.run(body_factory())
        assert any("x" in line for line in scheduler.step_log)

    def test_max_steps_guard(self):
        from repro.concurrency import FixedSchedule, ModelScheduler

        def spinner():
            cell = AtomicCell(0, name="spin")

            def body():
                # Bounded (so the thread terminates after release) but far
                # over the scheduler's step limit.
                for _ in range(2000):
                    cell.load()

            return body

        scheduler = ModelScheduler(FixedSchedule([]), max_steps=100)
        with pytest.raises(RuntimeError):
            scheduler.run(spinner())
