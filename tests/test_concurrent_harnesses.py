"""The section 6 harnesses: clean implementations pass, faults are found."""

import pytest

from repro.concurrency import DeadlockError, TaskFailed, model
from repro.core.concurrent_harnesses import (
    buffer_pool_harness,
    bulk_race_harness,
    compaction_reclaim_harness,
    linearizability_harness,
    list_remove_harness,
    locator_race_harness,
)
from repro.shardstore import Fault, FaultSet

CLEAN = FaultSet.none()


class TestCleanImplementationPasses:
    @pytest.mark.parametrize(
        "harness_factory",
        [
            locator_race_harness,
            list_remove_harness,
            bulk_race_harness,
        ],
    )
    def test_pct_clean(self, harness_factory):
        result = model(
            harness_factory(CLEAN), strategy="pct", iterations=60, seed=3
        )
        assert result.passed, result.failure

    @pytest.mark.slow
    def test_buffer_pool_clean_exhaustive(self):
        result = model(buffer_pool_harness(CLEAN), strategy="dfs")
        assert result.passed
        assert result.exhausted, "small harness should be fully enumerable"

    def test_compaction_reclaim_clean(self):
        result = model(
            compaction_reclaim_harness(CLEAN),
            strategy="pct",
            iterations=60,
            seed=3,
            pct_steps_hint=128,
        )
        assert result.passed, result.failure

    def test_linearizability_clean(self):
        result = model(
            linearizability_harness(CLEAN), strategy="pct", iterations=30, seed=2
        )
        assert result.passed, result.failure


class TestFaultsDetected:
    def test_issue_11_locator_race(self):
        result = model(
            locator_race_harness(FaultSet.only(Fault.LOCATOR_RACE_WRITE_FLUSH)),
            strategy="pct",
            iterations=120,
            seed=3,
        )
        assert not result.passed
        assert isinstance(result.failure, TaskFailed)

    def test_issue_12_buffer_pool_deadlock(self):
        result = model(
            buffer_pool_harness(FaultSet.only(Fault.BUFFER_POOL_DEADLOCK)),
            strategy="random",
            iterations=300,
            seed=3,
        )
        assert not result.passed
        assert isinstance(result.failure, DeadlockError)

    def test_issue_13_list_remove_race(self):
        result = model(
            list_remove_harness(FaultSet.only(Fault.LIST_REMOVE_RACE)),
            strategy="pct",
            iterations=120,
            seed=3,
        )
        assert not result.passed

    def test_issue_14_compaction_reclaim_race(self):
        result = model(
            compaction_reclaim_harness(
                FaultSet.only(Fault.COMPACTION_RECLAIM_RACE)
            ),
            strategy="pct",
            iterations=300,
            seed=3,
            pct_steps_hint=128,
        )
        assert not result.passed
        assert isinstance(result.failure, TaskFailed)
        assert "lost" in str(result.failure.original)

    def test_issue_16_bulk_race(self):
        result = model(
            bulk_race_harness(FaultSet.only(Fault.BULK_CREATE_REMOVE_RACE)),
            strategy="pct",
            iterations=120,
            seed=3,
        )
        assert not result.passed


class TestSchedulesReplay:
    def test_issue_13_failing_schedule_replays(self):
        from repro.concurrency import replay

        factory = list_remove_harness(FaultSet.only(Fault.LIST_REMOVE_RACE))
        result = model(factory, strategy="pct", iterations=120, seed=3)
        assert not result.passed
        with pytest.raises((TaskFailed, DeadlockError)):
            replay(factory, result.failing_schedule)
