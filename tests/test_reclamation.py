"""Unit tests for chunk reclamation (garbage collection)."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    FailureMode,
    Fault,
    FaultSet,
    IoError,
    NotFoundError,
    StoreConfig,
    StoreSystem,
)


def _system(faults=None, **kwargs):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults or FaultSet.none(),
        **kwargs,
    )
    return StoreSystem(config)


def _fill_and_rotate(store, keys=4, size=220):
    values = {}
    for i in range(keys):
        key = b"key%d" % i
        values[key] = bytes([0x30 + i]) * size
        store.put(key, values[key])
    store.flush_index()
    victim = store.chunk_store.rotate_open()
    return values, victim


class TestBasicReclamation:
    def test_dead_chunks_dropped_live_evacuated(self):
        store = _system().store
        values, victim = _fill_and_rotate(store)
        store.delete(b"key1")
        store.flush_index()
        result = store.reclaim(victim)
        assert result is not None and result.reset_done
        assert result.dropped >= 1  # key1's chunks (and dead runs)
        assert result.evacuated >= 3
        for key, value in values.items():
            if key == b"key1":
                with pytest.raises(NotFoundError):
                    store.get(key)
            else:
                assert store.get(key) == value

    def test_reclaimed_extent_is_reusable(self):
        store = _system().store
        _, victim = _fill_and_rotate(store)
        store.reclaim(victim)
        store.drain()
        assert store.disk.write_pointer(victim) == 0
        from repro.shardstore.superblock import OWNER_FREE

        assert store.superblock.owner_of(victim) == OWNER_FREE

    def test_skips_open_extent(self):
        store = _system().store
        store.put(b"k", b"v" * 100)
        open_extent = store.chunk_store.open_extent
        assert store.reclaim(open_extent) is None

    def test_multi_chunk_shard_survives(self):
        store = _system(max_chunk_payload=100).store
        value = bytes(range(256)) * 3
        store.put(b"big", value)
        store.flush_index()
        victim = store.chunk_store.rotate_open()
        store.reclaim(victim)
        assert store.get(b"big") == value

    def test_run_chunks_relocated(self):
        store = _system().store
        values, victim = _fill_and_rotate(store)
        runs_before = set(store.index.run_locators())
        result = store.reclaim(victim)
        runs_after = set(store.index.run_locators())
        moved = {loc for loc in runs_before if loc.extent == victim}
        assert moved, "test setup should place runs on the victim"
        assert all(loc.extent != victim for loc in runs_after)
        assert len(store.index.keys()) == len(values)

    def test_touched_keys_recorded(self):
        store = _system().store
        values, victim = _fill_and_rotate(store)
        result = store.reclaim(victim)
        assert result.keys_touched <= set(values)
        assert result.keys_touched == store.reclaimer.last_touched_keys

    def test_reclaim_persists_prerequisites(self):
        """The reset reaches the medium only after evacuations + index."""
        store = _system().store
        values, victim = _fill_and_rotate(store)
        store.reclaim(victim)
        # The reset record is enqueued with an already-persistent dep.
        store.drain()
        assert store.disk.write_pointer(victim) == 0
        for key in values:
            assert store.get(key) == values[key]


class TestFaultBehaviours:
    def test_fault1_truncates_boundary_chunks(self):
        """The off-by-one corrupts evacuated page-boundary chunks."""
        store = _system(faults=FaultSet.only(Fault.RECLAIM_OFF_BY_ONE)).store
        from repro.shardstore.chunk import frame_size

        # Craft a payload whose frame ends exactly on a page boundary.
        overhead = frame_size(b"edge", b"")
        payload = b"E" * (2 * 128 - overhead)
        store.put(b"edge", payload)
        store.flush_index()
        victim = store.chunk_store.rotate_open()
        result = store.reclaim(victim)
        assert result.evacuated >= 1
        got = store.get(b"edge")
        assert got == payload[:-1], "fault #1 silently truncates"

    def test_fault5_forgets_chunks_after_read_error(self):
        store = _system(
            faults=FaultSet.only(Fault.RECLAIM_FORGETS_ON_READ_ERROR)
        ).store
        values, victim = _fill_and_rotate(store)
        store.drain()  # reads must reach the disk for the fault to fire
        store.cache.invalidate_all()
        store.disk.arm_fault(victim, FailureMode.ONCE, writes=False)
        result = store.reclaim(victim)
        assert result is not None, "the fault swallows the error"
        lost = [
            key
            for key in values
            if _lost(store, key)
        ]
        assert lost, "chunks after the failed read are forgotten"

    def test_correct_impl_aborts_on_read_error(self):
        store = _system().store
        values, victim = _fill_and_rotate(store)
        store.drain()  # reads must reach the disk for the fault to fire
        store.cache.invalidate_all()
        store.disk.arm_fault(victim, FailureMode.ONCE, writes=False)
        with pytest.raises(IoError):
            store.reclaim(victim)
        # Nothing destroyed; a retry succeeds.
        result = store.reclaim(victim)
        assert result is not None
        for key, value in values.items():
            assert store.get(key) == value


def _lost(store, key) -> bool:
    from repro.shardstore import CorruptionError

    try:
        store.get(key)
        return False
    except (NotFoundError, CorruptionError):
        return True
