"""Tests for writeback coalescing (the Fig. 2 scheduler optimisation)."""

import random


from repro.shardstore import DiskGeometry, InMemoryDisk, StoreConfig, StoreSystem
from repro.shardstore.dependency import Dependency, DurabilityTracker
from repro.shardstore.scheduler import IoScheduler


def _scheduler():
    disk = InMemoryDisk(DiskGeometry(num_extents=6, extent_size=2048, page_size=128))
    tracker = DurabilityTracker()
    return disk, tracker, IoScheduler(disk, tracker, random.Random(0))


class TestCoalescedPump:
    def test_contiguous_appends_merge_into_one_io(self):
        disk, tracker, scheduler = _scheduler()
        deps = [
            scheduler.append(4, bytes([i]) * 100, Dependency.root(tracker))[1]
            for i in range(3)
        ]
        assert scheduler.pump_one(coalesce=True)
        assert disk.stats.writes == 1, "three appends, one device IO"
        assert all(dep.is_persistent() for dep in deps)
        assert disk.read(4, 0, 300) == b"\x00" * 100 + b"\x01" * 100 + b"\x02" * 100

    def test_coalescing_stops_at_unsatisfied_dependency(self):
        disk, tracker, scheduler = _scheduler()
        _, first = scheduler.append(4, b"a" * 100, Dependency.root(tracker))
        blocker = Dependency.on_records(tracker, [tracker.allocate()])
        scheduler.append(4, b"b" * 100, blocker)
        assert scheduler.pump_one(coalesce=True)
        assert disk.write_pointer(4) == 100, "the gated record must wait"

    def test_coalescing_stops_at_reset(self):
        disk, tracker, scheduler = _scheduler()
        scheduler.append(4, b"a" * 100, Dependency.root(tracker))
        scheduler.reset(4, Dependency.root(tracker))
        scheduler.append(4, b"b" * 50, Dependency.root(tracker))
        assert scheduler.pump_one(coalesce=True)  # the append alone
        assert disk.write_pointer(4) == 100
        assert scheduler.pump_one(coalesce=True)  # the reset alone
        assert disk.write_pointer(4) == 0
        assert scheduler.pump_one(coalesce=True)
        assert disk.read(4, 0, 50) == b"b" * 50

    def test_result_identical_with_and_without_coalescing(self):
        def run(coalesce: bool):
            disk, tracker, scheduler = _scheduler()
            for i in range(6):
                scheduler.append(4, bytes([i]) * 90, Dependency.root(tracker))
            scheduler.append(5, b"x" * 200, Dependency.root(tracker))
            while scheduler.pump_one(coalesce=coalesce):
                pass
            return disk.snapshot()

        assert run(True) == run(False)

    def test_io_count_reduction(self):
        def io_count(coalesce: bool) -> int:
            disk, tracker, scheduler = _scheduler()
            for i in range(8):
                scheduler.append(4, bytes([i]) * 120, Dependency.root(tracker))
            while scheduler.pump_one(coalesce=coalesce):
                pass
            return disk.stats.writes

        assert io_count(True) < io_count(False)


class TestStoreLevel:
    def test_store_roundtrip_unaffected(self):
        system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(num_extents=12, extent_size=4096, page_size=128)
            )
        )
        store = system.store
        for i in range(8):
            store.put(b"k%d" % i, bytes([i]) * 300)
        while store.scheduler.pump_one(coalesce=True):
            pass
        store.flush_index()
        store.flush_superblock()
        while store.scheduler.pump_one(coalesce=True):
            pass
        store = system.clean_reboot()
        for i in range(8):
            assert store.get(b"k%d" % i) == bytes([i]) * 300
