"""Tests for writeback coalescing (the Fig. 2 scheduler optimisation)."""

import random


from repro.shardstore import DiskGeometry, InMemoryDisk, StoreConfig, StoreSystem
from repro.shardstore.dependency import Dependency, DurabilityTracker
from repro.shardstore.scheduler import IoScheduler


def _scheduler():
    disk = InMemoryDisk(DiskGeometry(num_extents=6, extent_size=2048, page_size=128))
    tracker = DurabilityTracker()
    return disk, tracker, IoScheduler(disk, tracker, random.Random(0))


class TestCoalescedPump:
    def test_contiguous_appends_merge_into_one_io(self):
        disk, tracker, scheduler = _scheduler()
        deps = [
            scheduler.append(4, bytes([i]) * 100, Dependency.root(tracker))[1]
            for i in range(3)
        ]
        assert scheduler.pump_one(coalesce=True)
        assert disk.stats.writes == 1, "three appends, one device IO"
        assert all(dep.is_persistent() for dep in deps)
        assert disk.read(4, 0, 300) == b"\x00" * 100 + b"\x01" * 100 + b"\x02" * 100

    def test_coalescing_stops_at_unsatisfied_dependency(self):
        disk, tracker, scheduler = _scheduler()
        _, first = scheduler.append(4, b"a" * 100, Dependency.root(tracker))
        blocker = Dependency.on_records(tracker, [tracker.allocate()])
        scheduler.append(4, b"b" * 100, blocker)
        assert scheduler.pump_one(coalesce=True)
        assert disk.write_pointer(4) == 100, "the gated record must wait"

    def test_coalescing_stops_at_reset(self):
        disk, tracker, scheduler = _scheduler()
        scheduler.append(4, b"a" * 100, Dependency.root(tracker))
        scheduler.reset(4, Dependency.root(tracker))
        scheduler.append(4, b"b" * 50, Dependency.root(tracker))
        assert scheduler.pump_one(coalesce=True)  # the append alone
        assert disk.write_pointer(4) == 100
        assert scheduler.pump_one(coalesce=True)  # the reset alone
        assert disk.write_pointer(4) == 0
        assert scheduler.pump_one(coalesce=True)
        assert disk.read(4, 0, 50) == b"b" * 50

    def test_result_identical_with_and_without_coalescing(self):
        def run(coalesce: bool):
            disk, tracker, scheduler = _scheduler()
            for i in range(6):
                scheduler.append(4, bytes([i]) * 90, Dependency.root(tracker))
            scheduler.append(5, b"x" * 200, Dependency.root(tracker))
            while scheduler.pump_one(coalesce=coalesce):
                pass
            return disk.snapshot()

        assert run(True) == run(False)

    def test_io_count_reduction(self):
        def io_count(coalesce: bool) -> int:
            disk, tracker, scheduler = _scheduler()
            for i in range(8):
                scheduler.append(4, bytes([i]) * 120, Dependency.root(tracker))
            while scheduler.pump_one(coalesce=coalesce):
                pass
            return disk.stats.writes

        assert io_count(True) < io_count(False)


class TestFlushCoalesced:
    def test_flush_coalesced_drains_everything(self):
        disk, tracker, scheduler = _scheduler()
        deps = []
        for extent in (3, 4, 5):
            for i in range(4):
                deps.append(
                    scheduler.append(
                        extent, bytes([i]) * 100, Dependency.root(tracker)
                    )[1]
                )
        scheduler.reset(3, Dependency.root(tracker))
        scheduler.flush_coalesced()
        assert scheduler.pending_count == 0
        assert all(dep.is_persistent() for dep in deps)
        assert disk.write_pointer(3) == 0, "the reset pumped too"
        assert disk.read(4, 0, 400) == b"".join(
            bytes([i]) * 100 for i in range(4)
        )

    def test_batch_window_bounds_records_per_io(self):
        def writes(window):
            disk, tracker, scheduler = _scheduler()
            for i in range(8):
                scheduler.append(4, bytes([i]) * 128, Dependency.root(tracker))
            scheduler.flush_coalesced(batch_pages=window)
            return disk.stats.writes

        # 8 one-page records: a 2-page window needs 4 IOs, a wide window 1.
        assert writes(2) == 4
        assert writes(64) == 1

    def test_constructor_window_is_the_default(self):
        disk = InMemoryDisk(
            DiskGeometry(num_extents=6, extent_size=2048, page_size=128)
        )
        tracker = DurabilityTracker()
        scheduler = IoScheduler(disk, tracker, random.Random(0), batch_pages=2)
        for i in range(8):
            scheduler.append(4, bytes([i]) * 128, Dependency.root(tracker))
        scheduler.flush_coalesced()
        assert disk.stats.writes == 4

    def test_identical_disk_state_vs_drain(self):
        def run(coalesced: bool):
            disk, tracker, scheduler = _scheduler()
            for i in range(6):
                scheduler.append(4, bytes([i]) * 90, Dependency.root(tracker))
            scheduler.append(5, b"y" * 300, Dependency.root(tracker))
            if coalesced:
                scheduler.flush_coalesced()
            else:
                scheduler.drain()
            return disk.snapshot()

        assert run(True) == run(False)


class TestPendingCounters:
    def test_counters_track_queues_incrementally(self):
        disk, tracker, scheduler = _scheduler()
        scheduler.append(4, b"a" * 300, Dependency.root(tracker))  # 3 pages
        scheduler.append(5, b"b" * 100, Dependency.root(tracker))
        scheduler.reset(4, Dependency.root(tracker))
        assert scheduler.pending_count == 5
        assert scheduler.pending_count_for(4) == 4
        assert scheduler.pending_count_for(5) == 1
        while scheduler.pump_one():
            pass
        assert scheduler.pending_count == 0
        assert scheduler.pending_count_for(4) == 0

    def test_counters_survive_snapshot_restore(self):
        disk, tracker, scheduler = _scheduler()
        scheduler.append(4, b"a" * 300, Dependency.root(tracker))
        scheduler.append(5, b"b" * 100, Dependency.root(tracker))
        snap = scheduler.snapshot()
        disk_snap = disk.snapshot()
        tracker_snap = tracker.snapshot()
        while scheduler.pump_one():
            pass
        assert scheduler.pending_count == 0
        scheduler.restore(snap)
        disk.restore(disk_snap)
        tracker.restore(tracker_snap)
        assert scheduler.pending_count == 4
        assert scheduler.pending_count_for(4) == 3
        assert scheduler.pending_count_for(5) == 1
        scheduler.flush_coalesced()
        assert scheduler.pending_count == 0

    def test_drop_pending_zeroes_counters(self):
        disk, tracker, scheduler = _scheduler()
        scheduler.append(4, b"a" * 300, Dependency.root(tracker))
        scheduler.reset(5, Dependency.root(tracker))
        dropped = scheduler.drop_pending()
        assert dropped == 4
        assert scheduler.pending_count == 0
        assert scheduler.pending_count_for(4) == 0
        assert scheduler.pending_count_for(5) == 0


class TestStoreLevel:
    def test_store_roundtrip_unaffected(self):
        system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(num_extents=12, extent_size=4096, page_size=128)
            )
        )
        store = system.store
        for i in range(8):
            store.put(b"k%d" % i, bytes([i]) * 300)
        while store.scheduler.pump_one(coalesce=True):
            pass
        store.flush_index()
        store.flush_superblock()
        while store.scheduler.pump_one(coalesce=True):
            pass
        store = system.clean_reboot()
        for i in range(8):
            assert store.get(b"k%d" % i) == bytes([i]) * 300
