"""Tests for the evidence plane's read side: the trace-conformance
checker, the invariant miner, the CLI verbs, campaign evidence sections,
and the live gauges on the metrics demo node.

The load-bearing claims: a healthy journal replays clean against the
reference model, the ``drop-delete`` mutant is flagged *from the journal
alone* (no re-execution), and campaign evidence sections are identical
for any worker count.
"""

import json

import pytest

from repro.bench import run_bench
from repro.bench.harness import pick_mutant_victim
from repro.bench.serve import MetricsDemoNode
from repro.bench.workloads import generate_ops
from repro.campaign import CampaignSpec, run_campaign
from repro.cli import main
from repro.evidence import (
    PROMOTED,
    check_journal,
    mine_journal,
    mine_journals,
)
from repro.shardstore import RingRecorder
from repro.shardstore.observability import filter_trace
from repro.shardstore.observability.journal import Journal, read_journal


def _bench_journal(tmp_path, name, workload="mixed", seed=11, **kwargs):
    path = str(tmp_path / name)
    run_bench(workload, ops=200, seed=seed, journal_path=path, **kwargs)
    return path


def _by_name(results):
    return {res.name: res for res in results}


class TestCheckerHealthy:
    @pytest.mark.parametrize(
        "workload", ["mixed", "crash-recover", "reclaim-churn"]
    )
    def test_bench_journal_replays_clean(self, tmp_path, workload):
        path = _bench_journal(tmp_path, "h.jsonl", workload=workload)
        report = check_journal(read_journal(path), require_seal=True)
        assert report.passed
        assert report.sealed and report.chain_ok
        assert report.checked > 0

    def test_crash_uncertainty_is_skipped_not_failed(self, tmp_path):
        # Dirty reboots widen candidate sets; the checker must never call
        # a healthy crash-recovery journal a violation.
        path = _bench_journal(
            tmp_path, "c.jsonl", workload="crash-recover", seed=5
        )
        report = check_journal(read_journal(path), require_seal=True)
        assert report.passed

    def test_shed_ops_are_proven_state_preserving(self):
        journal = Journal()
        journal.record_op("put", key=b"k", value=b"v", out="ok")
        journal.record_op("put", key=b"k", value=b"x", out="shed_overload")
        journal.record_op("get", key=b"k", value=b"v", out="ok")
        journal.close()
        report = check_journal(journal.entries, require_seal=True)
        assert report.passed
        assert report.sheds == 1

    def test_shed_that_mutated_state_is_flagged(self):
        journal = Journal()
        journal.record_op("put", key=b"k", value=b"v", out="ok")
        journal.record_op("put", key=b"k", value=b"x", out="shed_deadline")
        # The shed claims no IO happened, yet the new value is visible.
        journal.record_op("get", key=b"k", value=b"x", out="ok")
        journal.close()
        report = check_journal(journal.entries, require_seal=True)
        assert not report.passed


class TestCheckerTamper:
    def test_edited_value_digest_breaks_chain(self, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        entries = read_journal(path)
        victim = next(
            i for i, e in enumerate(entries)
            if e.get("kind") == "put" and e.get("out") == "ok"
        )
        entries[victim]["value"] = "0" * 16
        report = check_journal(entries)
        assert not report.passed
        assert not report.chain_ok

    def test_truncated_journal_fails_require_seal(self, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        entries = read_journal(path)[:-1]
        assert check_journal(entries).passed  # chain still intact
        report = check_journal(entries, require_seal=True)
        assert not report.passed
        assert "no seal" in report.violations[-1]["problem"]

    def test_report_json_shape(self, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        blob = check_journal(read_journal(path), require_seal=True).to_json()
        for field in ("passed", "records", "ops", "checked", "head",
                      "violations"):
            assert field in blob


class TestMutant:
    def test_victim_picker_finds_observable_delete(self):
        sequence = generate_ops("mixed", 300, 64, seed=7)
        victim = pick_mutant_victim(sequence)
        assert victim is not None
        assert sequence[victim].op == "delete"

    def test_mutant_flagged_from_journal_alone(self, tmp_path):
        path = _bench_journal(
            tmp_path, "m.jsonl", seed=7, mutant="drop-delete"
        )
        report = check_journal(read_journal(path), require_seal=True)
        assert not report.passed
        assert any(
            "model allows only" in v["problem"] for v in report.violations
        )

    def test_mutant_requires_journal(self):
        with pytest.raises(ValueError):
            run_bench("mixed", ops=100, seed=7, mutant="drop-delete")
        with pytest.raises(ValueError):
            run_bench(
                "mixed", ops=100, seed=7, mutant="nope",
                journal_path="/dev/null",
            )


class TestMiner:
    def test_healthy_journal_confirms_promoted_set(self, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        results = _by_name(mine_journal(read_journal(path)))
        assert set(results) >= set(PROMOTED)
        for name in PROMOTED:
            assert results[name].status in ("confirmed", "vacuous"), name
        assert results["op-monotone"].status == "confirmed"
        assert results["get-after-put"].status == "confirmed"

    def test_mutant_falsifies_delete_implies_absent(self, tmp_path):
        path = _bench_journal(
            tmp_path, "m.jsonl", seed=7, mutant="drop-delete"
        )
        results = _by_name(mine_journal(read_journal(path)))
        res = results["delete-implies-absent"]
        assert res.status == "falsified"
        assert res.witness_op is not None and res.witness_tick is not None
        assert "read back" in res.detail

    def test_mine_journals_merges_falsified_over_confirmed(self, tmp_path):
        healthy = read_journal(_bench_journal(tmp_path, "h.jsonl"))
        mutant = read_journal(
            _bench_journal(tmp_path, "m.jsonl", seed=7, mutant="drop-delete")
        )
        merged = _by_name(mine_journals([healthy, mutant]))
        assert merged["delete-implies-absent"].status == "falsified"
        assert merged["op-monotone"].status == "confirmed"
        solo = _by_name(mine_journal(healthy))
        assert (
            merged["op-monotone"].instances
            > solo["op-monotone"].instances
        )

    def test_result_json_carries_witness(self, tmp_path):
        path = _bench_journal(
            tmp_path, "m.jsonl", seed=7, mutant="drop-delete"
        )
        results = _by_name(mine_journal(read_journal(path)))
        blob = results["delete-implies-absent"].to_json()
        assert blob["promoted"] is True
        assert "witness_op" in blob and "detail" in blob


class TestEvidenceCli:
    def test_check_trace_healthy_exits_zero(self, capsys, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        assert main(["check-trace", path, "--require-seal"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_trace_mutant_exits_one(self, capsys, tmp_path):
        path = _bench_journal(
            tmp_path, "m.jsonl", seed=7, mutant="drop-delete"
        )
        assert main(["check-trace", path, "--require-seal"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "VIOLATION" in out

    def test_check_trace_expect_head(self, capsys, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        entries = read_journal(path)
        head = entries[-1]["chain"]
        assert main(["check-trace", path, "--expect-head", head]) == 0
        capsys.readouterr()
        assert main(["check-trace", path, "--expect-head", "f" * 16]) == 1

    def test_check_trace_unreadable_exits_two(self, capsys, tmp_path):
        assert main(["check-trace", str(tmp_path / "nope.jsonl")]) == 2

    def test_check_trace_json_output(self, capsys, tmp_path):
        path = _bench_journal(tmp_path, "h.jsonl")
        assert main(["check-trace", path, "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["passed"] is True

    def test_invariants_exit_codes(self, capsys, tmp_path):
        healthy = _bench_journal(tmp_path, "h.jsonl")
        mutant = _bench_journal(
            tmp_path, "m.jsonl", seed=7, mutant="drop-delete"
        )
        assert main(["invariants", healthy]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["invariants", healthy, mutant]) == 1
        out = capsys.readouterr().out
        assert "FALSIFIED" in out and "witness" in out

    def test_bench_journal_flag(self, capsys, tmp_path):
        path = str(tmp_path / "b.jsonl")
        status = main([
            "bench", "--workload", "mixed", "--ops", "120", "--seed", "3",
            "--journal", path,
        ])
        assert status == 0
        assert "journal" in capsys.readouterr().out
        assert read_journal(path)[-1]["kind"] == "seal"

    def test_bench_mutant_without_journal_is_an_error(self, capsys):
        status = main([
            "bench", "--workload", "mixed", "--ops", "120",
            "--mutant", "drop-delete",
        ])
        assert status == 2


class TestCampaignEvidence:
    def _spec(self, workers):
        return CampaignSpec(
            profile="test",
            suite="injection",
            workers=workers,
            base_seed=3,
            injection_shards=2,
            injection_sequences=1,
            injection_ops=30,
            journal=True,
        )

    def test_evidence_section_deterministic_across_workers(self):
        one = run_campaign(self._spec(1)).to_json()
        two = run_campaign(self._spec(2)).to_json()
        assert one["schema_version"] == 7
        assert one["evidence"] == two["evidence"]
        assert one["evidence"]["all_passed"] is True
        assert one["evidence"]["totals"]["records"] > 0
        for shard in one["evidence"]["shards"]:
            assert shard["check_passed"] is True
            assert len(shard["heads_digest"]) == 16

    def test_no_journal_no_evidence_section(self):
        spec = CampaignSpec(
            profile="test", suite="injection", workers=1, base_seed=3,
            injection_shards=1, injection_sequences=1, injection_ops=20,
        )
        artifact = run_campaign(spec).to_json()
        assert "evidence" not in artifact


class TestServeEvidence:
    def test_metrics_page_exports_evidence_gauges(self):
        node = MetricsDemoNode(seed=5, warmup_ops=120, ops_per_scrape=10)
        page = node.metrics_page()
        assert "repro_journal_records" in page
        assert "repro_journal_chain_head" in page
        assert "repro_evidence_violations 0" in page

    def test_healthz_reports_running_verdict(self):
        node = MetricsDemoNode(seed=5, warmup_ops=120, ops_per_scrape=10)
        evidence = node.healthz()["evidence"]
        assert evidence["passed"] is True
        assert evidence["journal_records"] > 0
        assert len(evidence["chain_head"]) == 16

    def test_journal_written_through_when_path_given(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        node = MetricsDemoNode(
            seed=5, warmup_ops=60, ops_per_scrape=5, journal_path=path,
        )
        node.metrics_page()
        entries = read_journal(path)
        assert entries[0]["kind"] == "genesis"
        assert check_journal(entries).passed


class TestTraceFilters:
    def _trace(self):
        recorder = RingRecorder(capacity=256)
        with recorder.span("put", key="k1"):
            with recorder.span("disk.write"):
                pass
        with recorder.span("get", key="k1"):
            pass
        recorder.event("lsm.flush")
        return recorder.snapshot()["trace"]

    def test_op_filter_keeps_nested_subtree(self):
        events = filter_trace(self._trace(), op="put")
        names = [e["name"] for e in events]
        assert "disk.write" in names
        assert all(n != "get" for n in names)

    def test_component_filter(self):
        events = filter_trace(self._trace(), component="disk")
        assert events and all(
            e["name"].startswith("disk.") for e in events
        )

    def test_no_filters_is_identity(self):
        trace = self._trace()
        assert filter_trace(trace) == trace
