"""Tests for block-level crash-state exploration (section 5's variant)."""

import random

from repro.core import (
    BiasConfig,
    StoreHarness,
    coarse_crash_states,
    explore_block_level,
    store_alphabet,
)
from repro.shardstore import Fault, FaultSet


def _advanced_harness(faults, seed=0, ops=20):
    harness = StoreHarness(faults, seed)
    alphabet = store_alphabet()
    rng = random.Random(seed)
    sequence = [
        op
        for op in alphabet.generate_sequence(rng, ops, BiasConfig())
        if op.name not in ("Reboot", "PumpIo")
    ]
    failure = harness.run(sequence)
    assert failure is None, failure
    return harness


class TestBlockLevel:
    def test_clean_implementation_has_no_violations(self):
        harness = _advanced_harness(FaultSet.none())
        result = explore_block_level(harness, max_states=200)
        assert result.passed
        assert result.states_explored > 1

    def test_finds_missing_dependency_bug(self):
        harness = _advanced_harness(
            FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP)
        )
        result = explore_block_level(harness, max_states=300)
        assert result.violation is not None
        assert "persistence" in result.violation

    def test_exploration_restores_harness_state(self):
        harness = _advanced_harness(FaultSet.none())
        pending_before = harness.store.pending_io_count
        keys_before = harness.store.keys()
        explore_block_level(harness, max_states=60)
        assert harness.store.pending_io_count == pending_before
        assert harness.store.keys() == keys_before

    def test_state_budget_truncates(self):
        harness = _advanced_harness(FaultSet.none(), ops=30)
        result = explore_block_level(harness, max_states=5)
        assert result.states_explored <= 5

    def test_states_deduplicated_by_durable_set(self):
        harness = _advanced_harness(FaultSet.none(), ops=25)
        result = explore_block_level(harness, max_states=300)
        # Different pump orders reach identical durable sets.
        assert result.states_deduplicated > 0


class TestCoarse:
    def test_coarse_sampler_runs(self):
        harness = _advanced_harness(FaultSet.none())
        result = coarse_crash_states(harness, samples=6)
        assert result.passed
        assert result.states_explored == 6

    def test_coarse_also_finds_the_bug(self):
        harness = _advanced_harness(
            FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP), seed=4
        )
        result = coarse_crash_states(harness, samples=16, seed=1)
        assert result.violation is not None

    def test_coarse_restores_state(self):
        harness = _advanced_harness(FaultSet.none())
        snapshot = harness.system.disk.snapshot()
        coarse_crash_states(harness, samples=4)
        assert harness.system.disk.snapshot() == snapshot
