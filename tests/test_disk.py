"""Unit tests for the in-memory extent disk."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    ExtentError,
    FailureMode,
    FaultKind,
    InMemoryDisk,
    IoError,
)


@pytest.fixture
def disk() -> InMemoryDisk:
    return InMemoryDisk(DiskGeometry(num_extents=4, extent_size=1024, page_size=128))


class TestGeometry:
    def test_defaults_are_consistent(self):
        geometry = DiskGeometry()
        assert geometry.extent_size % geometry.page_size == 0
        assert geometry.pages_per_extent == geometry.extent_size // geometry.page_size

    def test_rejects_too_few_extents(self):
        with pytest.raises(ValueError):
            DiskGeometry(num_extents=2)

    def test_rejects_unaligned_extent_size(self):
        with pytest.raises(ValueError):
            DiskGeometry(extent_size=1000, page_size=128)

    def test_rejects_nonpositive_page(self):
        with pytest.raises(ValueError):
            DiskGeometry(page_size=0)


class TestAppendOnlyWrites:
    def test_write_advances_pointer(self, disk):
        disk.write(1, 0, b"hello")
        assert disk.write_pointer(1) == 5

    def test_sequential_writes_accumulate(self, disk):
        disk.write(1, 0, b"abc")
        disk.write(1, 3, b"def")
        assert disk.read(1, 0, 6) == b"abcdef"

    def test_nonsequential_write_rejected(self, disk):
        disk.write(1, 0, b"abc")
        with pytest.raises(ExtentError):
            disk.write(1, 10, b"xyz")

    def test_write_at_stale_offset_rejected(self, disk):
        disk.write(1, 0, b"abc")
        with pytest.raises(ExtentError):
            disk.write(1, 0, b"xyz")

    def test_overrun_rejected(self, disk):
        with pytest.raises(ExtentError):
            disk.write(1, 0, b"x" * 2000)

    def test_bad_extent_rejected(self, disk):
        with pytest.raises(ExtentError):
            disk.write(9, 0, b"x")


class TestReads:
    def test_read_beyond_pointer_forbidden(self, disk):
        disk.write(0, 0, b"abc")
        with pytest.raises(ExtentError):
            disk.read(0, 0, 4)

    def test_read_of_unwritten_extent_forbidden(self, disk):
        with pytest.raises(ExtentError):
            disk.read(2, 0, 1)

    def test_negative_bounds_rejected(self, disk):
        with pytest.raises(ExtentError):
            disk.read(0, -1, 1)
        with pytest.raises(ExtentError):
            disk.read(0, 0, -1)

    def test_read_returns_written_bytes(self, disk):
        disk.write(3, 0, bytes(range(100)))
        assert disk.read(3, 10, 20) == bytes(range(10, 30))


class TestReset:
    def test_reset_zeroes_pointer_and_bumps_generation(self, disk):
        disk.write(1, 0, b"data")
        generation = disk.reset_count(1)
        disk.reset(1)
        assert disk.write_pointer(1) == 0
        assert disk.reset_count(1) == generation + 1

    def test_data_unreadable_after_reset(self, disk):
        disk.write(1, 0, b"data")
        disk.reset(1)
        with pytest.raises(ExtentError):
            disk.read(1, 0, 4)

    def test_extent_reusable_after_reset(self, disk):
        disk.write(1, 0, b"old")
        disk.reset(1)
        disk.write(1, 0, b"new")
        assert disk.read(1, 0, 3) == b"new"


class TestSetWritePointer:
    def test_truncation_discards_tail(self, disk):
        disk.write(1, 0, b"abcdef")
        disk.set_write_pointer(1, 3)
        assert disk.read(1, 0, 3) == b"abc"
        # The discarded region reads as zeroes once re-covered.
        disk.set_write_pointer(1, 6)
        assert disk.read(1, 3, 3) == b"\x00\x00\x00"

    def test_pointer_above_hard_reads_zeroes(self, disk):
        disk.set_write_pointer(2, 10)
        assert disk.read(2, 0, 10) == bytes(10)

    def test_out_of_range_rejected(self, disk):
        with pytest.raises(ExtentError):
            disk.set_write_pointer(1, 5000)


class TestFailureInjection:
    def test_once_fault_fires_once(self, disk):
        disk.write(0, 0, b"abc")
        disk.arm_fault(0, FailureMode.ONCE)
        with pytest.raises(IoError) as excinfo:
            disk.read(0, 0, 3)
        assert excinfo.value.transient
        assert disk.read(0, 0, 3) == b"abc"  # disarmed

    def test_permanent_fault_persists(self, disk):
        disk.write(0, 0, b"abc")
        disk.arm_fault(0, FailureMode.PERMANENT)
        for _ in range(3):
            with pytest.raises(IoError) as excinfo:
                disk.read(0, 0, 1)
            assert not excinfo.value.transient

    def test_write_fault(self, disk):
        disk.arm_fault(1, FailureMode.ONCE, reads=False)
        with pytest.raises(IoError):
            disk.write(1, 0, b"x")
        disk.write(1, 0, b"x")  # disarmed

    def test_read_only_fault_spares_writes(self, disk):
        disk.arm_fault(1, FailureMode.ONCE, writes=False)
        disk.write(1, 0, b"x")  # unaffected
        with pytest.raises(IoError):
            disk.read(1, 0, 1)

    def test_clear_faults(self, disk):
        disk.arm_fault(0, FailureMode.PERMANENT)
        disk.arm_fault(1, FailureMode.PERMANENT)
        disk.clear_faults(0)
        assert not disk.has_armed_fault(0)
        assert disk.has_armed_fault(1)
        disk.clear_faults()
        assert not disk.has_armed_fault(1)

    def test_fault_counter(self, disk):
        disk.arm_fault(0, FailureMode.ONCE, reads=False)
        with pytest.raises(IoError):
            disk.write(0, 0, b"x")
        assert disk.stats.injected_failures == 1


class TestArmedFaultSemantics:
    """The fault-plan contract the injection campaign builds on."""

    def test_once_fault_consumed_by_first_matching_io_of_either_kind(
        self, disk
    ):
        disk.write(1, 0, b"abc")
        disk.arm_fault(1, FailureMode.ONCE)
        with pytest.raises(IoError):
            disk.read(1, 0, 1)
        disk.write(1, 3, b"d")  # the read consumed the fault
        assert disk.read(1, 0, 4) == b"abcd"
        assert disk.stats.injected_failures == 1

    def test_delay_lets_matching_ios_through_before_firing(self, disk):
        disk.write(1, 0, b"abc")
        disk.arm_fault(1, FailureMode.ONCE, delay=2)
        assert disk.read(1, 0, 1) == b"a"
        assert disk.read(1, 0, 1) == b"a"
        with pytest.raises(IoError):
            disk.read(1, 0, 1)
        assert disk.read(1, 0, 1) == b"a"  # ONCE disarmed after firing

    def test_torn_write_lands_durable_prefix_then_fails(self, disk):
        disk.arm_fault(
            1, FailureMode.ONCE, kind=FaultKind.TORN_WRITE, reads=False
        )
        with pytest.raises(IoError, match="torn write"):
            disk.write(1, 0, b"abcdef")
        # Half the write landed durably; the pointer sits at the tear.
        assert disk.write_pointer(1) == 3
        assert disk.read(1, 0, 3) == b"abc"
        # The tear consumed the fault: a retry from the torn pointer works.
        disk.write(1, 3, b"def")
        assert disk.read(1, 0, 6) == b"abcdef"

    def test_torn_write_error_is_transient_for_once_mode(self, disk):
        disk.arm_fault(1, FailureMode.ONCE, kind=FaultKind.TORN_WRITE)
        with pytest.raises(IoError) as excinfo:
            disk.write(1, 0, b"abcd")
        assert excinfo.value.transient

    def test_permanent_fault_survives_snapshot_restore(self, disk):
        """Restoring the medium does not heal a dead region.

        ``snapshot``/``restore`` model the durable medium across a crash
        or reboot; armed PERMANENT faults model failed hardware, which a
        reboot does not fix -- only ``clear_faults`` (a repair) does.
        """
        disk.write(1, 0, b"abc")
        disk.arm_fault(1, FailureMode.PERMANENT)
        snap = disk.snapshot()
        disk.restore(snap)
        assert disk.has_armed_fault(1)
        with pytest.raises(IoError) as excinfo:
            disk.read(1, 0, 1)
        assert not excinfo.value.transient
        disk.clear_faults(1)
        assert disk.read(1, 0, 3) == b"abc"

    def test_rearming_an_extent_replaces_the_fault(self, disk):
        disk.write(1, 0, b"abc")
        disk.arm_fault(1, FailureMode.PERMANENT)
        disk.arm_fault(1, FailureMode.ONCE)
        with pytest.raises(IoError):
            disk.read(1, 0, 1)
        assert disk.read(1, 0, 1) == b"a"  # ONCE won: disarmed

    def test_corrupt_flips_exactly_one_bit(self, disk):
        disk.write(1, 0, bytes(16))
        offset = disk.corrupt(1, 5, bit=3)
        assert offset == 5
        data = disk.read(1, 0, 16)
        assert data[5] == 1 << 3
        assert all(b == 0 for i, b in enumerate(data) if i != 5)
        assert disk.stats.injected_corruptions == 1

    def test_corrupt_defaults_to_middle_and_clamps(self, disk):
        disk.write(1, 0, b"\x00" * 10)
        assert disk.corrupt(1) == 5
        assert disk.corrupt(1, 999) == 9  # clamped below the pointer

    def test_corrupt_of_empty_extent_is_a_noop(self, disk):
        assert disk.corrupt(2) is None
        assert disk.stats.injected_corruptions == 0

    def test_corruption_is_silent(self, disk):
        """A flipped bit raises nothing at the disk layer -- only a CRC
        check downstream can notice (which is the point)."""
        disk.write(1, 0, b"payload")
        disk.corrupt(1, 2)
        assert disk.read(1, 0, 7) != b"payload"  # no exception


class TestSnapshotRestore:
    def test_roundtrip(self, disk):
        disk.write(1, 0, b"payload")
        disk.reset(2)
        snap = disk.snapshot()
        disk.write(1, 7, b"more")
        disk.reset(1)
        disk.restore(snap)
        assert disk.write_pointer(1) == 7
        assert disk.read(1, 0, 7) == b"payload"
        assert disk.reset_count(2) == 1

    def test_geometry_mismatch_rejected(self, disk):
        other = InMemoryDisk(DiskGeometry(num_extents=6, extent_size=1024, page_size=128))
        with pytest.raises(ValueError):
            disk.restore(other.snapshot())


class TestStats:
    def test_counters_track_io(self, disk):
        disk.write(0, 0, b"abcd")
        disk.read(0, 0, 2)
        disk.reset(0)
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 4
        assert disk.stats.reads == 1
        assert disk.stats.bytes_read == 2
        assert disk.stats.resets == 1
