"""Property-based tests for the codec (hypothesis).

Two invariant families: encode/decode is the identity on the value domain,
and decoders never raise anything but CorruptionError on arbitrary bytes
(the section 7 panic-freedom property, here as an unbounded random check).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serialization.codec import (
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    scan_records_with_end,
)
from repro.shardstore.chunk import KIND_DATA, KIND_RUN, decode_chunk, encode_chunk
from repro.shardstore.errors import CorruptionError

values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.binary(max_size=200)
    | st.text(max_size=100),
    lambda children: st.lists(children, max_size=6)
    | st.dictionaries(
        st.one_of(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            st.text(max_size=20),
            st.binary(max_size=20),
        ),
        children,
        max_size=6,
    ),
    max_leaves=20,
)

pytestmark = pytest.mark.slow


class TestValueProperties:
    @given(values)
    def test_roundtrip_identity(self, value):
        assert decode_value(encode_value(value)) == value

    @given(values)
    def test_encoding_is_deterministic(self, value):
        assert encode_value(value) == encode_value(value)

    @given(st.binary(max_size=300))
    def test_decode_never_panics(self, data):
        try:
            decode_value(data)
        except CorruptionError:
            pass  # the only allowed failure

    @given(values, st.integers(min_value=1, max_value=8))
    def test_single_byteflip_never_panics(self, value, position):
        data = bytearray(encode_value(value))
        if not data:
            return
        data[position % len(data)] ^= 0xFF
        try:
            decode_value(bytes(data))
        except CorruptionError:
            pass


class TestRecordProperties:
    @given(values, st.sampled_from([64, 128, 256]))
    def test_record_roundtrip(self, value, page):
        record = encode_record(value, page)
        assert len(record) % page == 0
        decoded, _ = decode_record(record)
        assert decoded == value

    @given(st.lists(values, max_size=5), st.binary(max_size=64))
    def test_scan_recovers_prefix_before_garbage(self, payloads, garbage):
        page = 128
        log = b"".join(encode_record(p, page) for p in payloads)
        records, end = scan_records_with_end(log + garbage, page)
        assert [v for _, v in records[: len(payloads)]] == payloads[: len(records)]
        assert end <= len(log) + len(garbage)
        assert len(records) >= len(payloads) or garbage == b""

    @given(st.binary(max_size=400))
    def test_record_decode_never_panics(self, data):
        try:
            decode_record(data)
        except CorruptionError:
            pass


class TestChunkProperties:
    @given(
        st.sampled_from([KIND_DATA, KIND_RUN]),
        st.binary(min_size=1, max_size=40),
        st.binary(max_size=300),
        st.binary(min_size=16, max_size=16),
    )
    def test_chunk_roundtrip(self, kind, key, payload, uuid):
        frame = encode_chunk(kind, key, payload, uuid)
        chunk = decode_chunk(frame)
        assert (chunk.kind, chunk.key, chunk.payload) == (kind, key, payload)
        assert chunk.frame_length == len(frame)

    @given(st.binary(max_size=400))
    def test_chunk_decode_never_panics(self, data):
        try:
            decode_chunk(data)
        except CorruptionError:
            pass

    @given(
        st.binary(min_size=1, max_size=20),
        st.binary(max_size=100),
        st.integers(min_value=0, max_value=200),
    )
    def test_truncation_always_rejected(self, key, payload, cut):
        frame = encode_chunk(KIND_DATA, key, payload, bytes(16))
        if cut >= len(frame):
            return
        with pytest.raises(CorruptionError):
            decode_chunk(frame[:cut])
