"""Hypothesis stateful testing of the storage node's control plane.

Removal/return/migration/bulk operations must never lose or change shards
-- the property behind the paper's issues #4, #13, and #16 -- checked here
against the dict model with hypothesis driving the schedule.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.shardstore import (
    DiskGeometry,
    KeyNotFoundError,
    NotFoundError,
    RetryableError,
    StorageNode,
    StoreConfig,
)

KEYS = st.sampled_from([b"na", b"nb", b"nc", b"nd", b"ne"])
VALUES = st.binary(max_size=200)
DISKS = st.integers(min_value=0, max_value=2)


class NodeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.node = StorageNode(
            num_disks=3,
            config=StoreConfig(
                geometry=DiskGeometry(
                    num_extents=12, extent_size=4096, page_size=128
                ),
                seed=321,
            ),
        )
        self.expected = {}

    def _in_service_count(self):
        return sum(self.node.in_service(d) for d in range(3))

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.node.put(key, value)
        self.expected[key] = value

    @rule(key=KEYS)
    def get(self, key):
        try:
            observed = self.node.get(key)
            assert observed == self.expected.get(key)
        except NotFoundError:
            assert key not in self.expected

    @rule(key=KEYS)
    def delete(self, key):
        try:
            self.node.delete(key)
            self.expected.pop(key, None)
        except KeyNotFoundError:
            assert key not in self.expected
        except RetryableError:
            pass  # routed to an out-of-service disk; key unchanged

    @rule(pairs=st.lists(st.tuples(KEYS, VALUES), min_size=1, max_size=3))
    def bulk_create(self, pairs):
        self.node.bulk_create(list(pairs))
        for key, value in pairs:
            self.expected[key] = value

    @rule(keys=st.lists(KEYS, min_size=1, max_size=3))
    def bulk_delete(self, keys):
        self.node.bulk_delete(list(keys))
        for key in keys:
            self.expected.pop(key, None)

    @rule(key=KEYS, target_disk=DISKS)
    def migrate(self, key, target_disk):
        if not self.node.in_service(target_disk):
            return
        moved = self.node.migrate_shard(key, target_disk)
        assert moved == (key in self.expected)

    @rule(disk=DISKS)
    def remove_disk(self, disk):
        from repro.shardstore import InvalidRequestError

        try:
            self.node.remove_disk(disk)
        except InvalidRequestError:
            pass  # already removed or last disk

    @rule(disk=DISKS)
    def return_disk(self, disk):
        from repro.shardstore import InvalidRequestError

        try:
            self.node.return_disk(disk)
        except InvalidRequestError:
            pass

    @invariant()
    def listing_matches_model(self):
        assert self.node.keys() == sorted(self.expected)

    @invariant()
    def every_shard_readable_with_right_value(self):
        for key, value in self.expected.items():
            try:
                assert self.node.get(key) == value
            except RetryableError:
                # Unroutable is availability, not loss; but it must only
                # happen while the owning disk is out of service.
                owner = self.node._shard_map.get(key)
                assert owner is not None and not self.node.in_service(owner)


TestNodeControlPlane = NodeMachine.TestCase
TestNodeControlPlane.settings = settings(
    max_examples=20,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

pytestmark = pytest.mark.slow
