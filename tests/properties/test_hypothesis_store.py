"""Hypothesis stateful testing of the full store against the dict model.

This is the paper's Fig. 3 pattern expressed in hypothesis's
RuleBasedStateMachine: rules are the operation alphabet (API calls plus
background operations that must not change the mapping), and the invariant
compares the implementation's mapping with the reference model after every
step.  Hypothesis supplies generation and shrinking -- an independent
second PBT engine beside our own conformance runner.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.models import ReferenceKvStore
from repro.shardstore import (
    DiskGeometry,
    KeyNotFoundError,
    NotFoundError,
    RebootType,
    StoreConfig,
    StoreSystem,
)

KEYS = st.sampled_from([b"alpha", b"beta", b"gamma", b"delta", b"epsilon"])
VALUES = st.binary(max_size=400)


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(
                    num_extents=12, extent_size=4096, page_size=128
                ),
                seed=1234,
            )
        )
        self.model = ReferenceKvStore()

    @property
    def store(self):
        return self.system.store

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model.put(key, value)

    @rule(key=KEYS)
    def get(self, key):
        try:
            impl = self.store.get(key)
        except NotFoundError:
            impl = None
        try:
            expected = self.model.get(key)
        except NotFoundError:
            expected = None
        assert impl == expected

    @rule(key=KEYS)
    def delete(self, key):
        try:
            self.store.delete(key)
        except KeyNotFoundError:
            # The model (also KVNode-conformant) must agree the key is
            # absent; its own delete raises the same way.
            assert not self.model.contains(key)
        else:
            self.model.delete(key)

    @rule()
    def flush_index(self):
        self.store.flush_index()

    @rule()
    def flush_superblock(self):
        self.store.flush_superblock()

    @rule()
    def compact(self):
        self.store.compact()

    @rule(n=st.integers(min_value=1, max_value=20))
    def pump(self, n):
        self.store.pump(n)

    @rule()
    def reclaim_one(self):
        targets = self.store.reclaimable_extents()
        if targets:
            self.store.reclaim(targets[0])

    @rule()
    def clean_reboot(self):
        self.system.clean_reboot()

    @invariant()
    def same_mapping(self):
        assert set(self.store.keys()) == set(self.model.keys())


TestStoreConformance = StoreMachine.TestCase
TestStoreConformance.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class CrashMachine(RuleBasedStateMachine):
    """Crash-aware stateful test: dirty reboots with persistence checking.

    The model here is the set of keys *guaranteed* present (persistent
    puts) and the set possibly present; after each crash the observed state
    must lie between the two bounds.
    """

    def __init__(self):
        super().__init__()
        self.system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(
                    num_extents=12, extent_size=4096, page_size=128
                ),
                seed=77,
            )
        )
        self.oplog = []  # (key, value-or-None, dep)

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        dep = self.system.store.put(key, value)
        self.oplog.append((key, value, dep))

    @rule(key=KEYS)
    def delete(self, key):
        try:
            dep = self.system.store.delete(key)
        except KeyNotFoundError:
            return  # absent key: no state change, nothing to log
        self.oplog.append((key, None, dep))

    @rule()
    def flush_index(self):
        self.system.store.flush_index()

    @rule(n=st.integers(min_value=0, max_value=30))
    def pump(self, n):
        self.system.store.pump(n)

    @rule(pump=st.sampled_from([0, 3, None]))
    def dirty_reboot(self, pump):
        store = self.system.dirty_reboot(RebootType(pump=pump))
        for key in {entry[0] for entry in self.oplog}:
            ops = [entry for entry in self.oplog if entry[0] == key]
            last_persistent = None
            for index, (_, value, dep) in enumerate(ops):
                if dep.is_persistent():
                    last_persistent = index
            allowed_values = set()
            absent_ok = last_persistent is None
            for index, (_, value, dep) in enumerate(ops):
                if last_persistent is not None and index < last_persistent:
                    continue
                if value is None:
                    absent_ok = True
                else:
                    allowed_values.add(value)
            try:
                observed = store.get(key)
                assert observed in allowed_values, (key, len(observed))
            except NotFoundError:
                assert absent_ok, f"persistent key {key!r} lost"


TestCrashConsistency = CrashMachine.TestCase
TestCrashConsistency.settings = settings(
    max_examples=15,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

pytestmark = pytest.mark.slow
