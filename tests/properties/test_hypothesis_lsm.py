"""Hypothesis stateful testing of the LSM index component (Fig. 3 proper).

The paper argues for component-level harnesses ("we found it much easier
to exercise corner case scenarios by writing tests that directly exercise
internal component APIs", section 8.4).  This machine drives the LSM index
directly -- flushes, compactions, metadata recovery -- against the simple
dict specification, below the ShardStore API layer.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.shardstore import DiskGeometry, StoreConfig, StoreSystem
from repro.shardstore.lsm import LsmIndex

KEYS = st.sampled_from([b"ka", b"kb", b"kc", b"kd"])
VALUES = st.binary(min_size=0, max_size=220)


class LsmMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(
                    num_extents=12, extent_size=4096, page_size=128
                ),
                seed=555,
                memtable_flush_threshold=50,  # flushes are explicit rules
            )
        )
        self.store = self.system.store
        self.expected = {}

    @property
    def index(self) -> LsmIndex:
        return self.store.index

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        locators, data_dep = self.store.chunk_store.put_shard(key, value)
        self.index.put(key, locators, data_dep)
        self.expected[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.index.delete(key)
        self.expected.pop(key, None)

    @rule(key=KEYS)
    def get_matches(self, key):
        locators = self.index.get(key)
        if key in self.expected:
            assert locators is not None, f"{key!r} missing"
            value = self.store.chunk_store.get_shard(key, locators)
            assert value == self.expected[key]
        else:
            assert locators is None

    @rule()
    def flush(self):
        self.index.flush()

    @rule()
    def compact(self):
        self.index.compact()

    @rule()
    def reclaim(self):
        targets = self.store.reclaimable_extents()
        if targets:
            self.store.reclaim(targets[0])

    @rule()
    def recover_from_durable_state(self):
        """Flush + drain, then rebuild the index from disk: everything the
        metadata references must come back."""
        self.index.flush()
        self.store.flush_superblock()
        self.store.drain()
        recovered, lost = LsmIndex.recover(
            self.store.chunk_store, self.store.scheduler, self.system.config
        )
        assert lost == [], f"runs lost on recovery: {lost}"
        assert sorted(recovered.keys()) == sorted(self.expected)
        for key, value in self.expected.items():
            locators = recovered.get(key)
            assert self.store.chunk_store.get_shard(key, locators) == value

    @invariant()
    def key_sets_agree(self):
        assert sorted(self.index.keys()) == sorted(self.expected)


TestLsmComponent = LsmMachine.TestCase
TestLsmComponent.settings = settings(
    max_examples=20,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

pytestmark = pytest.mark.slow
