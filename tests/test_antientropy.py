"""Tests for Merkle anti-entropy: service, campaign suite, evidence plane."""

import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.errors import AntiEntropyError, DegradedReadError


def _router(**overrides) -> ClusterRouter:
    defaults = dict(num_nodes=5, seed=0, hint_limit=1)
    defaults.update(overrides)
    return ClusterRouter(ClusterConfig(**defaults))


def _storm_divergence(router: ClusterRouter) -> int:
    """Partition one replica, overflow its hint buffer with writes, heal
    and settle -- returns how many placement groups stayed divergent.

    No reads ever run, so read-repair cannot fire; dropped hints leave
    divergence only anti-entropy can heal.
    """
    victim = router._placement(b"dk-0")[-1]
    router.partition_node(victim)
    for i in range(16):
        router.put(b"dk-%d" % i, b"dv-%d" % i)
    router.settle()
    return int(router.antientropy.converged_snapshot()["divergent"])


class TestAntiEntropyService:
    def test_storm_leaves_divergence_without_anti_entropy(self):
        router = _router(anti_entropy=False)
        divergent = _storm_divergence(router)
        assert divergent > 0, "hint overflow must leave real divergence"
        assert not router.antientropy.roots_converged()

    def test_sync_heals_divergence_without_any_reads(self):
        router = _router(anti_entropy=True, anti_entropy_interval=0)
        assert _storm_divergence(router) > 0
        reads_before = router.stats["gets"]
        outcome = router.antientropy.run_until_converged()
        assert outcome["converged"]
        assert router.antientropy.roots_converged()
        assert router.stats["gets"] == reads_before
        assert router.stats["read_repairs"] == 0
        assert router.stats["anti_entropy_keys_repaired"] > 0
        # Converged roots mean converged bytes: raw replicas agree.
        for i in range(16):
            states = router.replica_states(b"dk-%d" % i)
            assert len(set(states.values())) == 1

    def test_background_rounds_run_on_the_op_clock(self):
        router = _router(anti_entropy=True, anti_entropy_interval=4)
        for i in range(24):
            router.put(b"bg-%d" % i, b"v")
        assert router.stats["anti_entropy_rounds"] >= 24 // 4 - 1

    def test_disabled_service_never_runs_background_rounds(self):
        router = _router(anti_entropy=False, anti_entropy_interval=4)
        for i in range(24):
            router.put(b"bg-%d" % i, b"v")
        assert router.stats["anti_entropy_rounds"] == 0

    def test_background_convergence_during_traffic(self):
        """Divergence created mid-stream is healed by op-clocked rounds
        alone -- no explicit sync call, no reads."""
        router = _router(anti_entropy=True, anti_entropy_interval=4)
        victim = router._placement(b"dk-0")[-1]
        router.partition_node(victim)
        for i in range(16):
            router.put(b"dk-%d" % i, b"dv-%d" % i)
        router.settle()
        for i in range(200):
            router.put(b"bg-%d" % (i % 4), b"v-%d" % i)
            if router.antientropy.roots_converged():
                break
        assert router.antientropy.roots_converged()

    def test_explicit_sync_raises_typed_error_on_unreachable_peer(self):
        router = _router()
        router.crash_node(2)
        with pytest.raises(AntiEntropyError) as err:
            router.antientropy.sync(0, 2)
        assert err.value.peer == 2
        assert err.value.reason == "crashed"

    def test_explicit_sync_raises_typed_error_on_unknown_peer(self):
        router = _router()
        with pytest.raises(AntiEntropyError) as err:
            router.antientropy.sync(0, 99)
        assert err.value.peer == 99
        assert err.value.reason == "unknown"

    def test_round_budgets_bound_descent_and_repairs(self):
        router = _router(
            anti_entropy=True,
            anti_entropy_interval=0,
            anti_entropy_buckets=2,
            anti_entropy_repairs=1,
        )
        assert _storm_divergence(router) > 0
        summary = router.antientropy.run_round()
        assert summary is not None
        assert summary["descended"] <= 2
        assert summary["repaired"] <= 1

    def test_round_skips_when_fewer_than_two_reachable(self):
        router = _router(num_nodes=3, replication=3, anti_entropy=True)
        for nid in (0, 1):
            router.partition_node(nid)
        assert router.antientropy.run_round() is None
        assert router.stats["anti_entropy_skips"] == 1

    def test_repair_preserves_newest_version(self):
        """Anti-entropy must never roll a replica back to an older value."""
        router = _router(anti_entropy=True, anti_entropy_interval=0)
        router.put(b"k", b"old")
        victim = router._placement(b"k")[-1]
        router.partition_node(victim)
        for i in range(8):  # overflow the one-slot hint buffer
            router.put(b"pad-%d" % i, b"p")
        router.put(b"k", b"new")
        router.settle()
        router.antientropy.run_until_converged()
        for rec in router.replica_states(b"k").values():
            assert rec is not None and rec[2] == b"new"
        assert router.get(b"k") == b"new"


class TestDegradedReadCandidates:
    def test_degraded_read_carries_per_replica_candidates(self):
        router = _router()
        router.put(b"k", b"v")
        prefs = router._placement(b"k")
        for nid in prefs[:2]:
            router.crash_node(nid)
        with pytest.raises(DegradedReadError) as err:
            router.get(b"k")
        candidates = err.value.candidates
        assert candidates is not None and len(candidates) == 1
        node_id, version = candidates[0]
        assert node_id == prefs[2]
        assert version >= 0

    def test_absent_replica_reports_version_minus_one(self):
        router = _router()
        prefs = router._placement(b"nope")
        for nid in prefs[:2]:
            router.crash_node(nid)
        with pytest.raises(DegradedReadError) as err:
            router.get(b"nope")
        assert err.value.candidates == [(prefs[2], -1)]


class TestPerNodeHintCounters:
    def test_hint_stats_track_queue_drop_replay_per_node(self):
        router = _router(hint_limit=1)
        victim = router._placement(b"hk-0")[-1]
        router.partition_node(victim)
        for i in range(12):
            router.put(b"hk-%d" % i, b"v")
        stats = router.hint_stats[victim]
        assert stats["queued"] >= 1
        assert stats["dropped"] >= 1
        router.settle()
        assert router.hint_stats[victim]["replayed"] >= 1
        # Per-node counters reconcile with the cluster-wide totals.
        for name in ("queued", "dropped", "replayed", "revoked"):
            assert sum(
                s[name] for s in router.hint_stats.values()
            ) == router.stats[f"hints_{name}"]

    def test_health_snapshot_exposes_per_node_hint_counters(self):
        router = _router(hint_limit=1)
        victim = router._placement(b"hk-0")[-1]
        router.partition_node(victim)
        for i in range(12):
            router.put(b"hk-%d" % i, b"v")
        snapshot = router.health_snapshot()
        node = snapshot["nodes"][str(victim)]
        assert node["hints_dropped"] >= 1
        assert "hints_revoked" in node
        assert snapshot["anti_entropy"]["enabled"] is False


class TestAntiEntropyCampaign:
    def _shard(self, *, anti_entropy: bool, seed: int = 0):
        from repro.campaign.antientropy import run_shard
        from repro.campaign.spec import ShardSpec

        return run_shard(
            ShardSpec.make(
                0,
                "anti-entropy",
                seed,
                profile="partition",
                sequences=2,
                ops=80,
                nodes=5,
                anti_entropy=anti_entropy,
            )
        )

    def test_positive_shard_converges_with_zero_reads(self):
        result = self._shard(anti_entropy=True)
        assert result.ok
        block = result.anti_entropy
        assert block["roots_converged"]
        assert block["pre_settle_divergent"] > 0, (
            "the storm must leave real divergence for sync to heal"
        )
        assert block["anti_entropy_keys_repaired"] > 0
        assert block["hints_dropped"] > 0
        assert block["evidence"]["check_passed"]

    def test_negative_control_fails_at_seed_zero(self):
        result = self._shard(anti_entropy=False)
        assert not result.ok
        assert not result.anti_entropy["roots_converged"]
        assert "divergent" in result.failures[0].detail

    def test_shard_is_deterministic(self):
        a = self._shard(anti_entropy=True)
        b = self._shard(anti_entropy=True)
        assert a.anti_entropy == b.anti_entropy
        assert a.cases == b.cases

    def test_artifact_block_has_per_node_hint_breakdown(self):
        block = self._shard(anti_entropy=True).anti_entropy
        hints = block["hints_by_node"]
        assert hints, "per-node hint breakdown must be present"
        assert sum(s["dropped"] for s in hints.values()) == block[
            "hints_dropped"
        ]

    def test_smoke_suite_aggregates_v7_section(self):
        from repro.campaign import run_campaign
        from repro.campaign.spec import smoke_spec

        spec = smoke_spec(workers=1, base_seed=0, suite="anti-entropy")
        artifact = run_campaign(spec).to_json()
        assert artifact["schema_version"] == 7
        assert artifact["passed"]
        section = artifact["anti_entropy"]
        assert section["all_converged"]
        assert section["evidence_passed"]
        assert section["totals"]["anti_entropy_keys_repaired"] > 0
        assert len(section["shards"]) == 3

    def test_no_anti_entropy_campaign_fails(self):
        from repro.campaign import run_campaign
        from repro.campaign.spec import smoke_spec

        spec = smoke_spec(
            workers=1,
            base_seed=0,
            suite="anti-entropy",
            anti_entropy_enabled=False,
        )
        artifact = run_campaign(spec).to_json()
        assert not artifact["passed"]
        assert not artifact["anti_entropy"]["all_converged"]


class TestAntiEntropyEvidence:
    def _journaled_run(self, *, anti_entropy: bool):
        from repro.shardstore.observability import Journal

        journals = []

        def factory(identity, meta):
            journal = Journal(meta=dict(meta), node=identity)
            journals.append(journal)
            return journal

        router = ClusterRouter(
            ClusterConfig(
                num_nodes=5,
                seed=0,
                hint_limit=1,
                anti_entropy=anti_entropy,
                anti_entropy_interval=0,
            ),
            journal_factory=factory,
        )
        victim = router._placement(b"dk-0")[-1]
        router.partition_node(victim)
        for i in range(16):
            router.put(b"dk-%d" % i, b"dv-%d" % i)
        router.settle()
        if anti_entropy:
            router.antientropy.run_until_converged()
        router.antientropy.journal_roots()
        return router, journals

    def test_journal_carries_settle_sync_and_roots_records(self):
        router, journals = self._journaled_run(anti_entropy=True)
        kinds = [entry.get("kind") for entry in router.journal.entries]
        assert "settle" in kinds
        assert "anti_entropy" in kinds
        assert "merkle_roots" in kinds
        roots = [
            entry
            for entry in router.journal.entries
            if entry.get("kind") == "merkle_roots"
        ]
        assert roots[-1]["converged"] is True
        assert len(roots[-1]["roots"]) == 5

    def test_merged_checker_accepts_anti_entropy_repairs(self):
        from repro.evidence import check_cluster_journals

        router, journals = self._journaled_run(anti_entropy=True)
        router.close()
        report = check_cluster_journals(
            [journal.entries for journal in journals], require_seal=True
        )
        assert report.passed, report.violations[:3]

    def test_mined_invariant_roots_converge_after_settle(self):
        from repro.evidence.invariants import mine_journal

        router, _ = self._journaled_run(anti_entropy=True)
        results = mine_journal(router.journal.entries)
        inv = {r.name: r for r in results}["roots-converge-after-settle"]
        assert inv.status == "confirmed"
        assert inv.instances >= 1

    def test_mined_invariant_flags_divergence_after_settle(self):
        from repro.evidence.invariants import mine_journal

        router, _ = self._journaled_run(anti_entropy=False)
        results = mine_journal(router.journal.entries)
        inv = {r.name: r for r in results}["roots-converge-after-settle"]
        assert inv.status == "falsified"
        assert "divergent" in inv.detail
