"""Unit tests for test-case minimization (section 4.3)."""

import pytest

from repro.core.alphabet import Operation
from repro.core.minimize import (
    Minimizer,
    minimize,
    sequence_bytes,
    sequence_crashes,
)


def _ops(*names):
    return [Operation(name) for name in names]


class TestRemoval:
    def test_removes_irrelevant_operations(self):
        # Fails iff the sequence contains a "Bad" op.
        fails = lambda ops: any(op.name == "Bad" for op in ops)  # noqa: E731
        sequence = _ops("A", "B", "Bad", "C", "D", "E")
        reduced, stats = minimize(sequence, fails)
        assert reduced == _ops("Bad")
        assert stats.initial_ops == 6
        assert stats.final_ops == 1

    def test_preserves_required_pair(self):
        def fails(ops):
            names = [op.name for op in ops]
            return "First" in names and "Second" in names and (
                names.index("First") < names.index("Second")
            )

        sequence = _ops("X", "First", "Y", "Z", "Second", "W")
        reduced, _ = minimize(sequence, fails)
        assert [op.name for op in reduced] == ["First", "Second"]

    def test_rejects_non_failing_input(self):
        with pytest.raises(ValueError):
            minimize(_ops("A"), lambda ops: False)


class TestArgumentShrinking:
    def test_ints_shrink_toward_zero(self):
        # Fails iff some op has an int arg >= 10.
        fails = lambda ops: any(  # noqa: E731
            isinstance(a, int) and a >= 10 for op in ops for a in op.args
        )
        sequence = [Operation("N", (1000,))]
        reduced, _ = minimize(sequence, fails)
        assert reduced[0].args[0] < 1000
        assert fails(reduced)

    def test_bytes_shrink(self):
        fails = lambda ops: any(  # noqa: E731
            isinstance(a, bytes) and len(a) >= 4 for op in ops for a in op.args
        )
        sequence = [Operation("B", (b"x" * 500,))]
        reduced, _ = minimize(sequence, fails)
        assert len(reduced[0].args[0]) < 500

    def test_bools_shrink_to_false(self):
        fails = lambda ops: bool(ops)  # noqa: E731  (any nonempty fails)
        sequence = [Operation("F", (True, 7))]
        reduced, _ = minimize(sequence, fails)
        assert reduced[0].args in ((False, 0), (False, 7), (True, 0))
        # at least one simplification applied
        assert reduced[0].args != (True, 7)

    def test_mixed_payload_shrinks_bytes_metric(self):
        fails = lambda ops: any(op.name == "Put" for op in ops)  # noqa: E731
        sequence = [Operation("Put", (b"key", b"v" * 100)), Operation("Noise")]
        reduced, stats = minimize(sequence, fails)
        assert stats.final_bytes_written < stats.initial_bytes_written


class TestBudget:
    def test_candidate_budget_respected(self):
        calls = []

        def fails(ops):
            calls.append(1)
            return True

        minimizer = Minimizer(fails, max_candidates=10)
        minimizer.minimize(_ops(*"ABCDEFGHIJ"))
        assert minimizer.stats.candidates_tried <= 10


class TestMetrics:
    def test_sequence_bytes_counts_put_payloads(self):
        ops = [
            Operation("Put", (b"k", b"12345")),
            Operation("Get", (b"k",)),
            Operation("BulkCreate", (((b"a", b"xy"),),)),
        ]
        assert sequence_bytes(ops) == 7

    def test_sequence_crashes(self):
        ops = _ops("Put", "DirtyReboot", "Get", "Reboot", "DirtyReboot")
        assert sequence_crashes(ops) == 3
