"""Tests for the chained op journal (the evidence plane's write side).

Two properties carry the whole design and are pinned here byte-for-byte:
determinism (same seed => byte-identical journal file, any worker count)
and tamper evidence (any edit, reorder, interior delete, or truncated
tail is detectable from the file alone).
"""

import json

import pytest

from repro.bench import run_bench
from repro.shardstore import RingRecorder, StorageNode, StoreConfig
from repro.errors import NotFoundError
from repro.shardstore.observability import render_snapshot, render_trace
from repro.shardstore.observability.journal import (
    GENESIS_CHAIN,
    Journal,
    JournalError,
    canonical_json,
    chain_digest,
    digest_bytes,
    digest_key_digests,
    digest_keys,
    journal_head,
    read_journal,
    verify_chain,
)


def _node_with_journal(path=None):
    journal = Journal(path, meta={"source": "test"})
    config = StoreConfig(journal=journal)
    return StorageNode(3, config), journal


class TestChainPrimitives:
    def test_digest_bytes_is_short_and_stable(self):
        assert digest_bytes(b"k1") == digest_bytes(b"k1")
        assert len(digest_bytes(b"k1")) == 16
        assert digest_bytes(b"k1") != digest_bytes(b"k2")

    def test_digest_keys_sorts_by_digest(self):
        # Order-insensitive, and recomputable from digests alone -- the
        # trace checker never sees raw keys.
        keys = [b"b", b"a", b"c"]
        assert digest_keys(keys) == digest_keys(list(reversed(keys)))
        assert digest_keys(keys) == digest_key_digests(
            digest_bytes(k) for k in keys
        )

    def test_chain_digest_depends_on_prev_and_body(self):
        body = canonical_json({"kind": "put"})
        assert chain_digest(GENESIS_CHAIN, body) != chain_digest("f" * 16, body)
        assert chain_digest(GENESIS_CHAIN, body) != chain_digest(
            GENESIS_CHAIN, canonical_json({"kind": "get"})
        )


class TestJournalLifecycle:
    def test_genesis_then_ops_then_seal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        node, journal = _node_with_journal(path=path)
        node.put(b"k", b"v")
        assert node.get(b"k") == b"v"
        node.delete(b"k")
        head = journal.close()
        entries = read_journal(path)
        assert entries[0]["kind"] == "genesis"
        assert entries[-1]["kind"] == "seal"
        assert [e["kind"] for e in entries[1:-1]] == ["put", "get", "delete"]
        assert entries[-1]["counts"] == {
            "delete:ok": 1,
            "get:ok": 1,
            "put:ok": 1,
        }
        assert journal_head(entries) == head
        assert verify_chain(entries) == []

    def test_nesting_guard_one_record_per_node_op(self):
        # A node put fans out to per-disk store ops (primary + replica)
        # through the same journal; only the outermost op may record.
        node, journal = _node_with_journal()
        node.put(b"k", b"v")
        puts = [e for e in journal.entries if e.get("kind") == "put"]
        assert len(puts) == 1

    def test_op_ids_strictly_increase_in_record_order(self):
        node, journal = _node_with_journal()
        for i in range(8):
            node.put(b"k%d" % i, b"v")
        journal.record_op("breaker", out="open")
        node.get(b"k0")
        journal.close()
        ids = [e["op"] for e in journal.entries if "op" in e]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_error_outcomes_are_classified(self):
        node, journal = _node_with_journal()
        with pytest.raises(NotFoundError):
            node.get(b"missing")
        assert journal.entries[-1]["kind"] == "get"
        assert journal.entries[-1]["out"] == "not_found"

    def test_sealed_journal_rejects_writes(self):
        journal = Journal()
        journal.close()
        assert journal.record_op("put", key=b"k", value=b"v") is None
        assert journal.close() == journal.head  # idempotent

    def test_no_raw_bytes_in_records(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        node, journal = _node_with_journal(path=path)
        node.put(b"sekrit-key", b"sekrit-value")
        journal.close()
        raw = (tmp_path / "j.jsonl").read_text()
        assert "sekrit" not in raw


class TestTamperEvidence:
    def _journal_lines(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        artifact = run_bench(
            "mixed", ops=120, seed=11, journal_path=path
        )
        assert artifact["journal"]["head"] == journal_head(read_journal(path))
        return path, (tmp_path / "j.jsonl").read_text().splitlines()

    def test_edited_record_breaks_chain(self, tmp_path):
        path, lines = self._journal_lines(tmp_path)
        victim = json.loads(lines[3])
        victim["out"] = "not_found" if victim.get("out") == "ok" else "ok"
        lines[3] = canonical_json(victim)
        problems = verify_chain([json.loads(line) for line in lines])
        assert problems and "record 3" in problems[0]

    def test_deleted_interior_record_breaks_chain(self, tmp_path):
        path, lines = self._journal_lines(tmp_path)
        del lines[4]
        problems = verify_chain([json.loads(line) for line in lines])
        assert problems

    def test_reordered_records_break_chain(self, tmp_path):
        path, lines = self._journal_lines(tmp_path)
        lines[3], lines[4] = lines[4], lines[3]
        problems = verify_chain([json.loads(line) for line in lines])
        assert problems

    def test_truncated_tail_drops_seal(self, tmp_path):
        path, lines = self._journal_lines(tmp_path)
        entries = [json.loads(line) for line in lines[:-1]]
        assert verify_chain(entries) == []  # chain intact...
        assert entries[-1]["kind"] != "seal"  # ...but the seal is gone

    def test_read_journal_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(JournalError):
            read_journal(str(bad))
        with pytest.raises(JournalError):
            read_journal(str(tmp_path / "missing.jsonl"))


class TestJournalDeterminism:
    @pytest.mark.parametrize("workload", ["mixed", "crash-recover"])
    def test_same_seed_byte_identical_journal(self, tmp_path, workload):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        art_a = run_bench(workload, ops=200, seed=13, journal_path=str(a))
        art_b = run_bench(workload, ops=200, seed=13, journal_path=str(b))
        assert a.read_bytes() == b.read_bytes()
        assert art_a["journal"]["head"] == art_b["journal"]["head"]

    def test_different_seed_different_journal(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        run_bench("mixed", ops=200, seed=13, journal_path=str(a))
        run_bench("mixed", ops=200, seed=14, journal_path=str(b))
        assert journal_head(read_journal(str(a))) != journal_head(
            read_journal(str(b))
        )


class TestTraceDroppedCounter:
    def test_ring_eviction_is_counted_and_rendered(self):
        recorder = RingRecorder(capacity=8)
        for i in range(20):
            recorder.event("e%d" % i)
        snapshot = recorder.snapshot()
        assert snapshot["trace_dropped"] == 12
        rendered = render_snapshot(snapshot)
        assert "evicted 12 older entries" in rendered

    def test_no_eviction_no_noise(self):
        recorder = RingRecorder(capacity=64)
        recorder.event("only")
        snapshot = recorder.snapshot()
        assert "trace_dropped" not in snapshot
        assert "evicted" not in render_trace(snapshot["trace"])
