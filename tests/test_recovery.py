"""Recovery edge cases: empty disks, torn logs, stale pointers, sealing."""

import pytest

from repro.shardstore import (
    SUPERBLOCK_EXTENTS,
    DiskGeometry,
    NotFoundError,
    RebootType,
    ShardStore,
    StoreConfig,
    StoreSystem,
)


def _system(**kwargs):
    return StoreSystem(
        StoreConfig(
            geometry=DiskGeometry(num_extents=12, extent_size=2048, page_size=128),
            **kwargs,
        )
    )


class TestColdStarts:
    def test_recovery_of_empty_disk(self):
        system = _system()
        store = system.dirty_reboot(RebootType(pump=0))
        assert store.keys() == []
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_recovery_with_only_superblock(self):
        system = _system()
        system.store.flush_superblock()
        system.store.drain()
        store = system.dirty_reboot(RebootType(pump=None))
        assert store.keys() == []

    def test_double_dirty_reboot(self):
        system = _system()
        system.store.put(b"k", b"v")
        system.dirty_reboot(RebootType(pump=0))
        store = system.dirty_reboot(RebootType(pump=0))
        with pytest.raises(NotFoundError):
            store.get(b"k")


class TestLogSealing:
    def test_torn_superblock_record_is_sealed(self):
        """A torn multi-page record must not strand later records."""
        system = _system()
        store = system.store
        store.put(b"a", b"1" * 100)
        store.flush_superblock()
        # Crash with only part of the pending records applied repeatedly;
        # every subsequent boot must still converge on consistent state.
        for pump in (1, 2, 3):
            store = system.dirty_reboot(RebootType(pump=pump))
            store.put(b"a", bytes([pump]) * 50)
            store.flush_index()
            store.flush_superblock()
        store = system.clean_reboot()
        assert store.get(b"a") == bytes([3]) * 50

    def test_seal_truncates_garbage_tail(self):
        system = _system()
        store = system.store
        store.flush_superblock()
        store.drain()
        # Write garbage directly after the valid records (simulating the
        # durable prefix of a torn multi-page record).
        extent = SUPERBLOCK_EXTENTS[0]
        hard = system.disk.write_pointer(extent)
        system.disk.write(extent, hard, b"\xde\xad" * 64)
        store = system.dirty_reboot(RebootType(pump=0))
        # The seal removed the garbage; new records append contiguously
        # and remain recoverable.
        store.flush_superblock()
        store.drain()
        store2 = system.dirty_reboot(RebootType(pump=0))
        assert store2.superblock.current_epoch() >= 1


class TestPointerRecovery:
    def test_data_beyond_published_pointer_is_discarded(self):
        system = _system()
        store = system.store
        dep = store.put(b"k", b"value" * 30)
        store.flush_index()
        # Drain data but never flush the superblock: the published pointer
        # cannot cover the chunk.
        while store.scheduler.pump_one():
            pass
        assert not dep.is_persistent()
        store.scheduler.drop_pending()
        recovered = ShardStore(
            system.disk, system.tracker, system.config, recover=True
        )
        # The key is allowed to be lost (its dependency never reported
        # persistent); and must not be readable as garbage.
        try:
            value = recovered.get(b"k")
            assert value == b"value" * 30  # fine if index+data both made it
        except NotFoundError:
            pass

    def test_recovered_pointers_are_page_aligned(self):
        system = _system()
        store = system.store
        store.put(b"k", b"x" * 333)
        store.flush_index()
        store.flush_superblock()
        store = system.dirty_reboot(RebootType(pump=None))
        for extent in system.config.data_extents:
            pointer = store.scheduler.soft_pointer(extent)
            assert pointer % system.config.geometry.page_size == 0


class TestCrossGeometry:
    @pytest.mark.parametrize("page_size", [64, 128, 256])
    def test_roundtrip_across_page_sizes(self, page_size):
        system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(
                    num_extents=12, extent_size=4096, page_size=page_size
                )
            )
        )
        store = system.store
        values = {b"key%d" % i: bytes([i]) * (page_size + i) for i in range(5)}
        for key, value in values.items():
            store.put(key, value)
        store = system.clean_reboot()
        for key, value in values.items():
            assert store.get(key) == value

    def test_config_rejects_tiny_geometry(self):
        with pytest.raises(ValueError):
            StoreConfig(
                geometry=DiskGeometry(num_extents=4, extent_size=1024, page_size=128)
            )

    def test_config_rejects_oversized_chunks(self):
        with pytest.raises(ValueError):
            StoreConfig(
                geometry=DiskGeometry(
                    num_extents=12, extent_size=1024, page_size=128
                ),
                max_chunk_payload=2048,
            )


class _CrashAt:
    """Recovery hook that raises at one named step (a crash mid-recovery)."""

    def __init__(self, step):
        self.step = step
        self.seen = []

    def __call__(self, step):
        self.seen.append(step)
        if step == self.step:
            raise RuntimeError(f"injected crash during recovery at {step!r}")


class TestReentrantRecovery:
    """Crash at every recovery step boundary; recovering again must
    converge -- recovery itself is just another crash point."""

    def _populated(self):
        system = _system()
        store = system.store
        for i in range(8):
            store.put(b"k%d" % i, b"v%d" % i * 5)
        store.delete(b"k3")
        store.flush()
        store.drain()
        store.put(b"lost", b"x")  # pending: the crash will drop it
        return system

    def _assert_recovered(self, store):
        for i in range(8):
            if i == 3:
                continue
            assert store.get(b"k%d" % i) == b"v%d" % i * 5
        with pytest.raises(NotFoundError):
            store.get(b"k3")
        assert store.scrub().clean
        store.put(b"fresh", b"alive")
        store.drain()
        assert store.get(b"fresh") == b"alive"

    def test_hook_sees_every_step_in_order(self):
        system = self._populated()
        seen = []
        system.dirty_reboot(RebootType(pump=0), recovery_hook=seen.append)
        assert seen == list(ShardStore.RECOVERY_STEPS)

    @pytest.mark.parametrize("step", ShardStore.RECOVERY_STEPS)
    def test_crash_at_step_then_recover(self, step):
        system = self._populated()
        with pytest.raises(RuntimeError):
            system.dirty_reboot(RebootType(pump=0), recovery_hook=_CrashAt(step))
        self._assert_recovered(system.recover_again())

    def test_crash_at_every_step_successively(self):
        """One interrupted recovery per step, back to back, then converge."""
        system = self._populated()
        with pytest.raises(RuntimeError):
            system.dirty_reboot(
                RebootType(pump=0), recovery_hook=_CrashAt("seal")
            )
        for step in ShardStore.RECOVERY_STEPS[1:]:
            with pytest.raises(RuntimeError):
                system.recover_again(recovery_hook=_CrashAt(step))
        self._assert_recovered(system.recover_again())

    def test_repeated_recovery_is_idempotent(self):
        system = self._populated()
        first = system.dirty_reboot(RebootType(pump=0))
        contents = {key: first.get(key) for key in first.keys()}
        second = system.recover_again()
        assert {key: second.get(key) for key in second.keys()} == contents
        assert second.scrub().clean

    def test_crash_during_clean_reboot_recovery(self):
        system = self._populated()
        system.store.drain()
        with pytest.raises(RuntimeError):
            system.clean_reboot(recovery_hook=_CrashAt("index"))
        store = system.recover_again()
        self._assert_recovered(store)
