"""Tests for the Fig. 5 fault registry itself."""


from repro.shardstore import FAULT_CATALOG, Fault, FaultSet, detector_for


class TestCatalog:
    def test_sixteen_issues(self):
        assert len(Fault) == 16
        assert len(FAULT_CATALOG) == 16
        assert sorted(f.value for f in Fault) == list(range(1, 17))

    def test_paper_property_distribution(self):
        """Fig. 5's grouping: 5 functional, 5 crash, 6 concurrency."""
        by_property = {}
        for meta in FAULT_CATALOG.values():
            by_property.setdefault(meta["property"], []).append(meta)
        assert len(by_property["Functional Correctness"]) == 5
        assert len(by_property["Crash Consistency"]) == 5
        assert len(by_property["Concurrency"]) == 6

    def test_paper_component_distribution(self):
        """Fig. 5's components: chunk store is the biggest source."""
        components = [meta["component"] for meta in FAULT_CATALOG.values()]
        assert components.count("Chunk store") == 6
        assert components.count("Superblock") == 3
        assert components.count("API") == 3
        assert components.count("Buffer cache") == 2
        assert components.count("Index") == 2

    def test_every_fault_has_detector(self):
        for fault in Fault:
            assert detector_for(fault) in (
                "conformance PBT",
                "crash-consistency PBT",
                "stateless model checking",
            )


class TestFaultSet:
    def test_none_is_empty(self):
        faults = FaultSet.none()
        assert not faults
        assert all(not faults.enabled(f) for f in Fault)

    def test_only_enables_one(self):
        faults = FaultSet.only(Fault.RECLAIM_OFF_BY_ONE)
        assert faults.enabled(Fault.RECLAIM_OFF_BY_ONE)
        assert not faults.enabled(Fault.CACHE_NOT_DRAINED_ON_RESET)

    def test_with_is_nondestructive(self):
        base = FaultSet.only(Fault.RECLAIM_OFF_BY_ONE)
        extended = base.with_(Fault.LIST_REMOVE_RACE)
        assert not base.enabled(Fault.LIST_REMOVE_RACE)
        assert extended.enabled(Fault.LIST_REMOVE_RACE)
        assert extended.enabled(Fault.RECLAIM_OFF_BY_ONE)

    def test_iteration_ordered_by_number(self):
        faults = FaultSet([Fault.LIST_REMOVE_RACE, Fault.RECLAIM_OFF_BY_ONE])
        assert [f.value for f in faults] == [1, 13]

    def test_repr_names_faults(self):
        assert "RECLAIM_OFF_BY_ONE" in repr(FaultSet.only(Fault.RECLAIM_OFF_BY_ONE))
