"""Unit tests for the ShardStore API facade and StoreSystem reboots."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    InvalidRequestError,
    KeyNotFoundError,
    NotFoundError,
    RebootType,
    StoreConfig,
    StoreSystem,
)


def _system(**kwargs):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=12, extent_size=2048, page_size=128),
        **kwargs,
    )
    return StoreSystem(config)


class TestApi:
    def test_put_get_delete_cycle(self):
        store = _system().store
        store.put(b"k", b"value")
        assert store.get(b"k") == b"value"
        assert store.contains(b"k")
        store.delete(b"k")
        assert not store.contains(b"k")
        with pytest.raises(NotFoundError):
            store.get(b"k")

    def test_empty_value_roundtrip(self):
        store = _system().store
        store.put(b"empty", b"")
        assert store.get(b"empty") == b""

    def test_overwrite(self):
        store = _system().store
        store.put(b"k", b"one")
        store.put(b"k", b"two")
        assert store.get(b"k") == b"two"

    def test_keys_sorted(self):
        store = _system().store
        for key in (b"c", b"a", b"b"):
            store.put(key, b"v")
        assert store.keys() == [b"a", b"b", b"c"]

    def test_delete_absent_raises(self):
        store = _system().store
        with pytest.raises(KeyNotFoundError):
            store.delete(b"never-put")

    @pytest.mark.parametrize("key", [b"", "string", None, b"x" * 2000])
    def test_invalid_keys_rejected(self, key):
        store = _system().store
        with pytest.raises(InvalidRequestError):
            store.put(key, b"v")
        with pytest.raises(InvalidRequestError):
            store.get(key)
        with pytest.raises(InvalidRequestError):
            store.delete(key)

    def test_large_value_spans_chunks(self):
        store = _system().store
        value = bytes(i % 256 for i in range(1500))
        store.put(b"large", value)
        assert store.get(b"large") == value
        assert len(store.index.get(b"large")) > 1


class TestDurability:
    def test_dep_not_persistent_until_writeback(self):
        store = _system().store
        dep = store.put(b"k", b"v")
        assert not dep.is_persistent()

    def test_clean_shutdown_satisfies_forward_progress(self):
        system = _system()
        deps = [system.store.put(b"k%d" % i, bytes([i]) * 50) for i in range(10)]
        deps.append(system.store.delete(b"k3"))
        system.store.clean_shutdown()
        assert all(dep.is_persistent() for dep in deps)

    def test_drain_resolves_pointer_promises(self):
        store = _system().store
        dep = store.put(b"k", b"v" * 100)
        store.flush_index()
        store.drain()
        assert dep.is_persistent()


class TestReboots:
    def test_clean_reboot_preserves_everything(self):
        system = _system()
        values = {b"key%d" % i: bytes([i + 1]) * 111 for i in range(8)}
        for key, value in values.items():
            system.store.put(key, value)
        store = system.clean_reboot()
        for key, value in values.items():
            assert store.get(key) == value
        assert store.keys() == sorted(values)

    def test_repeated_clean_reboots(self):
        system = _system()
        for generation in range(5):
            system.store.put(b"gen", bytes([generation]) * 20)
            store = system.clean_reboot()
            assert store.get(b"gen") == bytes([generation]) * 20

    def test_dirty_reboot_with_no_writeback_loses_unflushed(self):
        system = _system()
        system.store.put(b"volatile", b"gone")
        store = system.dirty_reboot(RebootType(pump=0))
        with pytest.raises(NotFoundError):
            store.get(b"volatile")

    def test_dirty_reboot_preserves_persistent_data(self):
        system = _system()
        dep = system.store.put(b"durable", b"kept")
        system.store.flush_index()
        system.store.flush_superblock()
        system.store.drain()
        assert dep.is_persistent()
        store = system.dirty_reboot(RebootType(pump=0))
        assert store.get(b"durable") == b"kept"

    def test_dirty_reboot_flush_flags(self):
        system = _system()
        system.store.put(b"k", b"flushed-by-reboot-type")
        store = system.dirty_reboot(
            RebootType(flush_index=True, flush_superblock=True, pump=None)
        )
        assert store.get(b"k") == b"flushed-by-reboot-type"

    def test_generation_counter_advances(self):
        system = _system()
        assert system.generation == 0
        system.clean_reboot()
        system.dirty_reboot(RebootType.NONE)
        assert system.generation == 2


class TestMaintenanceOps:
    def test_background_ops_preserve_mapping(self):
        system = _system()
        store = system.store
        values = {b"key%d" % i: bytes([i]) * 130 for i in range(6)}
        for key, value in values.items():
            store.put(key, value)
        store.flush_index()
        store.compact()
        store.flush_superblock()
        for extent in store.reclaimable_extents():
            store.reclaim(extent)
        store.pump(10)
        for key, value in values.items():
            assert store.get(key) == value

    def test_reclaimable_excludes_open(self):
        store = _system().store
        store.put(b"k", b"v")
        assert store.chunk_store.open_extent not in store.reclaimable_extents()
