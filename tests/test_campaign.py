"""Tests for the parallel validation-campaign runner."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ShardFailure,
    ShardResult,
    ShardSpec,
    aggregate,
    build_shards,
    result_to_json,
    run_campaign,
    smoke_spec,
)
from repro.campaign.runner import SEED_STRIDE, execute_shard
from repro.campaign.spec import (
    KIND_ANTIENTROPY,
    KIND_CLUSTER,
    KIND_CONFORMANCE,
    KIND_CRASH,
    KIND_FAULT_MATRIX,
    KIND_FUZZ,
    KIND_INJECTION,
)
from repro.shardstore import Fault

pytestmark = pytest.mark.campaign


class TestShardPartitioning:
    def test_shard_ids_are_dense_and_ordered(self):
        shards = build_shards(smoke_spec(base_seed=7))
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_every_phase_is_represented(self):
        kinds = {s.kind for s in build_shards(smoke_spec())}
        assert kinds == {
            KIND_CONFORMANCE,
            KIND_CRASH,
            KIND_FUZZ,
            KIND_FAULT_MATRIX,
            KIND_INJECTION,
        }

    def test_fault_matrix_covers_all_16_issues(self):
        shards = build_shards(smoke_spec())
        matrix = [s for s in shards if s.kind == KIND_FAULT_MATRIX]
        assert sorted(s.param("fault") for s in matrix) == sorted(
            fault.name for fault in Fault
        )

    def test_unpinned_seeds_partition_without_overlap(self):
        """Shard k draws sequence seeds from base + k*stride: disjoint."""
        shards = build_shards(smoke_spec(base_seed=3))
        unpinned = [s for s in shards if s.kind != KIND_FAULT_MATRIX]
        for shard in unpinned:
            assert shard.seed == 3 + shard.shard_id * SEED_STRIDE
        spans = [
            (s.seed, s.seed + s.param("sequences", 1)) for s in unpinned
        ]
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi <= b_lo

    def test_compilation_is_deterministic(self):
        assert build_shards(smoke_spec(base_seed=5)) == build_shards(
            smoke_spec(base_seed=5)
        )

    def test_coverage_traced_on_exactly_one_shard(self):
        shards = build_shards(smoke_spec())
        assert sum(1 for s in shards if s.param("coverage")) == 1

    def test_param_lookup(self):
        spec = ShardSpec.make(0, KIND_FUZZ, 9, decoder="decode_value")
        assert spec.param("decoder") == "decode_value"
        assert spec.param("missing", 42) == 42


class TestFailureAggregation:
    def _result(self, shard_id, kind, **kwargs):
        return ShardResult(shard_id=shard_id, kind=kind, seed=shard_id, **kwargs)

    def test_unexpected_failure_fails_the_campaign(self):
        failure = ShardFailure(
            kind=KIND_CONFORMANCE, seed=11, detail="divergence"
        )
        outcome = aggregate(
            CampaignSpec(),
            [
                self._result(0, KIND_CONFORMANCE, cases=5),
                self._result(1, KIND_CONFORMANCE, cases=5, failures=[failure]),
            ],
            wall_clock_seconds=1.0,
        )
        assert not outcome.passed
        artifact = result_to_json(outcome)
        assert artifact["totals"]["failures"] == 1
        assert artifact["failures"][0]["shard_id"] == 1
        assert artifact["failures"][0]["seed"] == 11
        assert not artifact["passed"]

    def test_missed_fault_fails_the_campaign(self):
        outcome = aggregate(
            CampaignSpec(),
            [
                self._result(
                    0,
                    KIND_FAULT_MATRIX,
                    cases=8,
                    expected_failure=True,
                    fault=Fault.RECLAIM_OFF_BY_ONE.name,
                    detector="conformance PBT",
                )
            ],
            wall_clock_seconds=1.0,
        )
        assert outcome.missed_faults == [Fault.RECLAIM_OFF_BY_ONE.name]
        assert not outcome.passed
        artifact = result_to_json(outcome)
        assert artifact["totals"]["faults_missed"] == 1
        assert artifact["fault_matrix"][0]["detected"] is False

    def test_detected_fault_is_not_a_failure(self):
        failure = ShardFailure(
            kind=KIND_FAULT_MATRIX,
            seed=15,
            detail="op[3] ...",
            fault=Fault.RECLAIM_OFF_BY_ONE.name,
        )
        outcome = aggregate(
            CampaignSpec(),
            [
                self._result(
                    0,
                    KIND_FAULT_MATRIX,
                    cases=8,
                    failures=[failure],
                    expected_failure=True,
                    fault=Fault.RECLAIM_OFF_BY_ONE.name,
                    detector="conformance PBT",
                )
            ],
            wall_clock_seconds=1.0,
        )
        assert outcome.passed
        artifact = result_to_json(outcome)
        assert artifact["totals"]["failures"] == 0
        assert artifact["totals"]["faults_detected"] == 1
        assert artifact["fault_matrix"][0]["evidence"] == "op[3] ..."

    def test_skipped_fault_shard_fails_the_gate(self):
        """Budget cuts may skip random search, never the known-answer matrix."""
        outcome = aggregate(
            CampaignSpec(),
            [
                self._result(
                    0,
                    KIND_FAULT_MATRIX,
                    expected_failure=True,
                    fault=Fault.RECLAIM_OFF_BY_ONE.name,
                    detector="conformance PBT",
                    skipped=True,
                ),
                self._result(1, KIND_CONFORMANCE, skipped=True),
            ],
            wall_clock_seconds=1.0,
        )
        assert outcome.missed_faults == []  # it never ran, so not "missed"
        assert not outcome.passed
        assert not result_to_json(outcome)["passed"]

    def test_coverage_lines_merge_across_shards(self):
        outcome = aggregate(
            CampaignSpec(),
            [
                self._result(
                    0,
                    KIND_CONFORMANCE,
                    coverage_lines=[("store.py", 1), ("store.py", 2)],
                ),
                self._result(
                    1,
                    KIND_CONFORMANCE,
                    coverage_lines=[("store.py", 2), ("lsm.py", 7)],
                ),
            ],
            wall_clock_seconds=1.0,
        )
        coverage = result_to_json(outcome)["coverage"]
        assert coverage["lines"] == 3
        assert coverage["by_file"] == {"lsm.py": 1, "store.py": 2}

    def test_checker_crash_is_contained_as_a_failure(self):
        bogus = ShardSpec.make(0, KIND_FUZZ, 0, decoder="no-such-decoder")
        result, _duration = execute_shard(bogus)
        assert result.failures and "checker crashed" in result.failures[0].detail


class TestSeedReplay:
    def test_fault_matrix_shard_reruns_identically(self):
        from repro.campaign.fault_matrix import fault_matrix_shards, run_shard

        shard = fault_matrix_shards(smoke_spec(), 0)[0]
        first, second = run_shard(shard), run_shard(shard)
        assert first == second
        assert first.detected

    def test_failing_seed_replays_standalone(self):
        """A failure's recorded seed reproduces it with sequences=1."""
        from repro.campaign.fault_matrix import fault_matrix_shards, run_shard
        from repro.core import StoreHarness, run_conformance, store_alphabet
        from repro.shardstore import FaultSet

        shard = next(
            s
            for s in fault_matrix_shards(smoke_spec(), 0)
            if s.param("fault") == Fault.RECLAIM_OFF_BY_ONE.name
        )
        result = run_shard(shard)
        assert result.detected
        failing_seed = result.failures[0].seed
        replay = run_conformance(
            lambda s: StoreHarness(
                FaultSet.only(Fault.RECLAIM_OFF_BY_ONE), s
            ),
            store_alphabet(),
            sequences=1,
            ops_per_sequence=80,
            base_seed=failing_seed,
        )
        assert not replay.passed
        assert str(replay.failure) == result.failures[0].detail

    def test_minimized_reproducer_attached_to_failures(self):
        from repro.campaign.fault_matrix import fault_matrix_shards, run_shard

        shard = next(
            s
            for s in fault_matrix_shards(smoke_spec(), 0)
            if s.param("fault") == Fault.RECLAIM_OFF_BY_ONE.name
        )
        result = run_shard(shard)
        minimized = result.failures[0].minimized
        assert minimized, "PBT detections must carry a minimized reproducer"
        assert len(minimized) <= 80


def _tiny_spec(**overrides):
    defaults = dict(
        profile="tiny",
        workers=1,
        base_seed=0,
        conformance_shards_per_alphabet=1,
        sequences_per_shard=2,
        ops_per_sequence=20,
        crash_shards=1,
        crash_prefix_ops=8,
        crash_max_states=12,
        fuzz_iterations=50,
        fuzz_exhaustive_len=0,
        fault_matrix=False,
        coverage=False,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestRunCampaign:
    def test_inline_campaign_passes_and_is_deterministic(self):
        first = result_to_json(run_campaign(_tiny_spec()))
        second = result_to_json(run_campaign(_tiny_spec()))
        assert first["passed"]
        del first["timing"], second["timing"]
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_multiprocess_matches_inline(self):
        inline = result_to_json(run_campaign(_tiny_spec(workers=1)))
        pooled = result_to_json(run_campaign(_tiny_spec(workers=2)))
        del inline["timing"], pooled["timing"]
        inline["campaign"].pop("workers")
        pooled["campaign"].pop("workers")
        assert inline == pooled

    def test_budget_zero_skips_every_shard(self):
        outcome = run_campaign(_tiny_spec(budget_seconds=0.0))
        artifact = result_to_json(outcome)
        assert artifact["totals"]["shards_run"] == 0
        assert artifact["totals"]["shards_skipped"] == len(outcome.results)
        assert artifact["skipped_shards"] == [
            r.shard_id for r in outcome.results
        ]

    def test_artifact_schema_headline_fields(self):
        artifact = result_to_json(run_campaign(_tiny_spec()))
        assert artifact["schema_version"] == 7
        for key in (
            "campaign",
            "totals",
            "phases",
            "failures",
            "fault_matrix",
            "coverage",
            "passed",
            "timing",
        ):
            assert key in artifact
        assert set(artifact["phases"]) == {
            KIND_CONFORMANCE,
            KIND_CRASH,
            KIND_FUZZ,
            KIND_FAULT_MATRIX,
            KIND_INJECTION,
            KIND_CLUSTER,
            KIND_ANTIENTROPY,
        }

class TestBrownoutSuite:
    """The ``brownout`` suite: gray-failure storms vs the admission plane."""

    def test_brownout_shards_are_storm_injection_only(self):
        from repro.campaign.injection import STORM_OPS

        shards = build_shards(smoke_spec(suite="brownout"))
        assert shards, "brownout suite must compile shards"
        assert {s.kind for s in shards} == {KIND_INJECTION}
        assert {s.param("profile") for s in shards} == {
            "brownout",
            "overload",
        }
        for shard in shards:
            assert shard.param("harness") == "node"
            assert shard.param("ops") >= STORM_OPS
            assert shard.param("shedding_enabled") is True

    def test_no_shedding_flag_reaches_every_shard(self):
        shards = build_shards(
            smoke_spec(suite="brownout", shedding_enabled=False)
        )
        assert all(
            s.param("shedding_enabled") is False for s in shards
        )

    def test_unknown_suite_is_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign suite"):
            smoke_spec(suite="thunderstorm")

    def test_brownout_smoke_passes_and_reports_storm_counters(self):
        outcome = run_campaign(smoke_spec(suite="brownout", base_seed=0))
        artifact = result_to_json(outcome)
        assert artifact["passed"]
        brownout = artifact["brownout"]
        totals = brownout["totals"]
        # The storms must actually stress the admission plane...
        assert totals["storm_events"] > 0
        assert totals["shed_overload"] + totals["shed_deadline"] > 0
        # ...and shedding must keep every request inside its deadline.
        assert totals["deadline_violations"] == 0
        assert all(shard["shedding_enabled"] for shard in brownout["shards"])

    def test_no_shedding_negative_control_fails(self):
        """With shedding off the same storms MUST blow deadlines."""
        outcome = run_campaign(
            smoke_spec(suite="brownout", base_seed=0, shedding_enabled=False)
        )
        artifact = result_to_json(outcome)
        assert not artifact["passed"]
        totals = artifact["brownout"]["totals"]
        assert totals["deadline_violations"] > 0
        assert totals["shed_overload"] + totals["shed_deadline"] == 0

    def test_brownout_artifact_identical_across_worker_counts(self):
        inline = result_to_json(
            run_campaign(smoke_spec(suite="brownout", workers=1))
        )
        pooled = result_to_json(
            run_campaign(smoke_spec(suite="brownout", workers=2))
        )
        del inline["timing"], pooled["timing"]
        inline["campaign"].pop("workers")
        pooled["campaign"].pop("workers")
        assert json.dumps(inline, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_full_suite_artifact_carries_brownout_section(self):
        artifact = result_to_json(run_campaign(_tiny_spec()))
        # The tiny spec runs point-fault injection without admission, so
        # no brownout section is emitted -- it only appears when
        # admission-enabled storm shards ran.
        assert "brownout" not in artifact
