"""End-to-end integration tests: the whole stack under sustained load.

These condense the development-time stress campaigns into deterministic
regression tests: long mixed workloads with compaction, reclamation, and
reboots against a dict model, plus crash-heavy runs checking the section 5
persistence property at every dirty reboot.
"""

import random

import pytest

pytestmark = pytest.mark.slow

from repro.shardstore import (
    DiskGeometry,
    KeyNotFoundError,
    NotFoundError,
    RebootType,
    StoreConfig,
    StoreSystem,
)


def _config(seed: int) -> StoreConfig:
    return StoreConfig(
        geometry=DiskGeometry(num_extents=12, extent_size=4096, page_size=128),
        seed=seed,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_long_mixed_workload_matches_model(seed):
    rng = random.Random(seed * 101 + 7)
    system = StoreSystem(_config(seed))
    model = {}
    store = system.store
    deps = []
    for step in range(600):
        roll = rng.random()
        key = b"k%d" % rng.randrange(12)
        if roll < 0.45:
            value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(500)))
            deps.append(store.put(key, value))
            model[key] = value
        elif roll < 0.6:
            try:
                deps.append(store.delete(key))
            except KeyNotFoundError:
                assert key not in model
            else:
                model.pop(key, None)
        elif roll < 0.75:
            try:
                assert store.get(key) == model[key]
            except NotFoundError:
                assert key not in model
        elif roll < 0.8:
            store.flush_index()
        elif roll < 0.85:
            store.compact()
        elif roll < 0.92:
            targets = store.reclaimable_extents()
            if targets:
                store.reclaim(rng.choice(targets))
        elif roll < 0.96:
            store = system.clean_reboot()
        else:
            store.flush_superblock()
    for key, value in model.items():
        assert store.get(key) == value
    store = system.clean_reboot()
    for key, value in model.items():
        assert store.get(key) == value
    assert set(store.keys()) == set(model)
    assert all(dep.is_persistent() for dep in deps)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_crash_heavy_workload_satisfies_persistence(seed):
    rng = random.Random(seed * 31 + 1)
    system = StoreSystem(_config(100 + seed))
    store = system.store
    oplog = []
    for step in range(300):
        roll = rng.random()
        key = b"c%d" % rng.randrange(8)
        if roll < 0.5:
            value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(300)))
            oplog.append((key, value, store.put(key, value)))
        elif roll < 0.62:
            try:
                oplog.append((key, None, store.delete(key)))
            except KeyNotFoundError:
                pass  # absent in the live index; nothing to log
        elif roll < 0.7:
            store.flush_index()
        elif roll < 0.76:
            targets = store.reclaimable_extents()
            if targets:
                store.reclaim(rng.choice(targets))
        elif roll < 0.82:
            store.pump(rng.randrange(1, 20))
        elif roll < 0.9:
            store = system.dirty_reboot(
                RebootType(
                    flush_index=rng.random() < 0.4,
                    flush_superblock=rng.random() < 0.4,
                    pump=rng.choice([0, 3, 10, None]),
                )
            )
            _assert_persistence(store, oplog, seed, step)
        else:
            store.flush_superblock()


def _assert_persistence(store, oplog, seed, step):
    """The section 5 persistence property over the raw oplog."""
    last_persistent = {}
    for index, (key, value, dep) in enumerate(oplog):
        if dep.is_persistent():
            last_persistent[key] = index
    for key, anchor in last_persistent.items():
        allowed = set()
        absent_ok = False
        for index in range(anchor, len(oplog)):
            entry_key, value, _ = oplog[index]
            if entry_key != key:
                continue
            if value is None:
                absent_ok = True
            else:
                allowed.add(value)
        try:
            observed = store.get(key)
            assert observed in allowed, (seed, step, key, "wrong value")
        except NotFoundError:
            assert absent_ok, (seed, step, key, "lost persistent key")


def test_fragmentation_pressure_is_survivable():
    """Heavy overwrite churn must never wedge the store (GC headroom)."""
    system = StoreSystem(_config(9))
    store = system.store
    for round_ in range(30):
        for i in range(4):
            store.put(b"hot%d" % i, bytes([round_ % 256]) * 600)
    for i in range(4):
        assert store.get(b"hot%d" % i) == bytes([29]) * 600
    store = system.clean_reboot()
    for i in range(4):
        assert store.get(b"hot%d" % i) == bytes([29]) * 600


def test_many_generations_of_reboots():
    system = StoreSystem(_config(77))
    values = {}
    for generation in range(12):
        store = system.store
        key = b"gen%d" % generation
        values[key] = bytes([generation]) * (50 + generation * 17)
        store.put(key, values[key])
        if generation % 3 == 2:
            store = system.dirty_reboot(
                RebootType(flush_index=True, flush_superblock=True, pump=None)
            )
        else:
            store = system.clean_reboot()
        for known_key, value in values.items():
            try:
                assert store.get(known_key) == value
            except NotFoundError:
                # Only the just-written key may be lost, and only by the
                # dirty reboot (its dependency was not persistent).
                assert known_key == key
                del values[key]
                break
