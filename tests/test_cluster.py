"""Tests for the multi-node cluster layer.

Covers the consistent-hash ring, quorum read/write semantics and the
typed degradation contract, hinted handoff (queue / replay / overflow /
revocation), read-repair, rebalancing on membership change, node-level
fault storms, per-node journal identity, the merged multi-journal trace
checker, the ``cluster`` campaign suite (including the ``--no-read-repair``
negative control), the cluster metrics demo, and the seeded minority-
crash durability property.
"""

import random

import pytest

from repro.cluster import ClusterConfig, ClusterRouter, HashRing
from repro.errors import (
    DegradedReadError,
    DegradedWriteError,
    InvalidRequestError,
    KeyNotFoundError,
)
from repro.evidence import check_cluster_files, check_cluster_journals
from repro.shardstore.injection import (
    CLUSTER_PROFILES,
    FAULT_NODE_CRASH,
    FAULT_NODE_RESTART,
    FAULT_PARTITION,
    FAULT_PARTITION_HEAL,
    FaultPlan,
)
from repro.shardstore.observability import Journal, seal_on_signal
from repro.shardstore.resilience import AdmissionConfig


def small_router(**overrides) -> ClusterRouter:
    defaults = dict(num_nodes=5, seed=0)
    defaults.update(overrides)
    return ClusterRouter(ClusterConfig(**defaults))


class TestHashRing:
    def test_placement_is_deterministic(self):
        a = HashRing((0, 1, 2, 3, 4))
        b = HashRing((0, 1, 2, 3, 4))
        for i in range(32):
            key = b"k-%d" % i
            assert a.preference_list(key, 3) == b.preference_list(key, 3)

    def test_preference_list_is_distinct_nodes(self):
        ring = HashRing((0, 1, 2, 3, 4))
        for i in range(64):
            prefs = ring.preference_list(b"key-%d" % i, 3)
            assert len(prefs) == 3
            assert len(set(prefs)) == 3

    def test_membership_change_moves_only_affected_keys(self):
        ring = HashRing((0, 1, 2))
        before = {
            b"k-%d" % i: ring.preference_list(b"k-%d" % i, 2)
            for i in range(64)
        }
        ring.add_node(3)
        moved = sum(
            ring.preference_list(key, 2) != prefs
            for key, prefs in before.items()
        )
        # Consistent hashing: some keys move to the new node, most stay.
        assert 0 < moved < len(before)
        ring.remove_node(3)
        after = {
            key: ring.preference_list(key, 2) for key in before
        }
        assert after == before

    def test_single_join_moves_at_most_expected_key_fraction(self):
        """Consistent-hashing contract: a join steals about ``1/(n+1)``
        of the primary ownership, and *only* toward the new node."""
        keys = [b"pk-%03d" % i for i in range(512)]
        for n in (4, 5, 8):
            ring = HashRing(tuple(range(n)))
            before = {key: ring.preference_list(key, 1)[0] for key in keys}
            ring.add_node(n)
            after = {key: ring.preference_list(key, 1)[0] for key in keys}
            moved = [key for key in keys if before[key] != after[key]]
            # 2x the ideal share is generous slack for 16-vnode variance.
            assert len(moved) / len(keys) <= 2.0 / (n + 1)
            assert all(after[key] == n for key in moved), (
                "a join may only move keys onto the joining node"
            )

    def test_single_leave_moves_only_the_leavers_keys(self):
        keys = [b"pk-%03d" % i for i in range(512)]
        for n in (5, 6, 9):
            ring = HashRing(tuple(range(n)))
            before = {key: ring.preference_list(key, 1)[0] for key in keys}
            ring.remove_node(0)
            after = {key: ring.preference_list(key, 1)[0] for key in keys}
            moved = [key for key in keys if before[key] != after[key]]
            assert len(moved) / len(keys) <= 2.0 / n
            assert all(before[key] == 0 for key in moved), (
                "a leave may only move keys the leaver owned"
            )

    def test_vnode_placement_stable_across_restarts(self):
        """Ring points derive from SHA-256 over stable identifiers -- no
        RNG, no wall clock -- so a rebuilt ring (any membership order)
        places every key identically."""
        keys = [b"pk-%03d" % i for i in range(256)]
        a = HashRing((0, 1, 2, 3, 4))
        b = HashRing(())
        for node_id in (4, 2, 0, 3, 1):  # same members, different order
            b.add_node(node_id)
        for key in keys:
            assert a.preference_list(key, 3) == b.preference_list(key, 3)
        assert a._points == b._points
        assert a._owners == b._owners


class TestQuorumSemantics:
    def test_put_get_delete_roundtrip(self):
        router = small_router()
        router.put(b"alpha", b"one")
        assert router.get(b"alpha") == b"one"
        assert router.contains(b"alpha")
        router.put(b"alpha", b"two")
        assert router.get(b"alpha") == b"two"
        router.delete(b"alpha")
        assert not router.contains(b"alpha")
        with pytest.raises(KeyNotFoundError):
            router.get(b"alpha")

    def test_quorum_config_validated(self):
        with pytest.raises(InvalidRequestError):
            ClusterConfig(replication=3, write_quorum=1, read_quorum=1)
        with pytest.raises(InvalidRequestError):
            ClusterConfig(num_nodes=2, replication=3)

    def test_read_routes_around_a_minority(self):
        router = small_router()
        router.put(b"k", b"v")
        victim = router._placement(b"k")[0]
        router.crash_node(victim)
        assert router.get(b"k") == b"v"

    def test_partial_ack_write_raises_typed_degradation(self):
        router = small_router()
        prefs = router._placement(b"k")
        for node_id in prefs[:2]:
            router.crash_node(node_id)
        with pytest.raises(DegradedWriteError) as err:
            router.put(b"k", b"v")
        assert err.value.acks == 1
        assert err.value.required == 2

    def test_zero_ack_write_leaves_cluster_unchanged(self):
        """The typed contract: acks == 0 means provably not applied."""
        router = small_router()
        router.put(b"k", b"before")
        prefs = router._placement(b"k")
        for node_id in prefs:
            router.partition_node(node_id)
        with pytest.raises(DegradedWriteError) as err:
            router.put(b"k", b"after")
        assert err.value.acks == 0
        # The failed write's hints were revoked, so healing must NOT
        # resurrect it: every replica still holds the old value.
        assert router.stats["hints_revoked"] >= len(prefs)
        for node_id in prefs:
            router.heal_partition(node_id)
        assert router.get(b"k") == b"before"
        states = router.replica_states(b"k")
        values = {rec[2] for rec in states.values() if rec is not None}
        assert values == {b"before"}

    def test_degraded_read_is_typed(self):
        router = small_router()
        router.put(b"k", b"v")
        for node_id in router._placement(b"k"):
            router.partition_node(node_id)
        with pytest.raises(DegradedReadError) as err:
            router.get(b"k")
        assert err.value.replies == 0
        assert err.value.required == 2


class TestHintedHandoff:
    def test_hints_queue_and_replay_on_heal(self):
        router = small_router()
        router.put(b"k", b"v1")
        victim = router._placement(b"k")[0]
        router.partition_node(victim)
        router.put(b"k", b"v2")
        assert router.hints_pending(victim) == 1
        router.heal_partition(victim)
        assert router.hints_pending(victim) == 0
        assert router.stats["hints_replayed"] == 1
        record = router.replica_states(b"k")[victim]
        assert record is not None and record[2] == b"v2"

    def test_hint_buffer_overflow_drops_oldest(self):
        router = small_router(hint_limit=2)
        victim = 0
        router.partition_node(victim)
        queued = 0
        for i in range(40):
            key = b"hk-%02d" % i
            if victim in router._placement(key):
                try:
                    router.put(key, b"v")
                except DegradedWriteError:
                    pass
                queued += 1
            if queued >= 5:
                break
        assert queued >= 3
        assert router.hints_pending(victim) <= 2
        assert router.stats["hints_dropped"] >= 1

    def test_crash_restart_replays_hints(self):
        router = small_router()
        router.put(b"k", b"v1")
        victim = router._placement(b"k")[1]
        router.crash_node(victim)
        router.put(b"k", b"v2")
        assert router.hints_pending(victim) == 1
        router.restart_node(victim)
        record = router.replica_states(b"k")[victim]
        assert record is not None and record[2] == b"v2"


class TestReadRepair:
    def _diverge(self, read_repair: bool):
        """Build a cluster where one replica is stale with no hint left."""
        router = small_router(read_repair=read_repair, hint_limit=0)
        router.put(b"k", b"old")
        victim = router._placement(b"k")[0]
        router.partition_node(victim)
        router.put(b"k", b"new")  # hint_limit=0: the hint is dropped
        router.heal_partition(victim)
        stale = router.replica_states(b"k")[victim]
        assert stale is not None and stale[2] == b"old"
        return router, victim

    def test_read_repair_converges_stale_replica(self):
        router, victim = self._diverge(read_repair=True)
        assert router.get(b"k") == b"new"
        repaired = router.replica_states(b"k")[victim]
        assert repaired is not None and repaired[2] == b"new"
        assert router.stats["read_repairs"] >= 1

    def test_without_read_repair_divergence_persists(self):
        router, victim = self._diverge(read_repair=False)
        assert router.get(b"k") == b"new"  # quorum still answers newest
        stale = router.replica_states(b"k")[victim]
        assert stale is not None and stale[2] == b"old"
        assert router.stats["read_repairs"] == 0


class TestMembership:
    def test_join_rebalances_keys_onto_new_node(self):
        router = small_router(num_nodes=3, replication=3)
        for i in range(24):
            router.put(b"mk-%02d" % i, b"v-%d" % i)
        new_id = router.add_node()
        assert router.stats["rebalances"] >= 1
        moved = sum(
            1
            for i in range(24)
            if new_id in router._placement(b"mk-%02d" % i)
        )
        assert moved > 0
        for i in range(24):
            assert router.get(b"mk-%02d" % i) == b"v-%d" % i

    def test_leave_keeps_every_key_readable(self):
        router = small_router()
        for i in range(24):
            router.put(b"lk-%02d" % i, b"v-%d" % i)
        router.remove_node(router.members[0])
        for i in range(24):
            assert router.get(b"lk-%02d" % i) == b"v-%d" % i

    def test_shed_replica_skips_write_then_converges_on_settle(self):
        """A gray (shedding) node misses the write but no state is lost."""
        router = small_router(
            admission=AdmissionConfig(deadline_units=64, max_backlog_units=128)
        )
        router.put(b"k", b"v1")
        victim = router._placement(b"k")[0]
        cn = router.nodes[victim]
        # Freeze the victim's admission clock and saturate its queues (the
        # shape tests/test_admission.py uses): the next write sheds.
        router.slow_node(victim, 10_000)
        for queue in cn.node._admissions:
            queue.busy_until = cn.node._clock + 10_000
        router.put(b"k", b"v2")  # victim sheds -> hinted; quorum still met
        assert router.stats["replica_sheds"] >= 1
        assert router.hints_pending(victim) == 1
        assert router.get(b"k") == b"v2"
        # Drain the storm, then check the typed shed left the gray
        # replica unchanged (no partial write slipped through).
        cn.node.advance_clock(40_000)
        record = router.replica_states(b"k")[victim]
        assert record is not None and record[2] == b"v1"
        # Hint replay converges the replica once the cluster settles.
        router.settle()
        record = router.replica_states(b"k")[victim]
        assert record is not None and record[2] == b"v2"


class TestClusterFaultPlans:
    @pytest.mark.parametrize("profile", sorted(CLUSTER_PROFILES))
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_storm_invariants(self, profile, seed):
        plan = FaultPlan.generate_cluster(
            seed, ops=80, num_nodes=5, profile=profile
        )
        down = set()
        outages = {
            FAULT_NODE_CRASH: FAULT_NODE_RESTART,
            FAULT_PARTITION: FAULT_PARTITION_HEAL,
        }
        opened = {}
        for fault in plan.faults:
            if fault.kind in outages:
                assert fault.disk not in down, "overlapping outage windows"
                down.add(fault.disk)
                opened[fault.disk] = outages[fault.kind]
                # Never more than a strict minority down at once.
                assert len(down) <= (5 - 1) // 2
            elif fault.kind in outages.values():
                assert opened.get(fault.disk) == fault.kind
                down.discard(fault.disk)
                opened.pop(fault.disk)
        assert not down, "every outage window must close"

    def test_plan_is_deterministic(self):
        a = FaultPlan.generate_cluster(3, ops=60, num_nodes=5)
        b = FaultPlan.generate_cluster(3, ops=60, num_nodes=5)
        assert a.faults == b.faults

    def test_rejects_tiny_clusters(self):
        with pytest.raises(ValueError):
            FaultPlan.generate_cluster(0, ops=60, num_nodes=2)


def journal_cluster(**config_overrides):
    """A router whose journals collect in memory, plus the journal list."""
    journals = []

    def factory(identity, meta):
        journal = Journal(meta=dict(meta, seed=0), node=identity)
        journals.append(journal)
        return journal

    defaults = dict(num_nodes=5, seed=0)
    defaults.update(config_overrides)
    router = ClusterRouter(
        ClusterConfig(**defaults), journal_factory=factory
    )
    return router, journals


class TestJournalIdentity:
    def test_every_record_carries_its_node_identity(self):
        router, journals = journal_cluster()
        router.put(b"k", b"v")
        router.get(b"k")
        router.close()
        identities = set()
        for journal in journals:
            genesis = journal.entries[0]
            identity = genesis["meta"]["node"]
            identities.add(identity)
            for entry in journal.entries[1:]:
                if entry.get("kind") == "seal":
                    continue
                assert entry.get("node") == identity
        assert identities == {"router"} | {
            f"node{nid}" for nid in router.nodes
        }

    def test_member_records_carry_cluster_op_id(self):
        router, journals = journal_cluster()
        router.put(b"k", b"v")
        router.close()
        member = next(
            j for j in journals if j.entries[0]["meta"]["node"] != "router"
        )
        puts = [
            e for e in member.entries if e.get("op") and e.get("kind") == "put"
        ]
        assert puts and all(entry.get("cop") for entry in puts)


class TestMergedChecker:
    def run_storm(self, read_repair=True, seed=1):
        router, journals = journal_cluster(read_repair=read_repair)
        plan = FaultPlan.generate_cluster(
            seed, ops=60, num_nodes=5, profile="cluster-mixed"
        )
        by_op = {}
        for fault in plan.faults:
            by_op.setdefault(fault.op_index, []).append(fault)
        rng = random.Random(seed)
        for index in range(60):
            for fault in by_op.get(index, []):
                router.apply_fault(fault)
            key = b"sk-%02d" % rng.randrange(12)
            try:
                if rng.random() < 0.6:
                    router.put(key, b"sv-%d" % index)
                elif rng.random() < 0.8:
                    router.get(key)
                else:
                    router.delete(key)
            except (DegradedWriteError, DegradedReadError, KeyNotFoundError):
                pass
        router.settle()
        router.close()
        return journals

    def test_clean_storm_run_passes(self):
        journals = self.run_storm()
        report = check_cluster_journals(
            [j.entries for j in journals], require_seal=True
        )
        assert report.passed, report.violations
        assert report.checked > 0
        assert report.corroborated > 0

    def test_tampered_journal_fails(self):
        journals = self.run_storm()
        router_journal = next(
            j for j in journals if j.entries[0]["meta"]["node"] == "router"
        )
        victim = next(
            e
            for e in router_journal.entries
            if e.get("kind") == "put" and e.get("out") == "ok"
        )
        victim["value"] = "0" * len(victim["value"])
        report = check_cluster_journals([j.entries for j in journals])
        assert not report.passed

    def test_requires_exactly_one_router_journal(self):
        journals = self.run_storm()
        members_only = [
            j.entries
            for j in journals
            if j.entries[0]["meta"]["node"] != "router"
        ]
        report = check_cluster_journals(members_only)
        assert not report.passed

    def test_check_trace_cli_merges_files(self, tmp_path):
        from repro.cli import main

        journals = []

        def factory(identity, meta):
            journal = Journal(
                str(tmp_path / f"{identity}.jsonl"),
                meta=dict(meta, seed=0),
                node=identity,
            )
            journals.append(journal)
            return journal

        router = ClusterRouter(
            ClusterConfig(num_nodes=3, seed=0), journal_factory=factory
        )
        router.put(b"k", b"v")
        assert router.get(b"k") == b"v"
        router.close()
        paths = [str(tmp_path / f) for f in sorted(p.name for p in tmp_path.iterdir())]
        report = check_cluster_files(paths, require_seal=True)
        assert report.passed
        assert main(["check-trace", "--require-seal", *paths]) == 0


class TestClusterCampaign:
    def make_spec(self, read_repair=True, seed=0):
        from repro.campaign.spec import ShardSpec

        return ShardSpec.make(
            0,
            "cluster",
            seed,
            profile="cluster-mixed",
            sequences=2,
            ops=80,
            nodes=5,
            read_repair=read_repair,
        )

    def test_shard_passes_and_ships_evidence(self):
        from repro.campaign.cluster import run_shard

        result = run_shard(self.make_spec())
        assert not result.failures
        block = result.cluster
        assert block["consistent"]
        assert block["evidence"]["check_passed"]
        assert block["evidence"]["corroborated"] > 0
        assert block["fired"] == block["planned"] > 0

    def test_no_read_repair_negative_control_fails(self):
        """Convergence is read-repair's job; disabling it must fail."""
        from repro.campaign.cluster import run_shard

        result = run_shard(self.make_spec(read_repair=False))
        assert result.failures
        assert "converged" in result.failures[0].detail

    def test_shard_result_is_deterministic(self):
        from repro.campaign.cluster import run_shard

        a = run_shard(self.make_spec(seed=5))
        b = run_shard(self.make_spec(seed=5))
        assert a.cluster == b.cluster

    def test_cluster_suite_smoke_end_to_end(self):
        from repro.campaign import run_campaign
        from repro.campaign.spec import smoke_spec

        spec = smoke_spec(workers=1, suite="cluster")
        result = run_campaign(spec)
        artifact = result.to_json()
        assert artifact["passed"], artifact.get("failures")
        assert artifact["cluster"]["totals"]["fired"] > 0
        assert artifact["cluster"]["evidence_passed"]


class TestMinorityCrashProperty:
    """Satellite property: random minority crash/restart storms mid-stream
    never lose a quorum-acknowledged write, and typed quorum failures
    never silently mutate certainty (shape follows tests/test_admission)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_no_acked_write_lost(self, seed):
        rng = random.Random(seed)
        router = small_router(seed=seed)
        minority = (5 - 1) // 2
        acked = {}
        for index in range(120):
            if rng.random() < 0.2:
                down = [
                    nid for nid, cn in router.nodes.items() if not cn.up
                ]
                if down and rng.random() < 0.5:
                    router.restart_node(rng.choice(down))
                elif len(down) < minority:
                    up = [nid for nid, cn in router.nodes.items() if cn.up]
                    router.crash_node(rng.choice(up))
            key = b"pk-%02d" % rng.randrange(12)
            value = b"pv-%d-%d" % (seed, index)
            try:
                if rng.random() < 0.8:
                    router.put(key, value)
                    acked[key] = value
                else:
                    router.delete(key)
                    acked[key] = None
            except DegradedWriteError as exc:
                # Partial acks leave the key uncertain; zero acks leave
                # the previous certainty intact.
                if exc.acks:
                    acked.pop(key, None)
            except (DegradedReadError, KeyNotFoundError):
                pass
        router.settle()
        for key, value in sorted(acked.items()):
            if value is None:
                assert not router.contains(key), key
            else:
                assert router.get(key) == value, key


class TestClusterMetricsDemo:
    def make_demo(self, **kwargs):
        from repro.bench.serve import ClusterMetricsDemo

        defaults = dict(
            cluster_nodes=5, warmup_ops=80, ops_per_scrape=15, storm_every=2
        )
        defaults.update(kwargs)
        return ClusterMetricsDemo(**defaults)

    def test_metrics_page_has_per_node_labeled_series(self):
        demo = self.make_demo()
        page = demo.metrics_page()
        for metric in (
            'repro_cluster_node_shed_overload_total{node="node0"}',
            'repro_cluster_node_breaker_state{node="node0"}',
            'repro_cluster_node_hints_pending{node="node0"}',
            "repro_cluster_puts_total",
        ):
            assert metric in page, metric

    def test_storm_flips_healthz_roll_up(self):
        demo = self.make_demo()
        demo.metrics_page()
        demo.metrics_page()  # second scrape: partition storm fires
        health = demo.healthz()
        assert health["status"] == "degraded"
        assert health["cluster"]["degraded"]
        statuses = {n["status"] for n in health["nodes"].values()}
        assert "partitioned" in statuses
        demo.metrics_page()  # odd scrape: the partition heals
        assert demo.healthz()["status"] == "ok"

    def test_live_evidence_stays_green(self):
        demo = self.make_demo()
        for _ in range(4):
            demo.metrics_page()
        evidence = demo.healthz()["evidence"]
        assert evidence["passed"] and evidence["violations"] == 0
        assert evidence["journals"] == 6

    def test_make_server_dispatches_on_cluster_nodes(self):
        from repro.bench.serve import ClusterMetricsDemo, make_server

        server, demo = make_server(
            cluster_nodes=3, warmup_ops=20, ops_per_scrape=5
        )
        try:
            assert isinstance(demo, ClusterMetricsDemo)
        finally:
            server.server_close()


class TestSealOnSignal:
    def test_seals_on_clean_exit_and_exception(self):
        a, b = Journal(meta={"t": 1}), Journal(meta={"t": 2})
        with seal_on_signal(a, None):
            a.record_op("put", key=b"k", out="ok")
        assert a.sealed
        with pytest.raises(RuntimeError):
            with seal_on_signal(b):
                raise RuntimeError("boom")
        assert b.sealed

    def test_sigterm_becomes_keyboard_interrupt(self):
        import os
        import signal

        journal = Journal(meta={"t": 3})
        with pytest.raises(KeyboardInterrupt):
            with seal_on_signal(journal):
                os.kill(os.getpid(), signal.SIGTERM)
        assert journal.sealed
        # The previous handler is restored afterwards.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL


class TestInvariantWitnessNode:
    def test_merged_mining_attributes_witness_to_node(self):
        from repro.evidence.invariants import mine_journals

        clean = Journal(meta={}, node="node0")
        clean.record_op("put", key=b"k", out="ok")
        clean.close()
        broken = Journal(meta={}, node="node1")
        broken.record_op("put", key=b"k", out="ok")
        broken.record_op("delete", key=b"k", out="ok")
        broken.record_op("get", key=b"k", out="ok")  # get-after-delete
        broken.close()
        results = mine_journals([clean.entries, broken.entries])
        falsified = [r for r in results if r.status == "falsified"]
        assert falsified
        assert any(r.witness_node == "node1" for r in falsified)
