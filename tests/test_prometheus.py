"""Tests for Prometheus exposition and the ``repro metrics-serve`` node.

The scrape tests start the real stdlib HTTP server on an ephemeral port
and validate the page with a small text-format parser: every sample must
belong to a declared TYPE family, histogram buckets must be cumulative,
and the ``le="+Inf"`` bucket must agree with ``_count``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench import MetricsDemoNode, make_server
from repro.shardstore import TimingRecorder, render_prometheus
from repro.shardstore.observability import Metrics


def _parse(page):
    """-> (types, samples) where samples is [(name, labels, value)]."""
    types = {}
    samples = []
    assert page.endswith("\n")
    for line in page.rstrip("\n").split("\n"):
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
        elif line.startswith("#"):
            continue
        else:
            name_part, value = line.rsplit(" ", 1)
            if "{" in name_part:
                name, labels = name_part.split("{", 1)
                labels = labels.rstrip("}")
            else:
                name, labels = name_part, ""
            samples.append((name, labels, float(value)))
    return types, samples


def _family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class TestRenderPrometheus:
    def test_counters_gauges_histograms(self):
        metrics = Metrics()
        metrics.count("disk.writes", 3)
        metrics.gauge("scheduler.queue_depth", 2)
        metrics.gauge("scheduler.queue_depth", 1)
        for value in (1, 2, 3, 10):
            metrics.observe("disk.write_bytes", value)
        page = render_prometheus(metrics.snapshot())
        types, samples = _parse(page)
        by_name = {(name, labels): value for name, labels, value in samples}

        assert types["repro_disk_writes_total"] == "counter"
        assert by_name[("repro_disk_writes_total", "")] == 3
        assert types["repro_scheduler_queue_depth"] == "gauge"
        assert by_name[("repro_scheduler_queue_depth", "")] == 1
        assert by_name[("repro_scheduler_queue_depth_peak", "")] == 2
        assert types["repro_disk_write_bytes"] == "histogram"
        # Cumulative buckets over observations 1, 2, 3, 10.
        assert by_name[("repro_disk_write_bytes_bucket", 'le="1"')] == 1
        assert by_name[("repro_disk_write_bytes_bucket", 'le="2"')] == 2
        assert by_name[("repro_disk_write_bytes_bucket", 'le="4"')] == 3
        assert by_name[("repro_disk_write_bytes_bucket", 'le="16"')] == 4
        assert by_name[("repro_disk_write_bytes_bucket", 'le="+Inf"')] == 4
        assert by_name[("repro_disk_write_bytes_sum", "")] == 16
        assert by_name[("repro_disk_write_bytes_count", "")] == 4

    def test_every_sample_has_a_declared_type(self):
        metrics = Metrics()
        metrics.count("a", 1)
        metrics.gauge("b", 1)
        metrics.observe("c", 1)
        recorder = TimingRecorder()
        recorder.observe_latency("disk.write", 2048)
        page = render_prometheus(
            metrics.snapshot(),
            latency=recorder.latency_snapshot(),
            extra_counters={"node.puts": 7},
        )
        types, samples = _parse(page)
        for name, _, _ in samples:
            assert _family(name) in types, f"{name} has no TYPE declaration"

    def test_latency_rendered_in_seconds_with_section_label(self):
        recorder = TimingRecorder()
        recorder.observe_latency("disk.write", 2048)  # exactly bound 2048ns
        page = render_prometheus({}, latency=recorder.latency_snapshot())
        types, samples = _parse(page)
        assert types["repro_latency_seconds"] == "histogram"
        buckets = [
            (labels, value)
            for name, labels, value in samples
            if name == "repro_latency_seconds_bucket"
            and 'section="disk.write"' in labels
        ]
        # The 2048ns bound appears as 2.048e-06 seconds.
        assert any('le="2.048e-06"' in labels for labels, _ in buckets)
        sums = {
            labels: value
            for name, labels, value in samples
            if name == "repro_latency_seconds_sum"
        }
        assert sums['section="disk.write"'] == pytest.approx(2048e-9)

    def test_name_sanitization_and_extra_counters(self):
        page = render_prometheus({}, extra_counters={"node.puts": 7})
        assert "repro_node_puts_total 7" in page

    def test_extra_gauges_render_as_flat_gauges(self):
        page = render_prometheus(
            {},
            extra_gauges={
                "node.disk0.breaker_state": 1,
                "node.disk0.error_rate": 0.25,
            },
        )
        types, samples = _parse(page)
        by_name = {(name, labels): value for name, labels, value in samples}
        assert types["repro_node_disk0_breaker_state"] == "gauge"
        assert by_name[("repro_node_disk0_breaker_state", "")] == 1
        assert by_name[("repro_node_disk0_error_rate", "")] == 0.25
        # Flat extras have no separate peak history: last == peak.
        assert by_name[("repro_node_disk0_error_rate_peak", "")] == 0.25

    def test_extra_gauges_merge_with_registry_gauges(self):
        metrics = Metrics()
        metrics.gauge("scheduler.queue_depth", 4)
        page = render_prometheus(
            metrics.snapshot(), extra_gauges={"node.disk1.in_service": 1.0}
        )
        assert "repro_scheduler_queue_depth 4" in page
        assert "repro_node_disk1_in_service 1" in page

    def test_health_snapshot_round_trips_through_exposition(self):
        """StorageNode.health_snapshot() -> render_prometheus: the breaker
        state, error rate and service flags of every disk appear as
        gauges, and the resilience counters as _total counters."""
        from repro.shardstore import StorageNode

        node = StorageNode(num_disks=2)
        node.put(b"k", b"v")
        health = node.health_snapshot()
        page = render_prometheus(
            {},
            extra_counters=node.stats.snapshot(),
            extra_gauges=health["gauges"],
        )
        types, samples = _parse(page)
        by_name = {(name, labels): value for name, labels, value in samples}
        for disk_id in range(2):
            prefix = f"repro_node_disk{disk_id}"
            assert types[f"{prefix}_breaker_state"] == "gauge"
            assert by_name[(f"{prefix}_breaker_state", "")] == 0  # CLOSED
            assert by_name[(f"{prefix}_error_rate", "")] == 0
            assert by_name[(f"{prefix}_in_service", "")] == 1
            assert by_name[(f"{prefix}_degraded", "")] == 0
        for counter in (
            "repro_node_retries_total",
            "repro_node_breaker_trips_total",
            "repro_node_readmissions_total",
            "repro_node_scrub_repaired_total",
            "repro_node_scrub_quarantined_total",
        ):
            assert types[counter] == "counter"
            assert by_name[(counter, "")] == 0

    def test_empty_inputs_render_empty_page(self):
        assert render_prometheus({}) == "\n"
        assert render_prometheus(None) == "\n"


def _bucket_values(samples, labels_contains):
    rows = []
    for name, labels, value in samples:
        if name == "repro_latency_seconds_bucket" and labels_contains in labels:
            le = [
                part.split("=", 1)[1].strip('"')
                for part in labels.split(",")
                if part.startswith("le=")
            ][0]
            rows.append((float("inf") if le == "+Inf" else float(le), value))
    rows.sort()
    return rows


class TestMetricsServe:
    @pytest.fixture()
    def server(self):
        server, demo = make_server(
            port=0, seed=3, warmup_ops=150, ops_per_scrape=10
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", demo
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_scrape_metrics(self, server):
        base_url, _ = server
        with urllib.request.urlopen(f"{base_url}/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            page = response.read().decode("utf-8")
        types, samples = _parse(page)
        names = {name for name, _, _ in samples}
        # NodeStats totals from the RPC layer are wired through.
        assert "repro_node_puts_total" in names
        assert "repro_disk_writes_total" in names
        # Breaker health gauges from health_snapshot() are wired through.
        for disk_id in range(3):
            assert f"repro_node_disk{disk_id}_breaker_state" in names
            assert f"repro_node_disk{disk_id}_error_rate" in names
            assert f"repro_node_disk{disk_id}_in_service" in names
        assert "repro_node_breaker_trips_total" in names
        assert "repro_node_retries_total" in names
        assert types["repro_latency_seconds"] == "histogram"
        # Histogram buckets are cumulative and +Inf matches _count.
        section = 'section="node.put"'
        buckets = _bucket_values(samples, section)
        assert buckets, "expected node.put latency buckets"
        values = [value for _, value in buckets]
        assert values == sorted(values)
        counts = {
            labels: value
            for name, labels, value in samples
            if name == "repro_latency_seconds_count"
        }
        assert buckets[-1][1] == counts[section]

    def test_scrapes_apply_fresh_traffic(self, server):
        base_url, _ = server

        def puts_total():
            with urllib.request.urlopen(f"{base_url}/metrics") as response:
                page = response.read().decode("utf-8")
            _, samples = _parse(page)
            return {name: value for name, _, value in samples}[
                "repro_node_puts_total"
            ]

        first = puts_total()
        second = puts_total()
        assert second > first

    def test_healthz(self, server):
        base_url, demo = server
        with urllib.request.urlopen(f"{base_url}/healthz") as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/json"
            payload = json.load(response)
        assert payload["status"] == "ok"
        assert set(payload["disks"]) == {"0", "1", "2"}
        assert all(
            state == "in-service" for state in payload["disks"].values()
        )
        assert payload["shards"] >= 0

    def test_unknown_path_is_404(self, server):
        base_url, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base_url}/nope")
        assert excinfo.value.code == 404


class TestMetricsDemoNode:
    def test_traffic_epochs_roll_over(self):
        demo = MetricsDemoNode(seed=1, warmup_ops=10, ops_per_scrape=5)
        demo.apply_traffic(5000)  # crosses the 4096-op epoch boundary
        assert demo._epoch >= 1
        page = demo.metrics_page()
        assert "repro_node_puts_total" in page

class TestQueueGaugeRoundTrip:
    """Admission-plane gauges: StorageNode -> health_snapshot -> exposition."""

    def _admitted_node(self):
        from repro.shardstore import StorageNode
        from repro.shardstore.resilience import AdmissionConfig

        node = StorageNode(num_disks=2, admission=AdmissionConfig())
        node.put(b"k", b"v")
        return node

    def test_queue_gauges_round_trip(self):
        node = self._admitted_node()
        page = render_prometheus(
            {},
            extra_counters=node.stats.snapshot(),
            extra_gauges=node.health_snapshot()["gauges"],
        )
        types, samples = _parse(page)
        by_name = {(name, labels): value for name, labels, value in samples}
        for disk_id in range(2):
            prefix = f"repro_node_disk{disk_id}"
            for gauge in (
                "queue_backlog_units",
                "queue_depth",
                "latency_ewma",
                "inflight",
            ):
                assert types[f"{prefix}_{gauge}"] == "gauge"
                assert (f"{prefix}_{gauge}", "") in by_name
            assert by_name[(f"{prefix}_inflight", "")] == 0
        assert types["repro_node_retry_budget_tokens"] == "gauge"
        assert (
            by_name[("repro_node_retry_budget_tokens", "")]
            == node.admission.retry_budget
        )

    def test_shed_and_hedge_counters_round_trip(self):
        node = self._admitted_node()
        page = render_prometheus(
            {}, extra_counters=node.stats.snapshot()
        )
        types, samples = _parse(page)
        by_name = {(name, labels): value for name, labels, value in samples}
        for counter in (
            "repro_node_shed_overload_total",
            "repro_node_shed_deadline_total",
            "repro_node_hedges_total",
            "repro_node_slow_trips_total",
            "repro_node_deadline_violations_total",
            "repro_node_retry_budget_exhausted_total",
        ):
            assert types[counter] == "counter"
            assert by_name[(counter, "")] == 0

    def test_backlog_gauge_tracks_the_virtual_queue(self):
        node = self._admitted_node()
        primary = node.route_of(b"k")
        node._admissions[primary].busy_until = node._clock + 500
        gauges = node.health_snapshot()["gauges"]
        assert gauges[f"node.disk{primary}.queue_backlog_units"] >= 500


class TestServeAdmission:
    """The metrics-serve demo node runs the admission plane end to end."""

    @pytest.fixture()
    def server(self):
        server, demo = make_server(
            port=0, seed=3, warmup_ops=150, ops_per_scrape=10
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", demo
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_metrics_expose_queue_gauges(self, server):
        base_url, _ = server
        with urllib.request.urlopen(f"{base_url}/metrics") as response:
            page = response.read().decode("utf-8")
        _, samples = _parse(page)
        names = {name for name, _, _ in samples}
        for disk_id in range(3):
            prefix = f"repro_node_disk{disk_id}"
            assert f"{prefix}_queue_backlog_units" in names
            assert f"{prefix}_queue_depth" in names
            assert f"{prefix}_latency_ewma" in names
            assert f"{prefix}_inflight" in names
        assert "repro_node_retry_budget_tokens" in names
        assert "repro_node_shed_overload_total" in names
        assert "repro_node_hedges_total" in names

    def test_healthz_reports_queue_state(self, server):
        base_url, demo = server
        with urllib.request.urlopen(f"{base_url}/healthz") as response:
            payload = json.load(response)
        assert set(payload["queues"]) == {"0", "1", "2"}
        for queue in payload["queues"].values():
            assert queue["state"] in ("ok", "degraded")
            assert queue["backlog_units"] >= 0
            assert queue["depth"] >= 0
        # Healthy demo traffic never builds a storm-scale backlog.
        assert payload["queue_state"] == "ok"

    def test_healthz_degrades_on_saturated_queue(self, server):
        base_url, demo = server
        queue = demo.node._admissions[0]
        before = queue.busy_until
        queue.busy_until = (
            demo.node._clock + demo.admission.max_backlog_units
        )
        try:
            with urllib.request.urlopen(f"{base_url}/healthz") as response:
                payload = json.load(response)
        finally:
            queue.busy_until = before
        assert payload["queues"]["0"]["state"] == "degraded"
        assert payload["queue_state"] == "degraded"
