"""Tests for bounded-exhaustive reference-model verification (section 3.2)."""

import pytest

from repro.core.alphabet import Operation
from repro.core.model_verify import (
    _apply_kv,
    kv_universe,
    removed_iff_deleted,
    verify_chunkstore_model,
    verify_kv_model,
    verify_model,
)
from repro.shardstore import Fault, FaultSet


class TestKvModelVerification:
    def test_kv_model_verified_to_depth_4(self):
        result = verify_kv_model(depth=4)
        assert result.verified, result.message
        # |universe| = 2 keys x (2 puts + 1 delete) + 2 background = 8 ops
        # -> 1 + 8 + 64 + 512 + 4096 prefixes.
        assert result.sequences_checked == sum(8**d for d in range(5))

    def test_universe_contents(self):
        names = {op.name for op in kv_universe()}
        assert names == {"Put", "Delete", "Compact", "CleanReboot"}

    def test_property_catches_broken_model(self):
        from repro.models import ReferenceKvStore

        class LossyModel(ReferenceKvStore):
            """A deliberately wrong spec: delete also drops another key."""

            def delete(self, key: bytes) -> None:
                super().delete(key)
                self._mapping.clear()  # the bug

        result = verify_model(
            LossyModel,
            kv_universe(),
            [("removed-iff-deleted", removed_iff_deleted)],
            depth=3,
            apply_fn=_apply_kv,
        )
        assert not result.verified
        assert result.counterexample is not None
        # Minimal counterexample shape: put one key, delete the other.
        names = [op.name for op in result.counterexample]
        assert "Delete" in names and "Put" in names


class TestChunkStoreModelVerification:
    def test_correct_model_verified(self):
        result = verify_chunkstore_model(depth=4)
        assert result.verified, result.message

    def test_fault15_has_counterexample_within_small_scope(self):
        """The verification that would have caught the paper's issue #15."""
        result = verify_chunkstore_model(
            depth=4, faults=FaultSet.only(Fault.MODEL_REUSES_LOCATORS)
        )
        assert not result.verified
        assert "locator" in result.message
        # Small-scope hypothesis: a handful of ops suffices (DFS preorder
        # finds put,put,delete,put before the minimal put,delete,put).
        assert len(result.counterexample) <= 4


class TestVerifierMechanics:
    def test_budget_guard(self):
        with pytest.raises(RuntimeError):
            verify_model(
                dict,
                [Operation("Keys", ())] * 4,
                [("noop", lambda model, history: None)],
                depth=8,
                apply_fn=lambda model, op: None,
                max_sequences=100,
            )

    def test_counterexample_is_shortest_prefix_found(self):
        # Property fails as soon as two ops were applied.
        result = verify_model(
            list,
            [Operation("X", ())],
            [
                (
                    "short-history",
                    lambda model, history: "too long" if len(history) >= 2 else None,
                )
            ],
            depth=5,
            apply_fn=lambda model, op: None,
        )
        assert not result.verified
        assert len(result.counterexample) == 2
