"""Tests for coverage metrics and the Fig. 5/Fig. 6 report rendering."""

import os

from repro.core import (
    DetectionOutcome,
    count_lines,
    detection_matrix,
    loc_table,
    measure,
)
from repro.core.coverage import CoverageReport
from repro.shardstore import Fault, StoreConfig, StoreSystem

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestLineCoverage:
    def test_measure_records_implementation_lines(self):
        def body():
            system = StoreSystem(StoreConfig(seed=0))
            system.store.put(b"k", b"v" * 100)
            system.store.get(b"k")

        report = measure(body)
        assert report.count() > 50
        files = report.by_file()
        assert "store.py" in files
        assert "lsm.py" in files

    def test_harness_code_not_counted(self):
        def body():
            pass

        report = measure(body)
        assert report.count() == 0

    def test_set_operations(self):
        a = CoverageReport(lines={("f.py", 1), ("f.py", 2)})
        b = CoverageReport(lines={("f.py", 2), ("f.py", 3)})
        assert a.minus(b).lines == {("f.py", 1)}
        assert a.union(b).count() == 3

    def test_deeper_workload_covers_more(self):
        def shallow():
            StoreSystem(StoreConfig(seed=0))

        def deep():
            system = StoreSystem(StoreConfig(seed=0))
            for i in range(10):
                system.store.put(b"k%d" % i, bytes([i]) * 150)
            system.store.flush_index()
            system.store.compact()
            system.clean_reboot()

        assert measure(deep).count() > measure(shallow).count()


class TestDetectionMatrix:
    def test_renders_all_rows(self):
        outcomes = [
            DetectionOutcome(fault=fault, detected=True, detector="x")
            for fault in Fault
        ]
        table = detection_matrix(outcomes)
        for fault in Fault:
            assert f"#{fault.value}" in table
        assert "detected: 16/16" in table

    def test_misses_are_visible(self):
        outcomes = [
            DetectionOutcome(
                fault=fault, detected=fault.value != 3, detector="x"
            )
            for fault in Fault
        ]
        table = detection_matrix(outcomes)
        assert "NO" in table
        assert "detected: 15/16" in table

    def test_grouped_by_paper_property(self):
        table = detection_matrix([])
        assert table.index("Functional Correctness") < table.index(
            "Crash Consistency"
        ) < table.index("Concurrency")


class TestLocTable:
    def test_count_lines_file_and_tree(self):
        this_file = os.path.abspath(__file__)
        assert count_lines(this_file) > 10
        assert count_lines(os.path.dirname(this_file)) > count_lines(this_file)
        assert count_lines("/nonexistent/path") == 0

    def test_loc_table_renders(self):
        table = loc_table(REPO_ROOT)
        assert "Implementation" in table
        assert "Reference models" in table
        assert "Total" in table
        assert "%" in table
