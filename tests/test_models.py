"""Unit tests for the reference models (the specifications, section 3.2)."""

import pytest

from repro.models import (
    CrashAwareModel,
    ReferenceChunkStore,
    ReferenceIndex,
    ReferenceKvStore,
)
from repro.shardstore import Fault, FaultSet, InvalidRequestError, NotFoundError
from repro.shardstore.chunk import Locator
from repro.shardstore.dependency import Dependency, DurabilityTracker


class TestReferenceKvStore:
    def test_mirrors_api_semantics(self):
        model = ReferenceKvStore()
        model.put(b"k", b"v")
        assert model.get(b"k") == b"v"
        assert model.contains(b"k")
        model.delete(b"k")
        with pytest.raises(NotFoundError):
            model.get(b"k")

    def test_rejects_invalid_keys_like_impl(self):
        model = ReferenceKvStore()
        with pytest.raises(InvalidRequestError):
            model.put(b"", b"v")
        with pytest.raises(InvalidRequestError):
            model.get(b"x" * 2000)

    def test_background_ops_are_noops(self):
        model = ReferenceKvStore()
        model.put(b"k", b"v")
        before = model.mapping()
        model.flush_index()
        model.flush_superblock()
        model.compact()
        model.reclaim(4)
        model.clean_reboot()
        assert model.mapping() == before

    def test_clone_is_independent(self):
        model = ReferenceKvStore()
        model.put(b"k", b"v")
        clone = model.clone()
        clone.put(b"k", b"changed")
        assert model.get(b"k") == b"v"

    def test_iteration_is_sorted(self):
        model = ReferenceKvStore()
        for key in (b"c", b"a", b"b"):
            model.put(key, b"v")
        assert list(model) == [b"a", b"b", b"c"]
        assert len(model) == 3


class TestReferenceIndex:
    def test_mapping_semantics(self):
        index = ReferenceIndex()
        locs = [Locator(4, 0, 10)]
        index.put(b"k", locs)
        assert index.get(b"k") == locs
        index.delete(b"k")
        assert index.get(b"k") is None

    def test_replace_data_locator(self):
        index = ReferenceIndex()
        old, new = Locator(4, 0, 10), Locator(5, 0, 10)
        index.put(b"k", [old])
        assert index.replace_data_locator(b"k", old, new)
        assert index.get(b"k") == [new]
        assert not index.replace_data_locator(b"k", old, new)

    def test_background_noops(self):
        index = ReferenceIndex()
        index.put(b"k", [Locator(4, 0, 10)])
        index.flush()
        index.compact()
        assert index.get(b"k") == [Locator(4, 0, 10)]

    def test_returns_copies(self):
        index = ReferenceIndex()
        locs = [Locator(4, 0, 10)]
        index.put(b"k", locs)
        index.get(b"k").append(Locator(9, 9, 9))
        assert index.get(b"k") == locs


class TestReferenceChunkStore:
    def test_put_get_delete(self):
        model = ReferenceChunkStore()
        locator = model.put(b"data")
        assert model.get(locator) == b"data"
        model.delete(locator)
        with pytest.raises(NotFoundError):
            model.get(locator)

    def test_locators_unique_without_fault(self):
        model = ReferenceChunkStore()
        locators = []
        for i in range(10):
            locators.append(model.put(bytes([i])))
            if i % 3 == 0 and locators:
                model.delete(locators.pop(0))
        assert model.locators_unique()

    def test_fault15_reuses_locators(self):
        model = ReferenceChunkStore(FaultSet.only(Fault.MODEL_REUSES_LOCATORS))
        first = model.put(b"one")
        model.delete(first)
        second = model.put(b"two")
        assert int(first) == int(second), "the model bug: locator reuse"
        assert not model.locators_unique()


def _tracker_with(durable: bool):
    tracker = DurabilityTracker()
    rid = tracker.allocate()
    if durable:
        tracker.mark_durable(rid)
    return tracker, Dependency.on_records(tracker, [rid])


class TestCrashAwareModel:
    def test_persistent_put_must_survive(self):
        tracker, dep = _tracker_with(durable=True)
        model = CrashAwareModel()
        model.record_put(b"k", b"v", dep)
        allowed = model.allowed_after_crash(b"k")
        assert allowed.permits(b"v")
        assert not allowed.permits(None)
        assert not allowed.permits(b"other")

    def test_unpersisted_put_may_be_lost(self):
        tracker, dep = _tracker_with(durable=False)
        model = CrashAwareModel()
        model.record_put(b"k", b"v", dep)
        allowed = model.allowed_after_crash(b"k")
        assert allowed.permits(b"v")  # may have partially persisted
        assert allowed.permits(None)  # or be lost entirely

    def test_superseded_by_later_persisted_delete(self):
        tracker = DurabilityTracker()
        rid1, rid2 = tracker.allocate(), tracker.allocate()
        tracker.mark_durable(rid1)
        tracker.mark_durable(rid2)
        model = CrashAwareModel()
        model.record_put(b"k", b"v", Dependency.on_records(tracker, [rid1]))
        model.record_delete(b"k", Dependency.on_records(tracker, [rid2]))
        allowed = model.allowed_after_crash(b"k")
        assert allowed.permits(None)
        assert not allowed.permits(b"v"), "readable v would resurrect data"

    def test_later_unpersisted_ops_widen_allowed_set(self):
        tracker = DurabilityTracker()
        rid = tracker.allocate()
        tracker.mark_durable(rid)
        model = CrashAwareModel()
        model.record_put(b"k", b"old", Dependency.on_records(tracker, [rid]))
        pending = Dependency.on_records(tracker, [tracker.allocate()])
        model.record_put(b"k", b"new", pending)
        allowed = model.allowed_after_crash(b"k")
        assert allowed.permits(b"old")
        assert allowed.permits(b"new")
        assert not allowed.permits(None)

    def test_forward_progress_listing(self):
        tracker, durable_dep = _tracker_with(durable=True)
        pending = Dependency.on_records(tracker, [tracker.allocate()])
        model = CrashAwareModel()
        model.record_put(b"a", b"1", durable_dep)
        model.record_put(b"b", b"2", pending)
        stuck = model.unpersisted_ops()
        assert [op.key for op in stuck] == [b"b"]

    def test_expected_after_clean_shutdown(self):
        tracker, dep = _tracker_with(durable=True)
        model = CrashAwareModel()
        model.record_put(b"k", b"v", dep)
        model.record_delete(b"k", dep)
        assert model.expected_after_clean_shutdown(b"k") is None
        assert model.expected_after_clean_shutdown(b"never") is None

    def test_fault9_forces_stale_persistence(self):
        tracker, pending = _tracker_with(durable=False)
        model = CrashAwareModel(FaultSet.only(Fault.MODEL_STALE_AFTER_CRASH_RECLAIM))
        model.record_put(b"k", b"v", pending)
        model.on_crash({b"k"})
        allowed = model.allowed_after_crash(b"k")
        assert not allowed.permits(None), (
            "the model bug demands data that was legally lost"
        )

    def test_correct_model_ignores_on_crash(self):
        tracker, pending = _tracker_with(durable=False)
        model = CrashAwareModel()
        model.record_put(b"k", b"v", pending)
        model.on_crash({b"k"})
        assert model.allowed_after_crash(b"k").permits(None)

    def test_tracked_keys(self):
        tracker, dep = _tracker_with(durable=True)
        model = CrashAwareModel()
        model.record_put(b"b", b"1", dep)
        model.record_delete(b"a", dep)
        assert model.tracked_keys() == [b"a", b"b"]
        assert model.op_count == 2
