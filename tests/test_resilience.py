"""Unit tests for the resilience primitives and the self-healing node.

Covers the tolerance side of the section 4.4 failure-injection contract:
bounded retry-with-backoff, the per-disk sliding-window health view, the
op-clocked circuit breaker state machine, and -- end to end -- a
StorageNode tripping its breaker on a faulty disk, demoting it, probing
after cooldown, and re-admitting it through probation back to CLOSED.
"""

import pytest

from repro.shardstore import (
    DiskGeometry,
    FailureMode,
    IoError,
    RetryableError,
    StorageNode,
    StoreConfig,
)
from repro.shardstore.config import FIRST_DATA_EXTENT
from repro.shardstore.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DiskHealth,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_units_grow_and_cap(self):
        policy = RetryPolicy(
            backoff_start=1, backoff_multiplier=2, backoff_cap=8
        )
        assert [policy.backoff_units(n) for n in range(6)] == [
            0, 1, 2, 4, 8, 8,
        ]

    def test_transient_error_is_retried_to_success(self):
        policy = RetryPolicy(max_attempts=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise IoError("flaky", transient=True)
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3

    def test_budget_exhaustion_reraises_final_error(self):
        policy = RetryPolicy(max_attempts=2)
        attempts = []

        def always_fails():
            attempts.append(1)
            raise IoError("still down", transient=True)

        with pytest.raises(IoError, match="still down"):
            policy.call(always_fails)
        assert len(attempts) == 2

    def test_non_transient_error_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5)
        attempts = []

        def hard_fail():
            attempts.append(1)
            raise IoError("dead region", transient=False)

        with pytest.raises(IoError):
            policy.call(hard_fail)
        assert len(attempts) == 1

    def test_disabled_policy_never_retries(self):
        policy = RetryPolicy.disabled()
        assert not policy.enabled
        attempts = []

        def flaky():
            attempts.append(1)
            raise IoError("flaky", transient=True)

        with pytest.raises(IoError):
            policy.call(flaky)
        assert len(attempts) == 1

    def test_on_retry_sees_attempt_backoff_and_error(self):
        policy = RetryPolicy(max_attempts=3, backoff_start=2)
        seen = []

        def flaky():
            if len(seen) < 2:
                raise IoError("flaky", transient=True)
            return "done"

        policy.call(
            flaky, on_retry=lambda n, units, exc: seen.append((n, units))
        )
        assert seen == [(1, 2), (2, 4)]


class TestDiskHealth:
    def test_window_slides(self):
        health = DiskHealth(window=3)
        for ok in (False, False, True, True):
            health.record(ok)
        assert len(health.outcomes) == 3
        assert health.recent_failures() == 1
        assert health.total_errors == 2
        assert health.total_successes == 2

    def test_error_rate_is_zero_when_idle(self):
        assert DiskHealth().error_rate() == 0.0

    def test_error_rate_over_recent_window(self):
        health = DiskHealth(window=4)
        for ok in (False, True, False, True):
            health.record(ok)
        assert health.error_rate() == pytest.approx(0.5)


class TestCircuitBreakerStateMachine:
    def _breaker(self, **overrides):
        defaults = dict(
            window=8, trip_failures=3, cooldown_ops=4, probation_ops=2
        )
        defaults.update(overrides)
        return CircuitBreaker(BreakerConfig(**defaults))

    def test_trips_after_threshold_failures(self):
        breaker = self._breaker()
        assert not breaker.record_failure(1)
        assert not breaker.record_failure(2)
        assert breaker.record_failure(3)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_successes_keep_breaker_closed(self):
        breaker = self._breaker()
        for op in range(20):
            breaker.record_success(op)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_waits_out_the_cooldown(self):
        breaker = self._breaker()
        for op in (1, 2, 3):
            breaker.record_failure(op)
        assert not breaker.should_probe(5)
        assert breaker.should_probe(7)

    def test_successful_probe_enters_probation_then_closes(self):
        breaker = self._breaker()
        for op in (1, 2, 3):
            breaker.record_failure(op)
        breaker.begin_probe()
        breaker.on_probe(True, 10)
        assert breaker.state is BreakerState.PROBATION
        assert breaker.readmissions == 1
        breaker.record_success(11)
        assert breaker.state is BreakerState.PROBATION
        breaker.record_success(12)
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_restarts_cooldown(self):
        breaker = self._breaker()
        for op in (1, 2, 3):
            breaker.record_failure(op)
        breaker.begin_probe()
        breaker.on_probe(False, 9)
        assert breaker.state is BreakerState.OPEN
        assert breaker.tripped_at_op == 9
        assert not breaker.should_probe(10)

    def test_probation_error_retrips_immediately(self):
        breaker = self._breaker()
        for op in (1, 2, 3):
            breaker.record_failure(op)
        breaker.begin_probe()
        breaker.on_probe(True, 10)
        assert breaker.record_failure(11)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_disabled_breaker_never_trips(self):
        breaker = CircuitBreaker(BreakerConfig.disabled())
        for op in range(10):
            assert not breaker.record_failure(op)
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.should_probe(1_000)


class TestNodeSelfHealing:
    """End-to-end breaker lifecycle on a real StorageNode.

    A disk with permanent faults armed on every data extent trips its
    breaker and is demoted; once the faults clear (the cable is reseated),
    the op-clocked cooldown expires, the probe succeeds, and the disk is
    re-admitted on probation and finally closes -- all without wall time.
    """

    BREAKER = BreakerConfig(
        window=8, trip_failures=2, cooldown_ops=4, probation_ops=2
    )

    def _node(self):
        return StorageNode(
            num_disks=3,
            config=StoreConfig(
                geometry=DiskGeometry(
                    num_extents=10, extent_size=2048, page_size=128
                )
            ),
            retry_policy=RetryPolicy(),
            breaker=self.BREAKER,
        )

    @staticmethod
    def _arm_all(node, disk_id):
        disk = node.systems[disk_id].disk
        for extent in range(FIRST_DATA_EXTENT, disk.geometry.num_extents):
            disk.arm_fault(extent, FailureMode.PERMANENT)

    @staticmethod
    def _keys_for(node, disk_id, count, prefix=b"victim"):
        """Fresh keys that steer to ``disk_id`` on an all-healthy node.

        ``prefix`` must differ between calls: keys migrated off a demoted
        disk stay routed to their new home, so reusing a key would not
        exercise ``disk_id`` again.
        """
        from repro.shardstore.rpc import _steer

        keys, i = [], 0
        while len(keys) < count:
            key = b"%s-%d" % (prefix, i)
            if _steer(key, node.num_disks) == disk_id:
                keys.append(key)
            i += 1
        return keys

    def _trip(self, node, victim):
        """Buffer writes onto the victim, then drain until the breaker trips.

        Puts land in the write-back cache, so the armed faults only fire
        when a drain pushes the queue at the disk; each failed drain feeds
        the victim's breaker one error.
        """
        self._arm_all(node, victim)
        for key in self._keys_for(node, victim, 2):
            node.put(key, b"v" * 64)
        # The drain that trips the breaker does not raise: the demotion
        # already re-homed the disk's shards, so the node made progress.
        for _ in range(4 * self.BREAKER.trip_failures):
            if not node.in_service(victim):
                break
            try:
                node.drain()
            except (RetryableError, IoError):
                pass
        assert not node.in_service(victim)
        assert node.stats.breaker_trips == 1

    def test_breaker_trips_and_demotes_faulty_disk(self):
        node = self._node()
        victim = 1
        self._trip(node, victim)
        assert node.breaker_state(victim) is BreakerState.OPEN
        assert not node.in_service(victim)
        assert node.stats.breaker_trips == 1
        assert node.stats.demotions == 1
        # Writes re-steer away from the demoted disk and succeed.
        node.put(b"resteered", b"v")
        assert node.get(b"resteered") == b"v"

    def test_cleared_disk_is_probed_and_readmitted(self):
        node = self._node()
        victim = 1
        self._trip(node, victim)
        # The operator reseats the cable: faults clear, breaker unaware.
        node.systems[victim].disk.clear_faults()
        # Clean traffic advances the op clock through the cooldown; the
        # probe fires from _tick and re-admits the disk on probation.
        for i in range(self.BREAKER.cooldown_ops + 1):
            node.put(b"clock-%d" % i, b"v")
        assert node.in_service(victim)
        assert not node.degraded(victim)
        assert node.stats.breaker_probes >= 1
        assert node.stats.readmissions == 1
        assert node.breaker_state(victim) in (
            BreakerState.PROBATION,
            BreakerState.CLOSED,
        )
        # Clean IO on the re-admitted disk closes the breaker for good.
        for key in self._keys_for(
            node, victim, self.BREAKER.probation_ops, prefix=b"fresh"
        ):
            node.put(key, b"w")
            assert node.get(key) == b"w"
        assert node.breaker_state(victim) is BreakerState.CLOSED

    def test_still_faulty_disk_fails_probe_and_stays_out(self):
        node = self._node()
        victim = 1
        self._trip(node, victim)
        # Faults stay armed: every probe must fail and restart cooldown.
        for i in range(4 * self.BREAKER.cooldown_ops):
            node.put(b"tick-%d" % i, b"v")
        assert not node.in_service(victim)
        assert node.stats.breaker_probes >= 1
        assert node.stats.readmissions == 0
        assert node.breaker_state(victim) is BreakerState.OPEN

    def test_disabled_breaker_leaves_faulty_disk_in_service(self):
        node = StorageNode(
            num_disks=3,
            config=StoreConfig(
                geometry=DiskGeometry(
                    num_extents=10, extent_size=2048, page_size=128
                )
            ),
            retry_policy=RetryPolicy(),
            breaker=BreakerConfig.disabled(),
        )
        victim = 1
        self._arm_all(node, victim)
        for key in self._keys_for(node, victim, 2):
            node.put(key, b"v" * 64)
        failures = 0
        for _ in range(6):
            try:
                node.drain()
            except (RetryableError, IoError):
                failures += 1
        assert failures >= 3
        assert node.in_service(victim)  # nobody pulled it
        assert node.stats.breaker_trips == 0

    def test_health_snapshot_reflects_breaker_state(self):
        node = self._node()
        victim = 1
        self._trip(node, victim)
        snapshot = node.health_snapshot()
        assert snapshot["counters"]["node.breaker_trips"] == 1
        assert (
            snapshot["gauges"][f"node.disk{victim}.breaker_state"]
            == BreakerState.OPEN.code
        )
        assert snapshot["gauges"][f"node.disk{victim}.in_service"] == 0.0
