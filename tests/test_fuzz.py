"""Panic-freedom tests for every untrusted-byte decoder (section 7)."""

import pytest

from repro.serialization.fuzz import (
    check_exhaustive,
    check_fuzz,
    standard_corpus,
    standard_decoders,
)
from repro.shardstore.errors import CorruptionError


class TestExhaustiveTier:
    """The Crux-shaped tier: a real proof for a small size bound."""

    @pytest.mark.parametrize("name,decoder", standard_decoders())
    def test_panic_free_up_to_two_bytes(self, name, decoder):
        report = check_exhaustive(decoder, max_len=2, name=name)
        assert report.passed, (
            f"{name} panicked on {report.panic_input!r}: {report.panic!r}"
        )
        assert report.inputs_tried == 1 + 256 + 256 * 256


class TestFuzzTier:
    @pytest.mark.parametrize("name,decoder", standard_decoders())
    def test_random_fuzz(self, name, decoder):
        report = check_fuzz(decoder, iterations=3000, seed=1, name=name)
        assert report.passed, (
            f"{name} panicked on {report.panic_input!r}: {report.panic!r}"
        )

    @pytest.mark.parametrize("name,decoder", standard_decoders())
    def test_mutation_fuzz_with_corpus(self, name, decoder):
        report = check_fuzz(
            decoder,
            iterations=3000,
            seed=2,
            corpus=standard_corpus(),
            name=name,
        )
        assert report.passed
        # Structure-aware mutation reaches successful decodes too.
        if name == "decode_value":
            assert report.decoded_ok > 0

    def test_fuzz_is_deterministic(self):
        name, decoder = standard_decoders()[0]
        a = check_fuzz(decoder, iterations=500, seed=7, name=name)
        b = check_fuzz(decoder, iterations=500, seed=7, name=name)
        assert (a.decoded_ok, a.rejected) == (b.decoded_ok, b.rejected)


class TestHarnessCatchesPanics:
    def test_panicky_decoder_is_caught(self):
        def bad_decoder(data: bytes):
            if len(data) >= 3 and data[0] == 0x41:
                raise IndexError("boom")  # a panic, not CorruptionError
            raise CorruptionError("rejected")

        report = check_fuzz(bad_decoder, iterations=5000, seed=0, name="bad")
        assert not report.passed
        assert isinstance(report.panic, IndexError)
        assert report.panic_input is not None and report.panic_input[0] == 0x41

    def test_exhaustive_catches_small_panic(self):
        def bad_decoder(data: bytes):
            if data == b"\x07\x07":
                raise ZeroDivisionError("boom")
            raise CorruptionError("rejected")

        report = check_exhaustive(bad_decoder, max_len=2, name="bad")
        assert not report.passed
        assert report.panic_input == b"\x07\x07"
