"""Unit tests for the write-through page cache."""

import random

import pytest

from repro.shardstore import (
    DiskGeometry,
    ExtentError,
    Fault,
    FaultSet,
    InMemoryDisk,
    StoreConfig,
)
from repro.shardstore.buffer_cache import BufferCache
from repro.shardstore.dependency import Dependency, DurabilityTracker
from repro.shardstore.scheduler import IoScheduler
from repro.shardstore.superblock import Superblock


def _fresh(faults=None, cache_pages=8):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults or FaultSet.none(),
        buffer_cache_pages=cache_pages,
    )
    disk = InMemoryDisk(config.geometry)
    tracker = DurabilityTracker()
    scheduler = IoScheduler(disk, tracker, random.Random(0))
    superblock = Superblock(scheduler, config)
    return disk, tracker, scheduler, BufferCache(scheduler, superblock, config)


class TestReadPath:
    def test_read_through_matches_scheduler(self):
        disk, tracker, scheduler, cache = _fresh()
        scheduler.append(4, bytes(range(200)), Dependency.root(tracker))
        assert cache.read(4, 0, 200) == bytes(range(200))

    def test_second_read_hits_cache(self):
        disk, tracker, scheduler, cache = _fresh()
        scheduler.append(4, b"x" * 100, Dependency.root(tracker))
        cache.read(4, 0, 100)
        misses = cache.misses
        cache.read(4, 0, 100)
        assert cache.misses == misses
        assert cache.hits > 0

    def test_read_beyond_soft_pointer_rejected(self):
        disk, tracker, scheduler, cache = _fresh()
        scheduler.append(4, b"abc", Dependency.root(tracker))
        with pytest.raises(ExtentError):
            cache.read(4, 0, 4)

    def test_partial_page_revalidation(self):
        """A cached short page is refetched when more data lands on it."""
        disk, tracker, scheduler, cache = _fresh()
        scheduler.append(4, b"a" * 50, Dependency.root(tracker))
        assert cache.read(4, 0, 50) == b"a" * 50
        scheduler.append(4, b"b" * 50, Dependency.root(tracker))
        assert cache.read(4, 0, 100) == b"a" * 50 + b"b" * 50


class TestWritePath:
    def test_append_fills_cache_consistently(self):
        disk, tracker, scheduler, cache = _fresh()
        offset, dep = cache.append(4, b"q" * 300, Dependency.root(tracker))
        assert offset == 0
        assert cache.read(4, 0, 300) == b"q" * 300

    def test_mid_page_append_preserves_uncached_prefix(self):
        """Regression for the prefix-fabrication bug: an append starting
        mid-page must not corrupt the cached image of earlier bytes."""
        disk, tracker, scheduler, cache = _fresh(cache_pages=4)
        cache.append(4, b"A" * 71, Dependency.root(tracker))
        cache.invalidate_all()  # simulate eviction of the page
        cache.append(4, b"B" * 100, Dependency.root(tracker))
        assert cache.read(4, 0, 171) == b"A" * 71 + b"B" * 100

    def test_append_dep_includes_pointer_promise(self):
        disk, tracker, scheduler, cache = _fresh()
        _, dep = cache.append(4, b"data", Dependency.root(tracker))
        scheduler.drain()  # data durable, but no superblock flush yet
        assert not dep.is_persistent()
        cache.superblock.flush()
        scheduler.drain()
        assert dep.is_persistent()

    def test_fault8_drops_pointer_promise(self):
        disk, tracker, scheduler, cache = _fresh(
            faults=FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP)
        )
        _, dep = cache.append(4, b"data", Dependency.root(tracker))
        scheduler.drain()
        assert dep.is_persistent(), "the fault reports persistent too early"

    def test_cadence_triggers_superblock_flush(self):
        disk, tracker, scheduler, cache = _fresh()
        epoch_before = cache.superblock.current_epoch()
        for i in range(cache.config.superblock_flush_cadence + 1):
            cache.append(4, b"z" * 16, Dependency.root(tracker))
        assert cache.superblock.current_epoch() > epoch_before


class TestInvalidation:
    def test_invalidate_extent_drops_pages(self):
        disk, tracker, scheduler, cache = _fresh()
        cache.append(4, b"x" * 200, Dependency.root(tracker))
        cache.append(5, b"y" * 200, Dependency.root(tracker))
        cache.invalidate_extent(4)
        assert all(key[0] != 4 for key in cache._pages)
        assert any(key[0] == 5 for key in cache._pages)

    def test_fault2_skips_invalidation(self):
        disk, tracker, scheduler, cache = _fresh(
            faults=FaultSet.only(Fault.CACHE_NOT_DRAINED_ON_RESET)
        )
        cache.append(4, b"stale" * 10, Dependency.root(tracker))
        cache.invalidate_extent(4)
        assert any(key[0] == 4 for key in cache._pages), "fault keeps pages"

    def test_stale_read_after_reset_with_fault2(self):
        disk, tracker, scheduler, cache = _fresh(
            faults=FaultSet.only(Fault.CACHE_NOT_DRAINED_ON_RESET)
        )
        cache.append(4, b"OLD!" * 32, Dependency.root(tracker))
        cache.read(4, 0, 128)
        scheduler.reset(4, Dependency.root(tracker))
        cache.invalidate_extent(4)  # no-op under the fault
        # The reused extent gets a shorter write; the stale full page wins.
        cache.append(4, b"NEW!", Dependency.root(tracker))
        assert cache.read(4, 0, 4) == b"OLD!", "stale page served: the bug"
        assert scheduler.read(4, 0, 4) == b"NEW!", "the medium has new data"

    def test_lru_eviction_bounds_size(self):
        disk, tracker, scheduler, cache = _fresh(cache_pages=4)
        for extent in (4, 5, 6):
            cache.append(extent, b"f" * 300, Dependency.root(tracker))
        assert cache.cached_pages <= 4


def _fresh_bytes(cache_bytes):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=FaultSet.none(),
        buffer_cache_bytes=cache_bytes,
    )
    disk = InMemoryDisk(config.geometry)
    tracker = DurabilityTracker()
    scheduler = IoScheduler(disk, tracker, random.Random(0))
    superblock = Superblock(scheduler, config)
    return disk, tracker, scheduler, BufferCache(scheduler, superblock, config)


class TestByteBudgetEviction:
    def test_byte_budget_overrides_page_budget(self):
        # 3 pages resident would be 384 bytes; a 256-byte budget keeps 2.
        disk, tracker, scheduler, cache = _fresh_bytes(256)
        for extent in (4, 5, 6):
            cache.append(extent, b"f" * 128, Dependency.root(tracker))
        assert cache.cached_bytes <= 256
        assert cache.cached_pages == 2

    def test_cached_bytes_tracks_partial_pages(self):
        disk, tracker, scheduler, cache = _fresh_bytes(1024)
        cache.append(4, b"x" * 100, Dependency.root(tracker))
        assert cache.cached_bytes == 100
        cache.append(4, b"y" * 28, Dependency.root(tracker))
        assert cache.cached_bytes == 128

    def test_eviction_is_lru_and_reads_stay_correct(self):
        disk, tracker, scheduler, cache = _fresh_bytes(256)
        cache.append(4, b"a" * 128, Dependency.root(tracker))
        cache.append(5, b"b" * 128, Dependency.root(tracker))
        cache.read(4, 0, 128)  # touch 4 so extent 5 is the LRU victim
        cache.append(6, b"c" * 128, Dependency.root(tracker))
        assert (5, 0) not in cache._pages
        # Evicted pages refill through the scheduler transparently.
        assert cache.read(5, 0, 128) == b"b" * 128
        assert cache.read(4, 0, 128) == b"a" * 128
        assert cache.read(6, 0, 128) == b"c" * 128

    def test_one_oversized_page_always_fits(self):
        # The evictor never evicts the page it just inserted, even when a
        # single page exceeds the budget.
        disk, tracker, scheduler, cache = _fresh_bytes(64)
        cache.append(4, b"z" * 128, Dependency.root(tracker))
        assert cache.cached_pages == 1
        assert cache.read(4, 0, 128) == b"z" * 128

    def test_invalidate_all_resets_byte_accounting(self):
        disk, tracker, scheduler, cache = _fresh_bytes(1024)
        cache.append(4, b"x" * 200, Dependency.root(tracker))
        cache.invalidate_all()
        assert cache.cached_bytes == 0
        assert cache.cached_pages == 0
