"""Unit tests for the Wing-Gong linearizability checker."""

import pytest

from repro.core.linearizability import (
    HistoryOp,
    HistoryRecorder,
    check_linearizable,
    kv_fingerprint,
    kv_model_apply,
    kv_model_factory,
)


def _op(op_id, name, args, result, invoked, returned):
    return HistoryOp(op_id, name, args, result, invoked, returned)


def _check(history):
    return check_linearizable(
        history, kv_model_factory, kv_model_apply, fingerprint=kv_fingerprint
    )


class TestSequentialHistories:
    def test_empty_history(self):
        assert _check([])

    def test_simple_put_get(self):
        history = [
            _op(0, "put", (b"k", b"v"), None, 1, 2),
            _op(1, "get", (b"k",), b"v", 3, 4),
        ]
        assert _check(history)

    def test_wrong_read_rejected(self):
        history = [
            _op(0, "put", (b"k", b"v"), None, 1, 2),
            _op(1, "get", (b"k",), b"other", 3, 4),
        ]
        assert not _check(history)

    def test_stale_read_after_overwrite_rejected(self):
        history = [
            _op(0, "put", (b"k", b"v1"), None, 1, 2),
            _op(1, "put", (b"k", b"v2"), None, 3, 4),
            _op(2, "get", (b"k",), b"v1", 5, 6),
        ]
        assert not _check(history)

    def test_delete_then_get_none(self):
        history = [
            _op(0, "put", (b"k", b"v"), None, 1, 2),
            _op(1, "delete", (b"k",), None, 3, 4),
            _op(2, "get", (b"k",), None, 5, 6),
        ]
        assert _check(history)


class TestConcurrentHistories:
    def test_concurrent_put_get_either_value_ok(self):
        # The get overlaps the put, so both old (None) and new are legal.
        for observed in (None, b"v"):
            history = [
                _op(0, "put", (b"k", b"v"), None, 1, 4),
                _op(1, "get", (b"k",), observed, 2, 3),
            ]
            assert _check(history), observed

    def test_real_time_order_is_respected(self):
        # The put returned before the get was invoked: None is illegal.
        history = [
            _op(0, "put", (b"k", b"v"), None, 1, 2),
            _op(1, "get", (b"k",), None, 3, 4),
        ]
        assert not _check(history)

    def test_two_concurrent_writers_and_reader(self):
        # Reader overlapping both writers may see either write.
        for observed in (b"a", b"b"):
            history = [
                _op(0, "put", (b"k", b"a"), None, 1, 10),
                _op(1, "put", (b"k", b"b"), None, 2, 9),
                _op(2, "get", (b"k",), observed, 3, 8),
            ]
            assert _check(history), observed

    def test_classic_nonlinearizable_reads(self):
        # Two sequential reads observing values in an order inconsistent
        # with any single linearization of two sequential writes.
        history = [
            _op(0, "put", (b"k", b"a"), None, 1, 2),
            _op(1, "put", (b"k", b"b"), None, 3, 4),
            _op(2, "get", (b"k",), b"b", 5, 6),
            _op(3, "get", (b"k",), b"a", 7, 8),
        ]
        assert not _check(history)


class TestRecorder:
    def test_recorder_orders_by_invocation(self):
        recorder = HistoryRecorder()
        recorder.record("put", (b"k", b"v"), lambda: None)
        recorder.record("get", (b"k",), lambda: b"v")
        history = recorder.history()
        assert [op.name for op in history] == ["put", "get"]
        assert history[0].returned_at < history[1].invoked_at
        assert _check(history)

    def test_budget_exceeded_raises(self):
        history = [
            _op(i, "put", (b"k%d" % (i % 3), b"v"), None, 1, 100)
            for i in range(12)
        ]
        with pytest.raises(RuntimeError):
            check_linearizable(
                history,
                kv_model_factory,
                kv_model_apply,
                fingerprint=kv_fingerprint,
                max_nodes=10,
            )
