"""Tests for the conformance engine itself (runner, relaxation, replay)."""


from repro.core import (
    BiasConfig,
    ChunkStoreModelHarness,
    NodeHarness,
    StoreHarness,
    crash_alphabet,
    failure_alphabet,
    node_alphabet,
    replay_fails,
    run_conformance,
    store_alphabet,
)
from repro.core.alphabet import Operation
from repro.shardstore import Fault, FaultSet


class TestBaselines:
    """Fault-free implementations must pass every suite (no false alarms)."""

    def test_store_alphabet_clean(self):
        report = run_conformance(
            lambda seed: StoreHarness(FaultSet.none(), seed),
            store_alphabet(),
            sequences=15,
            ops_per_sequence=60,
        )
        assert report.passed, report.failure
        assert report.sequences_run == 15
        assert report.ops_run == 15 * 60

    def test_crash_alphabet_clean(self):
        report = run_conformance(
            lambda seed: StoreHarness(FaultSet.none(), seed),
            crash_alphabet(),
            sequences=15,
            ops_per_sequence=60,
        )
        assert report.passed, report.failure

    def test_failure_alphabet_clean(self):
        report = run_conformance(
            lambda seed: StoreHarness(FaultSet.none(), seed),
            failure_alphabet(),
            sequences=15,
            ops_per_sequence=60,
        )
        assert report.passed, report.failure

    def test_node_alphabet_clean(self):
        report = run_conformance(
            lambda seed: NodeHarness(FaultSet.none(), seed),
            node_alphabet(),
            sequences=10,
            ops_per_sequence=50,
            ctx_kwargs={"num_disks": 3},
        )
        assert report.passed, report.failure

    def test_unbiased_store_alphabet_clean(self):
        """Regression: the wide-keyspace workload that exposed the cache
        prefix-fabrication bug must stay green."""
        report = run_conformance(
            lambda seed: StoreHarness(FaultSet.none(), seed),
            store_alphabet(),
            sequences=25,
            ops_per_sequence=60,
            bias=BiasConfig.unbiased(),
            base_seed=20,
        )
        assert report.passed, report.failure


class TestDetection:
    """Pinned-seed smoke checks that each class of fault is caught.

    The full 16-issue matrix lives in benchmarks/test_fig5_detection_matrix.
    """

    def test_detects_functional_fault(self):
        report = run_conformance(
            lambda seed: StoreHarness(
                FaultSet.only(Fault.CACHE_NOT_DRAINED_ON_RESET), seed
            ),
            store_alphabet(),
            sequences=10,
            ops_per_sequence=80,
        )
        assert not report.passed
        assert report.failing_sequence is not None
        assert report.failing_seed is not None

    def test_detects_crash_fault(self):
        report = run_conformance(
            lambda seed: StoreHarness(
                FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP), seed
            ),
            crash_alphabet(),
            sequences=10,
            ops_per_sequence=80,
        )
        assert not report.passed
        assert "persistence" in report.failure.message

    def test_detects_node_fault(self):
        report = run_conformance(
            lambda seed: NodeHarness(
                FaultSet.only(Fault.DISK_RETURN_DROPS_SHARDS), seed
            ),
            node_alphabet(),
            sequences=10,
            ops_per_sequence=60,
            ctx_kwargs={"num_disks": 3},
        )
        assert not report.passed

    def test_detects_model_fault(self):
        report = run_conformance(
            lambda seed: ChunkStoreModelHarness(
                FaultSet.only(Fault.MODEL_REUSES_LOCATORS), seed
            ),
            store_alphabet(),
            sequences=5,
            ops_per_sequence=60,
        )
        assert not report.passed


class TestReplayDeterminism:
    def test_failing_sequence_replays(self):
        factory = lambda seed: StoreHarness(  # noqa: E731
            FaultSet.only(Fault.CACHE_NOT_DRAINED_ON_RESET), seed
        )
        report = run_conformance(
            factory, store_alphabet(), sequences=10, ops_per_sequence=80
        )
        assert not report.passed
        fails = replay_fails(factory, report.failing_seed)
        assert fails(report.failing_sequence)
        assert fails(report.failing_sequence), "replay must be repeatable"

    def test_prefix_without_trigger_passes(self):
        factory = lambda seed: StoreHarness(  # noqa: E731
            FaultSet.only(Fault.CACHE_NOT_DRAINED_ON_RESET), seed
        )
        report = run_conformance(
            factory, store_alphabet(), sequences=10, ops_per_sequence=80
        )
        fails = replay_fails(factory, report.failing_seed)
        assert not fails(report.failing_sequence[: report.failure.op_index])


class TestRelaxedEquivalence:
    def test_invalid_key_ops_are_not_failures(self):
        harness = StoreHarness(FaultSet.none(), 0)
        assert harness.apply(0, Operation("Put", (b"", b"v"))) is None
        assert harness.apply(1, Operation("Get", (b"",))) is None
        assert harness.apply(2, Operation("Delete", (b"x" * 5000,))) is None

    def test_failed_put_leaves_key_uncertain(self):
        from repro.shardstore import IoError as ShardIoError

        harness = StoreHarness(FaultSet.none(), 0)
        assert harness.apply(0, Operation("Put", (b"k", b"before"))) is None
        # Force the next put to fail mid-way (as an injected IO error
        # surfacing synchronously would).
        original_put = harness.system.store.put

        def failing_put(key, value):
            raise ShardIoError("injected synchronous failure")

        harness.system.store.put = failing_put
        assert harness.apply(1, Operation("Put", (b"k", b"after"))) is None
        assert harness.has_failed
        assert b"k" in harness._uncertain
        harness.system.store.put = original_put
        # Either the old or the attempted value is now acceptable for k.
        assert harness.apply(2, Operation("Get", (b"k",))) is None
        # A successful read pins the state back down.
        assert b"k" not in harness._uncertain

    def test_untouched_keys_stay_strict_after_failure(self):
        harness = StoreHarness(FaultSet.none(), 0)
        assert harness.apply(0, Operation("Put", (b"stable", b"S"))) is None
        assert harness.apply(1, Operation("FailDiskOnce", (5,))) is None
        assert harness.has_failed
        # Corrupt the stable key's value behind the harness's back: the
        # strict per-key check must flag it despite has_failed.
        harness.model.put(b"stable", b"tampered-expectation")
        failure = harness.apply(2, Operation("Get", (b"stable",)))
        assert failure is not None

    def test_out_of_range_fail_op_ignored(self):
        harness = StoreHarness(FaultSet.none(), 0)
        assert harness.apply(0, Operation("FailDiskOnce", (999,))) is None
        assert not harness.has_failed


class TestRunnerBookkeeping:
    def test_base_seed_offsets_sequences(self):
        seen = []

        class Probe(StoreHarness):
            def __init__(self, seed):
                seen.append(seed)
                super().__init__(FaultSet.none(), seed)

        run_conformance(
            Probe, store_alphabet(), sequences=3, ops_per_sequence=5, base_seed=70
        )
        assert seen == [70, 71, 72]

    def test_unknown_operation_reported(self):
        harness = StoreHarness(FaultSet.none(), 0)
        failure = harness.apply(0, Operation("Teleport", ()))
        assert failure is not None
        assert "unknown operation" in failure.message


class TestWireModeConformance:
    """The node suite driven through the messaging protocol (section 8.3)."""

    def test_wire_mode_clean(self):
        report = run_conformance(
            lambda seed: NodeHarness(FaultSet.none(), seed, wire=True),
            node_alphabet(),
            sequences=10,
            ops_per_sequence=50,
            ctx_kwargs={"num_disks": 3},
        )
        assert report.passed, report.failure

    def test_wire_mode_detects_node_fault(self):
        report = run_conformance(
            lambda seed: NodeHarness(
                FaultSet.only(Fault.DISK_RETURN_DROPS_SHARDS), seed, wire=True
            ),
            node_alphabet(),
            sequences=10,
            ops_per_sequence=60,
            ctx_kwargs={"num_disks": 3},
        )
        assert not report.passed

    def test_wire_mode_rejects_invalid_keys(self):
        harness = NodeHarness(FaultSet.none(), 0, wire=True)
        assert harness.apply(0, Operation("Put", (b"", b"v"))) is None
        assert harness.apply(1, Operation("Get", (b"x" * 5000,))) is None
