"""Unit tests for the storage-node RPC/control-plane layer."""

import warnings

import pytest

from repro.shardstore import (
    DiskGeometry,
    Fault,
    FaultSet,
    InvalidRequestError,
    KeyNotFoundError,
    NotFoundError,
    StorageNode,
    StoreConfig,
)


def _node(num_disks=3, faults=None):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults or FaultSet.none(),
    )
    return StorageNode(num_disks=num_disks, config=config)


class TestRequestPlane:
    def test_put_get_roundtrip(self):
        node = _node()
        node.put(b"shard", b"data" * 20)
        assert node.get(b"shard") == b"data" * 20

    def test_get_unknown_shard(self):
        node = _node()
        with pytest.raises(NotFoundError):
            node.get(b"nope")

    def test_delete_removes_routing(self):
        node = _node()
        node.put(b"shard", b"v")
        node.delete(b"shard")
        with pytest.raises(NotFoundError):
            node.get(b"shard")

    def test_delete_unknown_raises(self):
        node = _node()
        with pytest.raises(KeyNotFoundError):
            node.delete(b"nope")

    def test_steering_spreads_shards(self):
        node = _node(num_disks=3)
        for i in range(30):
            node.put(b"shard-%d" % i, b"v")
        used = {
            disk_id
            for disk_id in range(3)
            if node.systems[disk_id].store.keys()
        }
        assert len(used) == 3

    def test_steering_is_sticky(self):
        node = _node()
        node.put(b"shard", b"one")
        target = node._shard_map[b"shard"]
        node.put(b"shard", b"two")
        assert node._shard_map[b"shard"] == target
        assert node.get(b"shard") == b"two"


class TestControlPlane:
    def test_remove_disk_migrates_shards(self):
        node = _node()
        for i in range(12):
            node.put(b"shard-%d" % i, bytes([i]) * 40)
        victim = next(
            d for d in range(3) if node.systems[d].store.keys()
        )
        migrated = node.remove_disk(victim)
        assert migrated > 0
        assert not node.in_service(victim)
        for i in range(12):
            assert node.get(b"shard-%d" % i) == bytes([i]) * 40

    def test_cannot_remove_last_disk(self):
        node = _node(num_disks=1)
        with pytest.raises(InvalidRequestError):
            node.remove_disk(0)

    def test_cannot_remove_twice(self):
        node = _node()
        node.remove_disk(0)
        with pytest.raises(InvalidRequestError):
            node.remove_disk(0)

    def test_return_disk_roundtrip(self):
        node = _node()
        for i in range(9):
            node.put(b"shard-%d" % i, bytes([i]) * 30)
        node.remove_disk(1)
        node.return_disk(1)
        assert node.in_service(1)
        for i in range(9):
            assert node.get(b"shard-%d" % i) == bytes([i]) * 30

    def test_return_in_service_disk_rejected(self):
        node = _node()
        with pytest.raises(InvalidRequestError):
            node.return_disk(0)

    def test_puts_avoid_removed_disk(self):
        node = _node()
        node.remove_disk(0)
        for i in range(10):
            node.put(b"after-%d" % i, b"v")
        assert not node.systems[0].store.keys() or all(
            not key.startswith(b"after-")
            for key in node.systems[0].store.keys()
        )

    def test_fault4_resurrects_stale_routing(self):
        """Issue #4: returning a disk restores its stale shard routing."""
        node = _node(faults=FaultSet.only(Fault.DISK_RETURN_DROPS_SHARDS))
        for i in range(12):
            node.put(b"shard-%d" % i, b"old")
        victim = next(d for d in range(3) if node.systems[d].store.keys())
        stale_keys = list(node.systems[victim].store.keys())
        node.remove_disk(victim)
        # Overwrite one of the victim's shards while it is away.
        target_key = stale_keys[0]
        node.put(target_key, b"new")
        node.return_disk(victim)
        assert node.get(target_key) == b"old", "stale data resurfaces: bug #4"

    def test_correct_return_keeps_migrated_routing(self):
        node = _node()
        for i in range(12):
            node.put(b"shard-%d" % i, b"old")
        victim = next(d for d in range(3) if node.systems[d].store.keys())
        target_key = node.systems[victim].store.keys()[0]
        node.remove_disk(victim)
        node.put(target_key, b"new")
        node.return_disk(victim)
        assert node.get(target_key) == b"new"


class TestBulkOps:
    def test_bulk_create_and_list(self):
        node = _node()
        created = node.bulk_create([(b"a", b"1"), (b"b", b"2")])
        assert created == 2
        assert node.keys() == [b"a", b"b"]

    def test_bulk_delete(self):
        node = _node()
        node.bulk_create([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        deleted = node.bulk_delete([b"a", b"c", b"zz"])
        assert deleted == 2
        assert node.keys() == [b"b"]

    def test_list_empty(self):
        assert _node().keys() == []

    def test_list_shards_shim_warns(self):
        node = _node()
        node.put(b"a", b"1")
        with pytest.deprecated_call():
            assert node.list_shards() == [b"a"]

    def test_list_shards_shim_warns_exactly_once_per_call(self):
        # Pins the shim's contract so it can be removed in a later PR:
        # one DeprecationWarning per call, attributed to the caller.
        node = _node()
        node.put(b"a", b"1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            node.list_shards()
        deprecations = [
            warning
            for warning in caught
            if issubclass(warning.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "use keys()" in str(deprecations[0].message)
        assert deprecations[0].filename == __file__  # stacklevel=2
        # keys() itself must stay warning-free.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            node.keys()
        assert caught == []


class TestValidation:
    def test_zero_disks_rejected(self):
        with pytest.raises(InvalidRequestError):
            StorageNode(num_disks=0)

    def test_bad_disk_id_rejected(self):
        node = _node()
        with pytest.raises(InvalidRequestError):
            node.remove_disk(9)

    def test_drain_all(self):
        node = _node()
        node.put(b"k", b"v")
        node.drain_all()
        assert all(
            system.store.pending_io_count == 0 for system in node.systems
        )
