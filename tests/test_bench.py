"""Tests for the benchmark harness, workloads, and the baseline gate.

Determinism is the load-bearing property: the op sequence (and its digest
in the artifact) must be a pure function of (workload, ops, value_size,
seed), while wall-clock fields are free to vary.  The baseline tests use
synthetic artifacts so the gate logic is checked without timing noise; the
one test that gates against the committed ``benchmarks/baselines.json`` is
marked ``bench`` and runs only in the CI bench job (``pytest -m bench``).
"""

import json
import os

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_TOLERANCE,
    WORKLOADS,
    BaselineRaiseError,
    compare_to_baseline,
    default_output_name,
    default_target,
    empty_baselines,
    generate_ops,
    load_baselines,
    render_report,
    run_bench,
    save_baselines,
    sequence_digest,
    update_baselines,
    value_for,
)
from repro.cli import main

BASELINES_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "baselines.json"
)


class TestWorkloadGeneration:
    def test_same_seed_same_sequence(self):
        a = generate_ops("mixed", 500, 64, seed=7)
        b = generate_ops("mixed", 500, 64, seed=7)
        assert a == b
        assert sequence_digest(a) == sequence_digest(b)

    def test_different_seeds_differ(self):
        a = generate_ops("mixed", 500, 64, seed=7)
        b = generate_ops("mixed", 500, 64, seed=8)
        assert sequence_digest(a) != sequence_digest(b)

    def test_put_heavy_is_mostly_puts(self):
        ops = generate_ops("put-heavy", 1000, 64, seed=0)
        puts = sum(1 for op in ops if op.op == "put")
        assert puts > 0.6 * len(ops)

    def test_flush_cadence_injected(self):
        ops = generate_ops("mixed", 200, 64, seed=0)
        flushes = [op for op in ops if op.op == "flush"]
        assert len(flushes) == 200 // 64

    def test_reboots_only_in_crash_recover(self):
        for workload in WORKLOADS:
            ops = generate_ops(workload, 400, 64, seed=1)
            reboots = [op for op in ops if op.op.startswith("reboot")]
            if workload == "crash-recover":
                assert reboots
            else:
                assert not reboots

    def test_reclaim_churn_drains(self):
        ops = generate_ops("reclaim-churn", 400, 64, seed=1)
        assert any(op.op == "drain" for op in ops)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            generate_ops("nope", 10, 64, seed=0)
        with pytest.raises(ValueError):
            generate_ops("mixed", 0, 64, seed=0)

    def test_value_for_is_deterministic_and_sized(self):
        assert value_for(b"k", 8) == value_for(b"k", 8)
        assert len(value_for(b"bench-000001", 100)) == 100
        assert value_for(b"k", 0) == b""

    def test_default_targets(self):
        assert default_target("mixed") == "node"
        assert default_target("reclaim-churn") == "store"
        assert default_target("crash-recover") == "store"


class TestRunBench:
    def test_artifact_schema(self):
        artifact = run_bench("mixed", ops=150, seed=3)
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["kind"] == "bench"
        assert artifact["workload"] == "mixed"
        assert artifact["target"] == "node"
        for key in (
            "ops",
            "value_size",
            "seed",
            "op_sequence_sha256",
            "op_counts",
            "outcomes",
            "wall_seconds",
            "throughput_ops_per_sec",
            "latency_ns",
            "components_ns",
        ):
            assert key in artifact, key
        overall = artifact["latency_ns"]["all"]
        assert overall["count"] == sum(artifact["op_counts"].values())
        for quantile in ("p50", "p90", "p99", "p999"):
            assert overall[quantile] is not None
        assert artifact["throughput_ops_per_sec"] > 0

    def test_same_seed_reruns_execute_identical_ops(self):
        a = run_bench("mixed", ops=150, seed=3)
        b = run_bench("mixed", ops=150, seed=3)
        assert a["op_sequence_sha256"] == b["op_sequence_sha256"]
        assert a["op_counts"] == b["op_counts"]
        assert a["outcomes"] == b["outcomes"]

    def test_component_breakdown_covers_the_stack(self):
        artifact = run_bench("mixed", ops=300, seed=3)
        components = artifact["components_ns"]
        for component in ("node", "op", "disk", "scheduler"):
            assert component in components, component
        node = components["node"]
        assert node["count"] > 0
        assert node["share_of_wall"] > 0
        assert any(span.startswith("node.") for span in node["spans"])

    def test_crash_recover_runs_on_store_target(self):
        artifact = run_bench("crash-recover", ops=320, seed=5)
        assert artifact["target"] == "store"
        assert "reboot-dirty" in artifact["op_counts"]
        assert "reboot-clean" in artifact["op_counts"]

    def test_reclaim_churn_triggers_reclamation(self):
        artifact = run_bench("reclaim-churn", ops=600, seed=2)
        assert artifact["target"] == "store"
        assert artifact["op_counts"]["delete"] > 0

    def test_slowdown_inflates_latency(self):
        fast = run_bench("put-heavy", ops=120, seed=9)
        slow = run_bench("put-heavy", ops=120, seed=9, slowdown_ns=500_000)
        assert slow["slowdown_ns_per_op"] == 500_000
        assert "slowdown_ns_per_op" not in fast
        # Every measured op gains >=0.5ms, so p50 must climb.
        assert (
            slow["latency_ns"]["all"]["p50"] > fast["latency_ns"]["all"]["p50"]
        )
        assert slow["latency_ns"]["all"]["p50"] >= 500_000

    def test_default_output_name(self):
        assert (
            default_output_name("reclaim-churn", "2026_08_06")
            == "BENCH_reclaim_churn_2026_08_06.json"
        )


def _synthetic_artifact(p50=1000, throughput=5000.0, **overrides):
    artifact = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "workload": "mixed",
        "target": "node",
        "ops": 2000,
        "value_size": 64,
        "seed": 7,
        "op_sequence_sha256": "abc123",
        "throughput_ops_per_sec": throughput,
        "latency_ns": {
            "all": {"p50": p50, "p90": 4 * p50, "p99": 8 * p50, "p999": 8 * p50}
        },
    }
    artifact.update(overrides)
    return artifact


class TestBaselineGate:
    def test_update_then_compare_passes(self):
        baselines = update_baselines(_synthetic_artifact(), empty_baselines())
        report = compare_to_baseline(_synthetic_artifact(), baselines)
        assert report.passed
        assert not report.config_mismatches

    def test_p50_regression_beyond_band_fails(self):
        baselines = update_baselines(
            _synthetic_artifact(p50=1000), empty_baselines()
        )
        ok = compare_to_baseline(
            _synthetic_artifact(p50=1300), baselines
        )  # +30% < 35% band
        assert ok.passed
        bad = compare_to_baseline(_synthetic_artifact(p50=1400), baselines)
        assert not bad.passed
        failing = [entry for entry in bad.entries if not entry.passed]
        assert failing and failing[0].metric == "p50[all]"

    def test_throughput_floor(self):
        baselines = update_baselines(
            _synthetic_artifact(throughput=1350.0), empty_baselines()
        )
        ok = compare_to_baseline(
            _synthetic_artifact(throughput=1001.0), baselines
        )
        assert ok.passed
        bad = compare_to_baseline(
            _synthetic_artifact(throughput=999.0), baselines
        )
        assert not bad.passed

    def test_config_mismatch_fails(self):
        baselines = update_baselines(_synthetic_artifact(), empty_baselines())
        report = compare_to_baseline(
            _synthetic_artifact(seed=8, op_sequence_sha256="def456"), baselines
        )
        assert not report.passed
        assert any("seed" in m for m in report.config_mismatches)
        assert any(
            "op_sequence_sha256" in m for m in report.config_mismatches
        )

    def test_missing_workload_fails(self):
        report = compare_to_baseline(
            _synthetic_artifact(), empty_baselines()
        )
        assert not report.passed
        assert "no baseline" in report.config_mismatches[0]

    def test_tolerance_precedence(self):
        baselines = update_baselines(
            _synthetic_artifact(p50=1000), empty_baselines()
        )
        # Explicit argument wins over the default band.
        wide = compare_to_baseline(
            _synthetic_artifact(p50=1900), baselines, tolerance=1.0
        )
        assert wide.passed
        # Per-entry tolerance wins over default_tolerance.
        baselines["workloads"]["mixed"]["tolerance"] = 1.0
        entry_band = compare_to_baseline(
            _synthetic_artifact(p50=1900), baselines
        )
        assert entry_band.passed
        assert DEFAULT_TOLERANCE == 0.35

    def test_save_load_roundtrip_and_schema_check(self, tmp_path):
        path = str(tmp_path / "baselines.json")
        baselines = update_baselines(_synthetic_artifact(), empty_baselines())
        save_baselines(baselines, path)
        assert load_baselines(path) == baselines
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema_version": 99}, handle)
        with pytest.raises(ValueError):
            load_baselines(path)

    def test_render_report_mentions_verdicts(self):
        baselines = update_baselines(
            _synthetic_artifact(p50=1000), empty_baselines()
        )
        text = render_report(
            compare_to_baseline(_synthetic_artifact(p50=5000), baselines)
        )
        assert "REGRESSION" in text
        assert "FAIL" in text


class TestBaselineGateEdgeCases:
    """The gate's boundary semantics, pinned exactly."""

    def test_tolerance_boundary_exactly_met_passes(self):
        # The band is inclusive: measured == baseline*(1+band) is a pass,
        # one more nanosecond is a regression.
        baselines = update_baselines(
            _synthetic_artifact(p50=1000), empty_baselines()
        )
        limit = 1000 * (1.0 + DEFAULT_TOLERANCE)
        at_limit = compare_to_baseline(
            _synthetic_artifact(p50=int(limit)), baselines
        )
        assert at_limit.passed
        over = compare_to_baseline(
            _synthetic_artifact(p50=int(limit) + 1), baselines
        )
        assert not over.passed

    def test_throughput_floor_exactly_met_passes(self):
        baselines = update_baselines(
            _synthetic_artifact(throughput=1350.0), empty_baselines()
        )
        floor = 1350.0 / (1.0 + DEFAULT_TOLERANCE)
        assert compare_to_baseline(
            _synthetic_artifact(throughput=floor), baselines
        ).passed

    def test_new_workload_missing_from_populated_baselines(self):
        # Baselines that know other workloads still hard-fail a workload
        # they have no entry for -- a new bench must ship its baseline.
        baselines = update_baselines(_synthetic_artifact(), empty_baselines())
        report = compare_to_baseline(
            _synthetic_artifact(workload="put-heavy"), baselines
        )
        assert not report.passed
        assert "no baseline" in report.config_mismatches[0]
        assert "put-heavy" in report.config_mismatches[0]

    def test_update_refuses_to_raise_p50(self):
        baselines = update_baselines(
            _synthetic_artifact(p50=1000), empty_baselines()
        )
        with pytest.raises(BaselineRaiseError, match="p50\\[all\\]"):
            update_baselines(_synthetic_artifact(p50=1001), baselines)
        # The refused update must not have touched the document.
        assert baselines["workloads"]["mixed"]["p50_ns"]["all"] == 1000

    def test_update_refuses_to_lower_throughput(self):
        baselines = update_baselines(
            _synthetic_artifact(throughput=5000.0), empty_baselines()
        )
        with pytest.raises(BaselineRaiseError, match="throughput"):
            update_baselines(
                _synthetic_artifact(throughput=4999.0), baselines
            )

    def test_update_allows_raise_when_explicit(self):
        baselines = update_baselines(
            _synthetic_artifact(p50=1000), empty_baselines()
        )
        update_baselines(
            _synthetic_artifact(p50=2000), baselines, allow_raise=True
        )
        assert baselines["workloads"]["mixed"]["p50_ns"]["all"] == 2000

    def test_update_ratchets_down_silently(self):
        baselines = update_baselines(
            _synthetic_artifact(p50=1000, throughput=5000.0),
            empty_baselines(),
        )
        update_baselines(
            _synthetic_artifact(p50=500, throughput=6000.0), baselines
        )
        entry = baselines["workloads"]["mixed"]
        assert entry["p50_ns"]["all"] == 500
        assert entry["throughput_ops_per_sec"] == 6000.0

    def test_cli_update_refuses_raise_and_leaves_file_intact(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "baselines.json")
        good = update_baselines(
            _synthetic_artifact(p50=1), empty_baselines()
        )
        # Unreachably-good committed numbers: any real rerun would raise.
        good["workloads"]["mixed"].update(
            {
                "throughput_ops_per_sec": 10.0**9,
                "op_sequence_sha256": "ignored-by-update",
            }
        )
        save_baselines(good, path)
        before = open(path, encoding="utf-8").read()
        common = ["bench", "--workload", "mixed", "--ops", "120",
                  "--seed", "7"]
        status = main(common + ["--update-baseline", path])
        assert status == 1
        assert "BASELINE RAISE REFUSED" in capsys.readouterr().out
        assert open(path, encoding="utf-8").read() == before
        # The explicit override adopts the regression and rewrites the file.
        assert main(
            common + ["--update-baseline", path, "--allow-baseline-raise"]
        ) == 0
        after = load_baselines(path)
        assert after["workloads"]["mixed"]["ops"] == 120


class TestBenchCli:
    def test_bench_writes_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        status = main(
            [
                "bench",
                "--workload",
                "mixed",
                "--ops",
                "150",
                "--seed",
                "7",
                "--output",
                out,
            ]
        )
        assert status == 0
        with open(out, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["workload"] == "mixed"
        stdout = capsys.readouterr().out
        assert "p50=" in stdout

    def test_update_then_check_baseline_gate(self, tmp_path, capsys):
        baselines = str(tmp_path / "baselines.json")
        common = ["bench", "--workload", "put-heavy", "--ops", "120",
                  "--seed", "7"]
        assert main(common + ["--update-baseline", baselines]) == 0
        # Back-to-back rerun on the same machine: one-bucket slack (2x)
        # absorbs quantization of the power-of-two latency buckets.
        assert main(
            common + ["--check-baseline", baselines, "--tolerance", "1.0"]
        ) == 0
        # A synthetic 2ms/op slowdown must trip the gate.
        status = main(
            common
            + [
                "--check-baseline",
                baselines,
                "--tolerance",
                "1.0",
                "--slowdown-us",
                "2000",
            ]
        )
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_baseline_missing_file_is_exit_2(self, tmp_path, capsys):
        status = main(
            [
                "bench",
                "--workload",
                "mixed",
                "--ops",
                "120",
                "--seed",
                "7",
                "--check-baseline",
                str(tmp_path / "nope.json"),
            ]
        )
        assert status == 2


@pytest.mark.bench
class TestCommittedBaselines:
    """The CI bench job's gate (excluded from tier-1 via the marker)."""

    def test_committed_baselines_hold(self):
        baselines = load_baselines(BASELINES_PATH)
        base = baselines["workloads"]["mixed"]
        artifact = run_bench(
            "mixed",
            ops=base["ops"],
            value_size=base["value_size"],
            seed=base["seed"],
        )
        # Machine-independent: the op sequence digest must match exactly.
        assert (
            artifact["op_sequence_sha256"] == base["op_sequence_sha256"]
        )
        # Wall-clock gate: generous band because the committed numbers
        # come from different hardware; CI's strict band runs against a
        # baseline regenerated on the same runner (see ci.yml).
        report = compare_to_baseline(artifact, baselines, tolerance=3.0)
        assert report.passed, render_report(report)
