"""Unit tests for the scrubber and the node-level control-plane additions."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    FailureMode,
    Fault,
    FaultSet,
    NotFoundError,
    RetryableError,
    StorageNode,
    StoreConfig,
    StoreSystem,
)


def _system(faults=None):
    return StoreSystem(
        StoreConfig(
            geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
            faults=faults or FaultSet.none(),
        )
    )


class TestScrubber:
    def test_clean_store_scrubs_clean(self):
        store = _system().store
        for i in range(5):
            store.put(b"k%d" % i, bytes([i]) * 140)
        store.flush_index()
        report = store.scrub()
        assert report.clean
        assert report.keys_checked == 5
        assert report.chunks_checked >= 5
        assert report.runs_checked >= 1

    def test_scrub_is_read_only(self):
        system = _system()
        store = system.store
        store.put(b"k", b"v" * 100)
        pending = store.pending_io_count
        store.scrub()
        assert store.pending_io_count == pending
        assert store.get(b"k") == b"v" * 100

    def test_scrub_finds_fault1_truncation(self):
        from repro.shardstore.chunk import frame_size

        store = _system(FaultSet.only(Fault.RECLAIM_OFF_BY_ONE)).store
        overhead = frame_size(b"edge", b"")
        store.put(b"edge", b"E" * (2 * 128 - overhead))
        store.flush_index()
        victim = store.chunk_store.rotate_open()
        store.reclaim(victim)
        report = store.scrub()
        # The evacuated copy is re-encoded with its truncated payload, so
        # the scrub sees consistent (but wrong) data; conformance catches
        # the value change.  Scrub specifically catches fault #2 staleness:
        assert report.keys_checked >= 1

    def test_scrub_finds_stale_cache_corruption(self):
        store = _system(FaultSet.only(Fault.CACHE_NOT_DRAINED_ON_RESET)).store
        for i in range(4):
            store.put(b"key%d" % i, bytes([0x41 + i]) * 200)
        store.flush_index()
        # Warm the cache over the victim extent's pages.
        store.scrub()
        victim = store.chunk_store.rotate_open()
        store.reclaim(victim)
        # Reuse the extent: new chunks land where stale pages linger.
        for i in range(4, 10):
            store.put(b"key%d" % i, bytes([0x41 + i]) * 200)
        store.flush_index()
        report = store.scrub()
        assert not report.clean, "stale cache pages must surface as corruption"

    def test_scrub_tolerates_transient_io_errors(self):
        system = _system()
        store = system.store
        store.put(b"k", b"v" * 200)
        store.flush_index()
        store.drain()
        store.cache.invalidate_all()
        extent = store.index.get(b"k")[0].extent
        system.disk.arm_fault(extent, FailureMode.ONCE, writes=False)
        report = store.scrub()
        assert report.io_errors >= 1
        assert report.clean  # errors are counted, not corruption


class TestScrubRepair:
    """Scrub-and-heal: the recovery half of the section 4.4 contract."""

    def test_clean_store_repair_is_a_noop(self):
        store = _system().store
        store.put(b"k", b"v" * 120)
        store.flush_index()
        report = store.scrub_repair()
        assert report.clean
        assert report.repaired == []
        assert report.quarantined == []
        assert report.run_compactions == 0

    def test_unrecoverable_key_is_quarantined(self):
        """A corrupt chunk with no good copy anywhere becomes a typed
        NotFoundError instead of silent corruption."""
        system = _system()
        store = system.store
        store.put(b"k", b"v" * 200)
        store.flush_index()
        store.drain()
        store.cache.invalidate_all()  # no good copy survives in cache
        locator = store.index.get(b"k")[0]
        system.disk.corrupt(locator.extent, locator.offset + 8)
        report = store.scrub_repair()
        assert report.quarantined == [b"k"]
        assert b"k" in store.quarantined
        with pytest.raises(NotFoundError):
            store.get(b"k")
        # The index no longer references the corrupt chunk.
        assert store.scrub().clean

    def test_corrupt_run_chunk_is_rewritten_by_compaction(self):
        system = _system()
        store = system.store
        for i in range(6):
            store.put(b"r%d" % i, bytes([i]) * 150)
        store.flush_index()
        store.drain()
        run = store.index.run_locators()[0]
        store.cache.invalidate_all()
        system.disk.corrupt(run.extent, run.offset + run.length // 2)
        report = store.scrub_repair()
        assert report.run_compactions == 1
        assert store.scrub().clean
        for i in range(6):
            assert store.get(b"r%d" % i) == bytes([i]) * 150

    def test_fresh_value_supersedes_corrupt_chunk(self):
        """A re-put key routes around its corrupt old chunk entirely."""
        system = _system()
        store = system.store
        store.put(b"k", b"old" * 60)
        store.flush_index()
        store.drain()
        store.cache.invalidate_all()
        locator = store.index.get(b"k")[0]
        system.disk.corrupt(locator.extent, locator.offset + 8)
        store.put(b"k", b"new" * 60)
        report = store.scrub_repair()
        assert report.quarantined == []
        assert store.get(b"k") == b"new" * 60

    def test_node_scrub_repair_all_counts_quarantines(self):
        node = StorageNode(
            num_disks=3,
            config=StoreConfig(
                geometry=DiskGeometry(
                    num_extents=10, extent_size=2048, page_size=128
                )
            ),
        )
        for i in range(6):
            node.put(b"s%d" % i, bytes([0x30 + i]) * 150)
        node.drain()
        victim_key = b"s0"
        disk_id = node.route_of(victim_key)
        store = node.systems[disk_id].store
        store.cache.invalidate_all()
        locator = store.index.get(victim_key)[0]
        node.systems[disk_id].disk.corrupt(locator.extent, locator.offset + 8)
        reports = node.scrub_repair_all()
        assert set(reports) == {0, 1, 2}
        assert reports[disk_id].quarantined == [victim_key]
        assert node.stats.quarantined == 1
        with pytest.raises(NotFoundError):
            node.get(victim_key)


class TestNodeControlPlane:
    def _node(self):
        return StorageNode(
            num_disks=3,
            config=StoreConfig(
                geometry=DiskGeometry(
                    num_extents=10, extent_size=2048, page_size=128
                )
            ),
        )

    def test_migrate_shard_moves_data(self):
        node = self._node()
        node.put(b"shard", b"payload")
        source = node._shard_map[b"shard"]
        target = (source + 1) % 3
        assert node.migrate_shard(b"shard", target)
        assert node._shard_map[b"shard"] == target
        assert node.get(b"shard") == b"payload"
        with pytest.raises(NotFoundError):
            node.systems[source].store.get(b"shard")

    def test_migrate_unknown_shard(self):
        node = self._node()
        assert not node.migrate_shard(b"nope", 0)

    def test_migrate_to_same_disk_is_noop(self):
        node = self._node()
        node.put(b"shard", b"v")
        source = node._shard_map[b"shard"]
        assert node.migrate_shard(b"shard", source)
        assert node.get(b"shard") == b"v"

    def test_migrate_to_removed_disk_rejected(self):
        node = self._node()
        node.put(b"shard", b"v")
        node.remove_disk((node._shard_map[b"shard"] + 1) % 3)
        removed = next(d for d in range(3) if not node.in_service(d))
        with pytest.raises(RetryableError):
            node.migrate_shard(b"shard", removed)

    def test_scrub_all_covers_in_service_disks(self):
        node = self._node()
        for i in range(9):
            node.put(b"s%d" % i, bytes([i]) * 60)
        node.remove_disk(0)
        reports = node.scrub_all()
        assert set(reports) == {1, 2}
        assert all(report.clean for report in reports.values())
