"""Unit tests for the soft-updates IO scheduler."""

import random

import pytest

from repro.shardstore import DiskGeometry, ExtentError, InMemoryDisk, IoError
from repro.shardstore.dependency import Dependency, DurabilityTracker
from repro.shardstore.scheduler import IoScheduler


@pytest.fixture
def system():
    disk = InMemoryDisk(DiskGeometry(num_extents=6, extent_size=1024, page_size=128))
    tracker = DurabilityTracker()
    scheduler = IoScheduler(disk, tracker, random.Random(0))
    return disk, tracker, scheduler


def _root(tracker):
    return Dependency.root(tracker)


class TestAppend:
    def test_append_returns_offset_and_dep(self, system):
        disk, tracker, scheduler = system
        offset, dep = scheduler.append(2, b"hello", _root(tracker))
        assert offset == 0
        assert not dep.is_persistent()
        assert scheduler.soft_pointer(2) == 5

    def test_appends_are_sequential_per_extent(self, system):
        _, tracker, scheduler = system
        off1, _ = scheduler.append(2, b"abc", _root(tracker))
        off2, _ = scheduler.append(2, b"defg", _root(tracker))
        assert (off1, off2) == (0, 3)

    def test_page_splitting(self, system):
        """One logical append spanning pages becomes several records."""
        _, tracker, scheduler = system
        _, dep = scheduler.append(2, b"x" * 300, _root(tracker))
        # 300 bytes from offset 0 with 128-byte pages -> 3 records.
        assert len(dep.record_ids()) == 3

    def test_split_honours_misaligned_start(self, system):
        _, tracker, scheduler = system
        scheduler.append(2, b"x" * 100, _root(tracker))
        _, dep = scheduler.append(2, b"y" * 100, _root(tracker))
        # 100..200 crosses one boundary -> 2 records.
        assert len(dep.record_ids()) == 2

    def test_empty_append_rejected(self, system):
        _, tracker, scheduler = system
        with pytest.raises(ExtentError):
            scheduler.append(2, b"", _root(tracker))

    def test_overrun_rejected(self, system):
        _, tracker, scheduler = system
        with pytest.raises(ExtentError):
            scheduler.append(2, b"x" * 2000, _root(tracker))


class TestWriteback:
    def test_drain_makes_durable(self, system):
        disk, tracker, scheduler = system
        _, dep = scheduler.append(2, b"payload", _root(tracker))
        scheduler.drain()
        assert dep.is_persistent()
        assert disk.read(2, 0, 7) == b"payload"

    def test_dependency_ordering_enforced(self, system):
        disk, tracker, scheduler = system
        _, dep_a = scheduler.append(2, b"first", _root(tracker))
        _, dep_b = scheduler.append(3, b"second", dep_a)
        # Only extent 2's record is eligible until dep_a persists.
        assert scheduler.eligible_extents() == [2]
        assert scheduler.pump_one()
        assert dep_a.is_persistent()
        assert scheduler.eligible_extents() == [3]

    def test_fifo_within_extent(self, system):
        disk, tracker, scheduler = system
        scheduler.append(2, b"a" * 128, _root(tracker))
        scheduler.append(2, b"b" * 128, _root(tracker))
        scheduler.pump(1)
        assert disk.read(2, 0, 128) == b"a" * 128
        assert disk.write_pointer(2) == 128

    def test_pump_respects_budget(self, system):
        _, tracker, scheduler = system
        scheduler.append(2, b"x" * 500, _root(tracker))
        assert scheduler.pump(2) == 2
        assert scheduler.pending_count == 2  # 4 page records total

    def test_torn_append_prefix_persistence(self, system):
        """A crash can persist a prefix of an append's pages (section 5)."""
        disk, tracker, scheduler = system
        _, dep = scheduler.append(2, b"z" * 300, _root(tracker))
        scheduler.pump(1)
        scheduler.drop_pending()
        assert disk.write_pointer(2) == 128  # first page only
        assert not dep.is_persistent()

    def test_drain_raises_on_unsatisfiable_dependency(self, system):
        from repro.shardstore.dependency import FutureCell

        _, tracker, scheduler = system
        cell = FutureCell("never")
        scheduler.append(2, b"stuck", Dependency.on_future(tracker, cell))
        with pytest.raises(IoError):
            scheduler.drain()


class TestReads:
    def test_read_overlays_pending_data(self, system):
        _, tracker, scheduler = system
        scheduler.append(2, b"pending!", _root(tracker))
        assert scheduler.read(2, 0, 8) == b"pending!"

    def test_read_mixes_durable_and_pending(self, system):
        disk, tracker, scheduler = system
        scheduler.append(2, b"a" * 128, _root(tracker))
        scheduler.drain()
        scheduler.append(2, b"b" * 64, _root(tracker))
        assert scheduler.read(2, 100, 60) == b"a" * 28 + b"b" * 32

    def test_read_beyond_soft_pointer_forbidden(self, system):
        _, tracker, scheduler = system
        scheduler.append(2, b"abc", _root(tracker))
        with pytest.raises(ExtentError):
            scheduler.read(2, 0, 4)


class TestReset:
    def test_reset_zeroes_soft_pointer_immediately(self, system):
        _, tracker, scheduler = system
        scheduler.append(2, b"old", _root(tracker))
        scheduler.reset(2, _root(tracker))
        assert scheduler.soft_pointer(2) == 0

    def test_appends_after_reset_restart_at_zero(self, system):
        disk, tracker, scheduler = system
        scheduler.append(2, b"old data", _root(tracker))
        scheduler.reset(2, _root(tracker))
        offset, _ = scheduler.append(2, b"new", _root(tracker))
        assert offset == 0
        scheduler.drain()
        assert disk.read(2, 0, 3) == b"new"
        assert disk.reset_count(2) == 1

    def test_reset_waits_for_dependency(self, system):
        disk, tracker, scheduler = system
        _, dep = scheduler.append(3, b"evacuated copy", _root(tracker))
        scheduler.append(2, b"victim", _root(tracker))
        scheduler.pump(1)  # persist either 2 or 3 first per rng; force both:
        scheduler.drain()
        reset_dep = scheduler.reset(2, dep)
        scheduler.drain()
        assert reset_dep.is_persistent()
        assert disk.write_pointer(2) == 0


class TestCrashAndRecoverySupport:
    def test_drop_pending_discards_queue(self, system):
        disk, tracker, scheduler = system
        scheduler.append(2, b"will be lost", _root(tracker))
        lost = scheduler.drop_pending()
        assert lost == 1
        assert scheduler.pending_count == 0
        assert scheduler.soft_pointer(2) == 0
        assert disk.write_pointer(2) == 0

    def test_sync_soft_pointer_truncates(self, system):
        disk, tracker, scheduler = system
        scheduler.append(2, b"x" * 200, _root(tracker))
        scheduler.drain()
        scheduler.sync_soft_pointer(2, 100)
        assert scheduler.soft_pointer(2) == 100
        assert disk.write_pointer(2) == 100

    def test_settle_extent_clears_pending(self, system):
        _, tracker, scheduler = system
        scheduler.append(2, b"a" * 300, _root(tracker))
        assert scheduler.settle_extent(2)
        assert scheduler.pending_count == 0

    def test_settle_reports_stuck(self, system):
        from repro.shardstore.dependency import FutureCell

        _, tracker, scheduler = system
        cell = FutureCell("never")
        scheduler.append(2, b"stuck", Dependency.on_future(tracker, cell))
        assert not scheduler.settle_extent(2)

    def test_snapshot_restore_roundtrip(self, system):
        disk, tracker, scheduler = system
        scheduler.append(2, b"kept", _root(tracker))
        snap = scheduler.snapshot()
        disk_snap = disk.snapshot()
        tracker_snap = tracker.snapshot()
        scheduler.drain()
        scheduler.append(3, b"extra", _root(tracker))
        scheduler.restore(snap)
        disk.restore(disk_snap)
        tracker.restore(tracker_snap)
        assert scheduler.pending_count == 1
        assert scheduler.read(2, 0, 4) == b"kept"


class TestDeterminism:
    def test_same_seed_same_writeback_order(self):
        def run(seed):
            disk = InMemoryDisk(DiskGeometry(num_extents=6, extent_size=1024, page_size=128))
            tracker = DurabilityTracker()
            scheduler = IoScheduler(disk, tracker, random.Random(seed))
            for extent in (2, 3, 4, 5):
                scheduler.append(extent, bytes([extent]) * 64, Dependency.root(tracker))
            order = []
            while scheduler.pump_one():
                order.append(tracker.durable_count)
            return disk.snapshot()

        assert run(7) == run(7)
