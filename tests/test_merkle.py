"""Unit tests for the Merkle commitment tree and store-level integrity proofs."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    FaultSet,
    NotFoundError,
    StoreConfig,
    StoreSystem,
)
from repro.shardstore.merkle import (
    EMPTY_DIGEST,
    MerkleMap,
    merkle_point,
    numeric_root,
)
from repro.shardstore.observability.journal import digest_bytes


def _system():
    return StoreSystem(
        StoreConfig(
            geometry=DiskGeometry(
                num_extents=10, extent_size=2048, page_size=128
            ),
            faults=FaultSet.none(),
        )
    )


def _corrupt(system, store, key):
    """Flip one on-disk byte under ``key`` and defeat the cache."""
    store.flush_index()
    store.drain()
    store.cache.invalidate_all()
    locators = store.index.get(key)
    assert locators is not None
    system.disk.corrupt(locators[0].extent, locators[0].offset + 8)


class TestMerkleMap:
    def test_empty_root_is_domain_separated_constant(self):
        assert MerkleMap().root() == EMPTY_DIGEST
        assert len(EMPTY_DIGEST) == 16

    def test_root_is_insertion_order_independent(self):
        items = [(b"k-%02d" % i, digest_bytes(b"v%d" % i)) for i in range(40)]
        forward = MerkleMap()
        for key, digest in items:
            forward.set(key, digest)
        backward = MerkleMap()
        for key, digest in reversed(items):
            backward.set(key, digest)
        assert forward.root() == backward.root()
        assert forward.root() != EMPTY_DIGEST

    def test_remove_returns_to_prior_root(self):
        tree = MerkleMap()
        tree.set(b"a", digest_bytes(b"1"))
        root_one = tree.root()
        tree.set(b"b", digest_bytes(b"2"))
        assert tree.root() != root_one
        tree.remove(b"b")
        assert tree.root() == root_one
        tree.remove(b"a")
        assert tree.root() == EMPTY_DIGEST
        # remove is idempotent
        tree.remove(b"a")
        assert tree.root() == EMPTY_DIGEST

    def test_overwrite_changes_root_same_key(self):
        tree = MerkleMap()
        tree.set(b"a", digest_bytes(b"old"))
        old = tree.root()
        tree.set(b"a", digest_bytes(b"new"))
        assert tree.root() != old

    def test_diff_equal_trees_is_one_comparison(self):
        a = MerkleMap.from_items(
            (b"k-%d" % i, digest_bytes(b"v%d" % i)) for i in range(20)
        )
        b = MerkleMap.from_items(
            (b"k-%d" % i, digest_bytes(b"v%d" % i)) for i in range(20)
        )
        buckets, compared = a.diff(b)
        assert buckets == []
        assert compared == 1

    def test_diff_pins_exactly_the_diverging_buckets(self):
        a = MerkleMap()
        b = MerkleMap()
        for i in range(30):
            key = b"k-%d" % i
            a.set(key, digest_bytes(b"v%d" % i))
            b.set(key, digest_bytes(b"v%d" % i))
        changed = [b"k-3", b"k-17"]
        for key in changed:
            b.set(key, digest_bytes(b"stale"))
        buckets, _ = a.diff(b)
        assert sorted(buckets) == sorted(
            {a.bucket_of(key) for key in changed}
        )
        # Every diverging key is recoverable from the bucket items.
        found = []
        for bucket in buckets:
            mine, theirs = a.bucket_items(bucket), b.bucket_items(bucket)
            for key in set(mine) | set(theirs):
                if mine.get(key) != theirs.get(key):
                    found.append(key)
        assert sorted(found) == sorted(changed)

    def test_bucket_of_matches_ring_point_prefix(self):
        tree = MerkleMap(fanout=16, depth=2)
        for key in (b"a", b"k-123", b"\x00\xff"):
            assert tree.bucket_of(key) == merkle_point(key) >> (64 - 8)

    def test_fanout_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MerkleMap(fanout=12)
        with pytest.raises(ValueError):
            MerkleMap(fanout=0)

    def test_numeric_root_fits_prometheus_float(self):
        tree = MerkleMap.from_items([(b"k", digest_bytes(b"v"))])
        value = numeric_root(tree.root())
        assert 0 <= value < 2**48


class TestStoreIntegrityProof:
    def test_clean_store_proves_in_one_comparison(self):
        store = _system().store
        for i in range(8):
            store.put(b"pk-%d" % i, bytes([0x40 + i]) * 150)
        report = store.merkle_scrub()
        assert report.proven
        assert report.compared == 1
        assert report.keys_checked == 8

    def test_corruption_breaks_the_proof_and_pins_the_key(self):
        system = _system()
        store = system.store
        for i in range(8):
            store.put(b"pk-%d" % i, bytes([0x40 + i]) * 150)
        _corrupt(system, store, b"pk-3")
        report = store.merkle_scrub()
        assert not report.proven
        assert report.diverging == [b"pk-3"]
        assert report.compared > 1

    def test_merkle_repair_restores_the_proof(self):
        system = _system()
        store = system.store
        for i in range(8):
            store.put(b"pk-%d" % i, bytes([0x40 + i]) * 150)
        _corrupt(system, store, b"pk-5")
        repair = store.scrub_repair(merkle=True)
        assert repair.merkle is not None and not repair.merkle.proven
        assert repair.proven, "post-repair proof must hold"
        assert b"pk-5" in repair.repaired or b"pk-5" in repair.quarantined
        # Quarantined keys answer typed not-found, never silent corruption.
        for key in repair.quarantined:
            with pytest.raises(NotFoundError):
                store.get(key)

    def test_commitment_survives_clean_reboot(self):
        system = _system()
        store = system.store
        for i in range(6):
            store.put(b"pk-%d" % i, bytes([0x40 + i]) * 150)
        store.flush_index()
        store.drain()
        store = system.clean_reboot()
        report = store.merkle_scrub()
        assert report.proven
        assert report.keys_checked == 6

    def test_recovered_store_rederives_commitment_lazily(self):
        """After a dirty reboot the commitment is re-derived from what
        actually survived -- a pre-crash tree would over-claim."""
        system = _system()
        store = system.store
        for i in range(6):
            store.put(b"pk-%d" % i, bytes([0x40 + i]) * 150)
        store.flush_index()
        store.drain()
        store = system.dirty_reboot()
        report = store.merkle_scrub()
        assert report.proven

    def test_delete_removes_the_commitment_entry(self):
        store = _system().store
        store.put(b"a", b"x" * 120)
        store.put(b"b", b"y" * 120)
        store.delete(b"a")
        report = store.merkle_scrub()
        assert report.proven
        assert report.keys_checked == 1

    def test_merkle_scrub_is_journaled(self):
        from repro.shardstore.observability import Journal

        journal = Journal()
        system = StoreSystem(
            StoreConfig(
                geometry=DiskGeometry(
                    num_extents=10, extent_size=2048, page_size=128
                ),
                faults=FaultSet.none(),
                journal=journal,
            )
        )
        store = system.store
        store.put(b"a", b"x" * 120)
        store.merkle_scrub()
        kinds = [entry.get("kind") for entry in journal.entries]
        assert "merkle_scrub" in kinds
