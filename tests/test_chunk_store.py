"""Unit tests for the chunk store: placement, retrieval, allocation."""

import pytest

from repro.shardstore import (
    CorruptionError,
    DiskGeometry,
    ExtentError,
    FaultSet,
    StoreConfig,
    StoreSystem,
)
from repro.shardstore.chunk import CHUNK_MAGIC, KIND_DATA, KIND_RUN
from repro.shardstore.superblock import OWNER_DATA, OWNER_FREE


def _system(faults=None, **config_kwargs):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults or FaultSet.none(),
        **config_kwargs,
    )
    return StoreSystem(config)


class TestChunkRoundtrip:
    def test_put_get(self):
        store = _system().store
        locator, dep = store.chunk_store.put_chunk(KIND_DATA, b"k", b"payload")
        chunk = store.chunk_store.get_chunk(locator, expected_key=b"k")
        assert chunk.payload == b"payload"
        assert chunk.kind == KIND_DATA

    def test_key_mismatch_is_corruption(self):
        store = _system().store
        locator, _ = store.chunk_store.put_chunk(KIND_DATA, b"k", b"p")
        with pytest.raises(CorruptionError):
            store.chunk_store.get_chunk(locator, expected_key=b"other")

    def test_stale_locator_after_reset(self):
        store = _system().store
        locator, _ = store.chunk_store.put_chunk(KIND_DATA, b"k", b"p" * 500)
        extent = locator.extent
        store.scheduler.reset(extent, _root(store))
        with pytest.raises(CorruptionError):
            store.chunk_store.get_chunk(locator)

    def test_frame_length_mismatch_is_corruption(self):
        from repro.shardstore.chunk import Locator

        store = _system().store
        locator, _ = store.chunk_store.put_chunk(KIND_DATA, b"k", b"p" * 200)
        bad = Locator(locator.extent, locator.offset, locator.length - 3)
        with pytest.raises(CorruptionError):
            store.chunk_store.get_chunk(bad)


def _root(store):
    from repro.shardstore.dependency import Dependency

    return Dependency.root(store.tracker)


class TestShards:
    def test_multi_chunk_shard(self):
        store = _system(max_chunk_payload=100).store
        value = bytes(range(256)) * 2  # 512 bytes -> 6 chunks
        locators, dep = store.chunk_store.put_shard(b"key", value)
        assert len(locators) == 6
        assert store.chunk_store.get_shard(b"key", locators) == value

    def test_empty_shard_is_one_chunk(self):
        store = _system().store
        locators, _ = store.chunk_store.put_shard(b"key", b"")
        assert len(locators) == 1
        assert store.chunk_store.get_shard(b"key", locators) == b""


class TestAllocation:
    def test_open_extent_reused_until_full(self):
        store = _system().store
        loc1, _ = store.chunk_store.put_chunk(KIND_DATA, b"a", b"x" * 100)
        loc2, _ = store.chunk_store.put_chunk(KIND_DATA, b"b", b"y" * 100)
        assert loc1.extent == loc2.extent
        assert loc2.offset > loc1.offset

    def test_new_extent_claimed_when_full(self):
        store = _system().store
        locators = [
            store.chunk_store.put_chunk(KIND_DATA, b"k%d" % i, b"z" * 400)[0]
            for i in range(8)
        ]
        assert len({loc.extent for loc in locators}) >= 2

    def test_ownership_recorded_in_superblock(self):
        store = _system().store
        locator, _ = store.chunk_store.put_chunk(KIND_DATA, b"k", b"p")
        assert store.superblock.owner_of(locator.extent) == OWNER_DATA

    def test_reserve_blocks_normal_writes(self):
        """Normal allocation stops with two free extents in reserve."""
        store = _system().store
        with pytest.raises(ExtentError):
            for i in range(100):
                # Disable GC to observe the raw reserve behaviour.
                store.chunk_store.on_out_of_space = None
                store.chunk_store.put_chunk(KIND_DATA, b"k%d" % i, b"f" * 900)
        free = [
            e
            for e in store.config.data_extents
            if store.superblock.owner_of(e) == OWNER_FREE
        ]
        assert len(free) == 2

    def test_priority_writes_use_reserve(self):
        store = _system().store
        store.chunk_store.on_out_of_space = None
        with pytest.raises(ExtentError):
            for i in range(100):
                store.chunk_store.put_chunk(KIND_DATA, b"k%d" % i, b"f" * 900)
        # A priority write still succeeds (dips into the reserve).
        locator, _ = store.chunk_store.put_chunk(
            KIND_RUN, b"run", b"r" * 100, priority=True
        )
        assert locator is not None

    def test_gc_under_pressure_reclaims(self):
        store = _system(max_chunk_payload=256).store
        # Fill with garbage: repeatedly overwrite the same keys.
        for round_ in range(12):
            for i in range(3):
                store.put(b"key%d" % i, bytes([round_]) * 500)
        # The store survived by reclaiming; all keys still correct.
        for i in range(3):
            assert store.get(b"key%d" % i) == bytes([11]) * 500


class TestPinning:
    def test_begin_reclaim_claims_once(self):
        store = _system().store
        locator, _ = store.chunk_store.put_chunk(KIND_DATA, b"k", b"p" * 300)
        store.chunk_store.rotate_open()
        assert store.chunk_store.begin_reclaim(locator.extent)
        assert not store.chunk_store.begin_reclaim(locator.extent)
        store.chunk_store.end_reclaim(locator.extent)
        assert store.chunk_store.begin_reclaim(locator.extent)

    def test_open_extent_not_reclaimable(self):
        store = _system().store
        locator, _ = store.chunk_store.put_chunk(KIND_DATA, b"k", b"p")
        assert not store.chunk_store.begin_reclaim(locator.extent)

    def test_pinned_extent_not_reclaimable(self):
        store = _system().store
        locator, _ = store.chunk_store.put_chunk(
            KIND_RUN, b"r", b"p" * 100, pin=True
        )
        store.chunk_store.rotate_open()
        assert not store.chunk_store.begin_reclaim(locator.extent)
        store.chunk_store.unpin_extent(locator.extent)
        assert store.chunk_store.begin_reclaim(locator.extent)

    def test_free_extent_not_reclaimable(self):
        store = _system().store
        free = [
            e
            for e in store.config.data_extents
            if store.superblock.owner_of(e) == OWNER_FREE
        ]
        assert not store.chunk_store.begin_reclaim(free[0])


class TestUuidBias:
    def test_bias_produces_magic_tails(self):
        store = _system(uuid_magic_bias=1.0).store
        uuid = store.chunk_store._fresh_uuid()
        assert uuid[14:16] == CHUNK_MAGIC

    def test_no_bias_rarely_collides(self):
        store = _system(uuid_magic_bias=0.0).store
        collisions = sum(
            store.chunk_store._fresh_uuid()[14:16] == CHUNK_MAGIC
            for _ in range(200)
        )
        assert collisions == 0
