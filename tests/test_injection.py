"""Tests for the failure-injection campaign phase (section 4.4).

The plan side (:mod:`repro.shardstore.injection`) must be a pure seeded
function; the checker side (:mod:`repro.campaign.injection`) must pass
under every storm profile with the self-healing machinery on, inject a
nonzero number of faults while doing so, and -- the negative control --
FAIL under a permanent-fault plan when the circuit breaker is disabled.
"""

import pytest

from repro.campaign import build_shards, run_campaign, smoke_spec
from repro.campaign.injection import run_shard
from repro.campaign.spec import KIND_INJECTION, ShardSpec
from repro.shardstore import FaultInjector, FaultPlan
from repro.shardstore.injection import (
    FAULT_HEAL,
    FAULT_PERMANENT_DISK,
    NODE_PROFILES,
    STORE_PROFILES,
)

pytestmark = pytest.mark.campaign

_EXTENTS = range(4, 12)


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        first = FaultPlan.generate(7, ops=40, extents=_EXTENTS)
        second = FaultPlan.generate(7, ops=40, extents=_EXTENTS)
        assert first == second

    def test_different_seeds_differ(self):
        plans = {
            FaultPlan.generate(seed, ops=40, extents=_EXTENTS).faults
            for seed in range(8)
        }
        assert len(plans) > 1

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown store profile"):
            FaultPlan.generate(0, ops=10, extents=_EXTENTS, profile="nope")
        with pytest.raises(ValueError, match="unknown node profile"):
            FaultPlan.generate(
                0, ops=10, extents=_EXTENTS, profile="corruption", num_disks=3
            )

    def test_needs_ops_and_extents(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, ops=0, extents=_EXTENTS)
        with pytest.raises(ValueError):
            FaultPlan.generate(0, ops=10, extents=())

    def test_store_plan_targets_single_disk(self):
        for profile in STORE_PROFILES:
            plan = FaultPlan.generate(
                3, ops=40, extents=_EXTENTS, profile=profile
            )
            assert all(fault.disk == 0 for fault in plan.faults)
            assert all(fault.extent in _EXTENTS for fault in plan.faults)

    def test_node_permanent_profile_schedules_one_dying_disk(self):
        for seed in range(10):
            plan = FaultPlan.generate(
                seed,
                ops=40,
                extents=_EXTENTS,
                profile="permanent",
                num_disks=3,
            )
            dying = [
                f for f in plan.faults if f.kind == FAULT_PERMANENT_DISK
            ]
            assert len(dying) == 1
            # Disk 0 always survives so the node keeps a write target.
            assert dying[0].disk in (1, 2)
            assert 1 <= dying[0].op_index < 20
            assert not any(f.kind == FAULT_HEAL for f in plan.faults)
            assert plan.has_permanent

    def test_mixed_node_heal_clears_has_permanent(self):
        healed = [
            plan
            for plan in (
                FaultPlan.generate(
                    seed,
                    ops=40,
                    extents=_EXTENTS,
                    profile="mixed",
                    num_disks=3,
                )
                for seed in range(30)
            )
            if any(f.kind == FAULT_HEAL for f in plan.faults)
        ]
        assert healed, "30 seeds must yield at least one healed plan"
        for plan in healed:
            assert not plan.has_permanent

    def test_counts_sum_to_fault_total(self):
        plan = FaultPlan.generate(
            5, ops=64, extents=_EXTENTS, profile="mixed"
        )
        assert sum(plan.counts().values()) == len(plan.faults)
        assert plan.to_json()["counts"] == plan.counts()

    def test_fault_count_override(self):
        plan = FaultPlan.generate(
            1, ops=40, extents=_EXTENTS, fault_count=9
        )
        assert len(plan.faults) == 9


class TestFaultInjector:
    def test_delivers_each_fault_once_in_order(self):
        plan = FaultPlan.generate(2, ops=40, extents=_EXTENTS, fault_count=6)
        injector = FaultInjector(plan)
        seen = []
        for op_index in range(plan.ops):
            for fault in injector.due(op_index):
                assert fault.op_index <= op_index
                seen.append(fault)
        assert tuple(seen) == plan.faults
        assert injector.exhausted
        assert injector.delivered == len(plan.faults)
        assert injector.due(plan.ops) == []


def _shard(seed, **params):
    defaults = dict(sequences=2, ops=40, trace=False)
    defaults.update(params)
    return ShardSpec.make(0, KIND_INJECTION, seed, **defaults)


class TestInjectionShards:
    @pytest.mark.parametrize("profile", sorted(STORE_PROFILES))
    def test_store_profiles_pass_and_fire(self, profile):
        result = run_shard(_shard(0, harness="store", profile=profile))
        assert result.ok, result.failures
        assert result.injection["fired"] > 0
        assert result.injection["planned"] >= result.injection["armed"]

    @pytest.mark.parametrize("profile", sorted(NODE_PROFILES))
    def test_node_profiles_pass_with_breaker(self, profile):
        result = run_shard(_shard(0, harness="node", profile=profile))
        assert result.ok, result.failures
        assert result.injection["fired"] > 0

    def test_node_permanent_exercises_self_healing(self):
        result = run_shard(
            _shard(30_000, harness="node", profile="permanent", sequences=2)
        )
        assert result.ok, result.failures
        assert result.injection["breaker_trips"] >= 1
        assert result.injection["demotions"] >= 1

    def test_breaker_disabled_fails_permanent_plan(self):
        """The negative control: self-healing must be load-bearing.

        Seed 30000 is the node/permanent shard of the seed-0 smoke
        campaign; with the breaker off, settlement can never shed the
        dying disk and the shard must fail.
        """
        result = run_shard(
            _shard(
                30_000,
                harness="node",
                profile="permanent",
                sequences=2,
                breaker_enabled=False,
            )
        )
        assert not result.ok
        assert result.injection["breaker_trips"] == 0
        assert "injection:permanent" == result.failures[0].fault

    def test_shard_replays_byte_identically(self):
        spec = _shard(17, harness="node", profile="mixed")
        assert run_shard(spec) == run_shard(spec)

    def test_traced_shard_records_fault_events(self):
        result = run_shard(
            _shard(0, harness="store", profile="transient", trace=True)
        )
        assert result.ok, result.failures
        assert result.metrics is not None


class TestInjectionSuite:
    def test_suite_injection_compiles_only_injection_shards(self):
        shards = build_shards(smoke_spec(suite="injection"))
        assert shards, "the injection suite must not be empty"
        assert all(s.kind == KIND_INJECTION for s in shards)
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_full_suite_appends_injection_after_fault_matrix(self):
        shards = build_shards(smoke_spec())
        kinds = [s.kind for s in shards]
        assert KIND_INJECTION in kinds
        first = kinds.index(KIND_INJECTION)
        assert all(kind == KIND_INJECTION for kind in kinds[first:])

    def test_breaker_flag_reaches_every_injection_shard(self):
        shards = build_shards(smoke_spec(breaker_enabled=False))
        injection = [s for s in shards if s.kind == KIND_INJECTION]
        assert injection
        assert all(s.param("breaker_enabled") is False for s in injection)

    def test_injection_campaign_artifact_section(self):
        outcome = run_campaign(
            smoke_spec(suite="injection", workers=1, base_seed=0)
        )
        artifact = outcome.to_json()
        assert artifact["passed"]
        section = artifact["injection"]
        assert len(section["shards"]) == len(outcome.results)
        assert section["totals"]["fired"] > 0
        # A planned permanent-disk fault arms one fault per data extent,
        # so "armed" may exceed "planned"; both must be live.
        assert section["totals"]["armed"] > 0
        for block in section["shards"]:
            assert block["harness"] in ("store", "node")
            assert block["profile"]
            assert block["ok"]

    def test_no_breaker_injection_campaign_fails(self):
        """The campaign-level negative control pinned to base seed 0."""
        outcome = run_campaign(
            smoke_spec(
                suite="injection",
                workers=1,
                base_seed=0,
                breaker_enabled=False,
            )
        )
        assert not outcome.passed
        artifact = outcome.to_json()
        assert artifact["totals"]["failures"] >= 1
        assert any(
            f["fault"] == "injection:permanent"
            for f in artifact["failures"]
        )
