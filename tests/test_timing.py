"""Tests for wall-clock timing: TimingRecorder, percentile math, hot path.

The percentile cases are hand-computed against the power-of-two bucket
bounds so the math (ceil rank, upper-bound answer, min/max clamping) is
pinned to values a human can re-derive.  The hot-path test is the
regression guard for satellite (b): with recording disabled, a 10k-op
loop must never invoke the recorder at all.
"""

import pytest

from repro.shardstore import (
    DiskGeometry,
    NullRecorder,
    RingRecorder,
    StoreConfig,
    StoreSystem,
    TimingRecorder,
)
from repro.shardstore.observability import (
    HISTOGRAM_BOUNDS,
    LATENCY_BOUNDS_NS,
    Histogram,
    component_of_latency,
    merge_histogram_snapshots,
    percentile_from_snapshot,
    percentiles_from_snapshot,
)
from repro.shardstore.observability.recorder import NULL_SPAN


def _snapshot_of(values, bounds=HISTOGRAM_BOUNDS):
    histogram = Histogram(bounds=bounds)
    for value in values:
        histogram.observe(value)
    return histogram.snapshot()


class TestPercentileHandComputed:
    def test_one_through_ten(self):
        # Buckets: 1->{1}, 2->{2}, 4->{3,4}, 8->{5..8}, 16->{9,10}.
        snap = _snapshot_of(range(1, 11))
        assert percentile_from_snapshot(snap, 0.50) == 8  # rank 5 -> bucket 8
        assert percentile_from_snapshot(snap, 0.90) == 10  # rank 9 -> 16, clamp
        assert percentile_from_snapshot(snap, 0.99) == 10  # rank 10
        assert percentiles_from_snapshot(snap) == {
            "p50": 8,
            "p90": 10,
            "p99": 10,
            "p999": 10,
        }

    def test_exact_bucket_boundaries(self):
        snap = _snapshot_of([1, 2, 4])
        assert percentile_from_snapshot(snap, 0.50) == 2  # rank 2 -> bucket 2

    def test_single_observation_clamps_to_value(self):
        # 7 lands in bucket 8; the answer clamps to the observed max.
        snap = _snapshot_of([7])
        assert percentiles_from_snapshot(snap) == {
            "p50": 7,
            "p90": 7,
            "p99": 7,
            "p999": 7,
        }

    def test_clamps_to_min(self):
        # All 5s land in bucket 8; min clamp keeps the answer honest.
        snap = _snapshot_of([5, 5, 5])
        assert percentile_from_snapshot(snap, 0.50) == 5

    def test_inf_bucket_reports_max(self):
        snap = _snapshot_of([20000, 30000])  # beyond the last default bound
        assert snap["buckets"] == {"inf": 2}
        assert percentile_from_snapshot(snap, 0.50) == 30000

    def test_empty_histogram_is_none(self):
        snap = _snapshot_of([])
        assert percentile_from_snapshot(snap, 0.50) is None
        assert percentiles_from_snapshot(snap) == {
            "p50": None,
            "p90": None,
            "p99": None,
            "p999": None,
        }
        assert percentile_from_snapshot({}, 0.5) is None

    def test_quantile_domain_checked(self):
        snap = _snapshot_of([1])
        with pytest.raises(ValueError):
            percentile_from_snapshot(snap, 0.0)
        with pytest.raises(ValueError):
            percentile_from_snapshot(snap, 1.5)

    def test_float_rank_has_no_precision_drift(self):
        # ceil(0.1 * 10) must be exactly 1, not 2 via 1.0000000000000002.
        snap = _snapshot_of(range(1, 11))
        assert percentile_from_snapshot(snap, 0.1) == 1


class TestMergeHistogramSnapshots:
    def test_empty_iterable_yields_zero_snapshot(self):
        assert merge_histogram_snapshots([]) == {
            "count": 0,
            "total": 0,
            "min": 0,
            "max": 0,
            "buckets": {},
        }

    def test_empty_parts_are_identity(self):
        a = _snapshot_of([1, 2, 3])
        zero = _snapshot_of([])
        assert merge_histogram_snapshots([zero, a, zero]) == a

    def test_merge_equals_combined_observation(self):
        a = _snapshot_of([1, 2, 3])
        b = _snapshot_of([100, 200])
        combined = _snapshot_of([1, 2, 3, 100, 200])
        assert merge_histogram_snapshots([a, b]) == combined

    def test_associative_and_commutative(self):
        a = _snapshot_of([1, 2, 3])
        b = _snapshot_of([100, 200])
        c = _snapshot_of([5])
        left = merge_histogram_snapshots(
            [merge_histogram_snapshots([a, b]), c]
        )
        right = merge_histogram_snapshots(
            [a, merge_histogram_snapshots([b, c])]
        )
        flat = merge_histogram_snapshots([a, b, c])
        assert left == right == flat
        assert merge_histogram_snapshots([b, a]) == merge_histogram_snapshots(
            [a, b]
        )

    def test_merge_does_not_mutate_inputs(self):
        a = _snapshot_of([1, 2, 3])
        b = _snapshot_of([2, 4])
        before = {key: dict(a[key]) if key == "buckets" else a[key] for key in a}
        merge_histogram_snapshots([a, b])
        assert a == before

    def test_latency_bounds_merge(self):
        a = _snapshot_of([1500, 3000], bounds=LATENCY_BOUNDS_NS)
        b = _snapshot_of([1_000_000], bounds=LATENCY_BOUNDS_NS)
        merged = merge_histogram_snapshots([a, b])
        assert merged["count"] == 3
        assert merged["min"] == 1500
        assert merged["max"] == 1_000_000


class TestComponentOfLatency:
    @pytest.mark.parametrize(
        "name,component",
        [
            ("put", "op"),
            ("flush", "op"),
            ("bench.put", "bench"),
            ("node.get", "node"),
            ("disk.write", "disk"),
            ("lsm.flush", "lsm"),
            ("cache.fill", "cache"),
            ("scheduler.pump_one", "scheduler"),
            ("reclaim", "reclaim"),
            ("scrub", "scrub"),
        ],
    )
    def test_prefix_grouping(self, name, component):
        assert component_of_latency(name) == component


class TestTimingRecorder:
    def test_timed_section_records_latency_without_ring_events(self):
        recorder = TimingRecorder()
        with recorder.timed("disk.write"):
            pass
        assert recorder.trace() == []
        snap = recorder.latency_snapshot()
        assert list(snap) == ["disk.write"]
        assert snap["disk.write"]["count"] == 1
        assert snap["disk.write"]["p50"] is not None

    def test_span_records_ring_entry_and_latency(self):
        recorder = TimingRecorder()
        with recorder.span("put", key="b'k'"):
            pass
        types = [entry["type"] for entry in recorder.trace()]
        assert types == ["span", "end"]
        assert recorder.latency_snapshot()["put"]["count"] == 1

    def test_failed_span_marks_ring_entry(self):
        recorder = TimingRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("put"):
                raise RuntimeError("boom")
        assert recorder.trace()[-1].get("failed") is True
        assert recorder.latency_snapshot()["put"]["count"] == 1

    def test_snapshot_stays_wall_clock_free(self):
        # The campaign determinism contract: latency never reaches the
        # artifact-facing snapshot, which keeps RingRecorder's exact shape.
        recorder = TimingRecorder()
        with recorder.timed("disk.write"):
            pass
        with recorder.span("put"):
            pass
        snap = recorder.snapshot()
        assert set(snap) == set(RingRecorder().snapshot())
        assert "latency" not in str(sorted(snap))

    def test_latency_snapshot_sorted_and_uses_latency_bounds(self):
        recorder = TimingRecorder()
        recorder.observe_latency("zzz", 10)
        recorder.observe_latency("aaa", 5000)
        assert list(recorder.latency_snapshot()) == ["aaa", "zzz"]
        assert recorder.latency["aaa"].bounds == LATENCY_BOUNDS_NS

    def test_timing_flags(self):
        assert TimingRecorder().timing is True
        assert RingRecorder().timing is False
        assert NullRecorder().timing is False

    def test_base_recorder_timed_is_the_null_span(self):
        assert RingRecorder().timed("disk.write") is NULL_SPAN
        assert NullRecorder().timed("disk.write") is NULL_SPAN


class _SpyRecorder(NullRecorder):
    """Counts every recorder invocation; guarded hot paths must make none."""

    def __init__(self):
        self.calls = []

    def span(self, name, **fields):
        self.calls.append(("span", name))
        return NULL_SPAN

    def timed(self, name):
        self.calls.append(("timed", name))
        return NULL_SPAN

    def count(self, name, amount=1):
        self.calls.append(("count", name))

    def gauge(self, name, value):
        self.calls.append(("gauge", name))

    def observe(self, name, value):
        self.calls.append(("observe", name))

    def event(self, name, **fields):
        self.calls.append(("event", name))

    def fault_event(self, fault, component, detail=""):
        self.calls.append(("fault_event", component))


class TestHotPathOverhead:
    def test_disabled_recorder_sees_zero_calls_over_10k_ops(self):
        """Satellite (b): with recording off, the request path -- puts,
        gets, deletes, flushes, scheduler pumps, and any reclamation they
        trigger -- must not touch the recorder at all."""
        spy = _SpyRecorder()
        config = StoreConfig(
            geometry=DiskGeometry(
                num_extents=48, extent_size=32768, page_size=512
            ),
            max_chunk_payload=4096,
            memtable_flush_threshold=64,
            buffer_cache_pages=64,
            recorder=spy,
        )
        store = StoreSystem(config).store
        spy.calls.clear()  # setup may legitimately log; the loop may not

        keys = [b"hot-%03d" % index for index in range(32)]
        for key in keys:
            store.put(key, b"v" * 64)
        for index in range(10_000):
            key = keys[index % len(keys)]
            kind = index % 4
            if kind in (0, 1):
                store.put(key, b"v" * 64)
            elif kind == 2:
                store.get(key)
            else:
                store.contains(key)
            if index % 256 == 0:
                store.flush()
        store.flush()
        store.drain()

        assert spy.calls == []
