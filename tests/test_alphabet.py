"""Unit tests for operation alphabets, generation, and biasing."""

import random

import pytest

from repro.core.alphabet import (
    Alphabet,
    BiasConfig,
    GenContext,
    Operation,
    OpSpec,
    crash_alphabet,
    failure_alphabet,
    gen_key,
    gen_value_len,
    node_alphabet,
    store_alphabet,
)


class TestGeneration:
    def test_deterministic_for_seed(self):
        alphabet = store_alphabet()
        a = alphabet.generate_sequence(random.Random(5), 40, BiasConfig())
        b = alphabet.generate_sequence(random.Random(5), 40, BiasConfig())
        assert a == b

    def test_different_seeds_differ(self):
        alphabet = store_alphabet()
        a = alphabet.generate_sequence(random.Random(1), 40, BiasConfig())
        b = alphabet.generate_sequence(random.Random(2), 40, BiasConfig())
        assert a != b

    def test_length_respected(self):
        ops = store_alphabet().generate_sequence(random.Random(0), 25, BiasConfig())
        assert len(ops) == 25

    def test_all_ops_from_alphabet(self):
        alphabet = crash_alphabet()
        names = set(alphabet.names())
        ops = alphabet.generate_sequence(random.Random(3), 200, BiasConfig())
        assert {op.name for op in ops} <= names

    def test_weights_bias_distribution(self):
        alphabet = store_alphabet()
        ops = alphabet.generate_sequence(random.Random(0), 2000, BiasConfig())
        counts = {}
        for op in ops:
            counts[op.name] = counts.get(op.name, 0) + 1
        assert counts["Get"] > counts["Reboot"]
        assert counts["Put"] > counts["Compact"]


class TestAlphabets:
    def test_store_alphabet_is_fig3_shaped(self):
        names = store_alphabet().names()
        # API operations first, background operations after (section 4.3's
        # increasing-complexity ordering for minimization).
        assert names.index("Get") < names.index("Reclaim")
        assert names.index("Put") < names.index("Reboot")

    def test_crash_alphabet_extends_store(self):
        assert set(store_alphabet().names()) < set(crash_alphabet().names())
        assert "DirtyReboot" in crash_alphabet().names()

    def test_failure_alphabet_has_injection_ops(self):
        names = failure_alphabet().names()
        assert "FailDiskOnce" in names and "ClearFaults" in names

    def test_node_alphabet_has_control_plane(self):
        names = node_alphabet().names()
        for op in ("ListShards", "RemoveDisk", "ReturnDisk", "BulkCreate"):
            assert op in names

    def test_variant_rank(self):
        alphabet = store_alphabet()
        assert alphabet.variant_rank("Get") == 0
        with pytest.raises(KeyError):
            alphabet.variant_rank("Nope")

    def test_duplicate_names_rejected(self):
        spec = OpSpec("X", 1.0, lambda ctx, bias: ())
        with pytest.raises(ValueError):
            Alphabet([spec, spec])

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            Alphabet([])


class TestBias:
    def test_key_reuse_bias(self):
        ctx = GenContext(rng=random.Random(0))
        ctx.note_key(b"known")
        bias = BiasConfig(reuse_key=1.0)
        assert all(gen_key(ctx, bias) == b"known" for _ in range(20))

    def test_no_reuse_without_bias(self):
        ctx = GenContext(rng=random.Random(0))
        ctx.note_key(b"known")
        bias = BiasConfig(reuse_key=0.0, key_space=1 << 16)
        keys = {gen_key(ctx, bias) for _ in range(50)}
        assert b"known" not in keys or len(keys) > 40

    def test_page_boundary_bias(self):
        ctx = GenContext(rng=random.Random(0), page_size=128)
        bias = BiasConfig(page_boundary_size=1.0)
        sizes = [gen_value_len(ctx, bias) for _ in range(100)]
        assert all(min(abs(s - m * 128) for m in (1, 2, 3)) <= 2 for s in sizes)

    def test_unbiased_uniform_sizes(self):
        ctx = GenContext(rng=random.Random(0), page_size=128)
        sizes = [gen_value_len(ctx, BiasConfig.unbiased()) for _ in range(300)]
        near = sum(1 for s in sizes if min(abs(s - m * 128) for m in (1, 2, 3)) <= 2)
        assert near < 30  # boundary sizes are rare without bias

    def test_generation_notes_keys_for_reuse(self):
        alphabet = store_alphabet()
        rng = random.Random(1)
        ops = alphabet.generate_sequence(rng, 100, BiasConfig(reuse_key=0.9))
        keyed = [op.args[0] for op in ops if op.name in ("Get", "Put", "Delete")]
        assert len(set(keyed)) < len(keyed), "reuse should repeat keys"


class TestOperation:
    def test_str_rendering(self):
        op = Operation("Put", (b"k", b"v"))
        assert str(op) == "Put(b'k', b'v')"

    def test_equality_and_hash(self):
        assert Operation("Get", (b"k",)) == Operation("Get", (b"k",))
        assert hash(Operation("Get", (b"k",))) == hash(Operation("Get", (b"k",)))
