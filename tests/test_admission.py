"""Tests for the deadline-aware request plane (brownout/overload tolerance).

Unit coverage for the op-clocked admission primitives (integer latency
EWMA, virtual admission queue, retry token bucket) plus end-to-end
StorageNode behaviour: typed sheds, hedged reads, the SLOW breaker trip,
and the error contract -- node-API entry points only ever raise documented
:class:`ShardStoreError` subclasses, and a shed request provably leaves
the store unchanged.
"""

import random

import pytest

from repro.shardstore import (
    DiskGeometry,
    FailureMode,
    IoError,
    StorageNode,
    StoreConfig,
)
from repro.shardstore.config import FIRST_DATA_EXTENT
from repro.shardstore.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    RetryableError,
    ShardStoreError,
)
from repro.shardstore.resilience import (
    AdmissionConfig,
    BreakerConfig,
    BreakerState,
    DiskAdmission,
    LatencyEwma,
    RetryBudget,
    RetryPolicy,
)


class TestLatencyEwma:
    def test_integer_trajectory_is_exact(self):
        """Pure floor-division arithmetic: the trajectory is auditable."""
        ewma = LatencyEwma(alpha_num=1, alpha_den=4, initial_milli=1000)
        assert ewma.update(5000) == 2000  # 1000 + 4000//4
        assert ewma.update(5000) == 2750  # 2000 + 3000//4
        assert ewma.update(1000) == 2312  # 2750 + (-1750)//4 = 2750 - 438
        assert ewma.samples == 3

    def test_value_is_milli_over_1000(self):
        ewma = LatencyEwma(initial_milli=2500)
        assert ewma.value == 2.5

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            LatencyEwma(alpha_num=0)
        with pytest.raises(ValueError):
            LatencyEwma(alpha_num=5, alpha_den=4)


class TestDiskAdmission:
    CONFIG = AdmissionConfig(deadline_units=32, max_backlog_units=64)

    def test_idle_queue_admits_at_zero_backlog(self):
        queue = DiskAdmission(self.CONFIG)
        assert queue.admit(now=0, deadline=32) == 0
        assert queue.admitted == 1

    def test_backlog_is_busy_beyond_now_plus_pending(self):
        queue = DiskAdmission(self.CONFIG)
        queue.complete(now=0, busy_delta=10, io_delta=2)
        assert queue.backlog_units(now=0) == 10
        assert queue.backlog_units(now=4, pending_cost=3) == 9
        assert queue.backlog_units(now=100) == 0  # clock passed busy_until

    def test_overload_shed_at_queue_bound(self):
        queue = DiskAdmission(self.CONFIG)
        queue.complete(now=0, busy_delta=64, io_delta=1)
        with pytest.raises(OverloadedError):
            queue.admit(now=0, deadline=1000)
        assert queue.shed_overload == 1
        assert queue.admitted == 0  # shed strictly before admission

    def test_deadline_shed_when_wait_overruns(self):
        queue = DiskAdmission(self.CONFIG)
        queue.complete(now=0, busy_delta=40, io_delta=1)
        with pytest.raises(DeadlineExceededError):
            queue.admit(now=0, deadline=32)
        assert queue.shed_deadline == 1

    def test_no_shedding_config_admits_everything(self):
        queue = DiskAdmission(
            AdmissionConfig.no_shedding(
                deadline_units=32, max_backlog_units=64
            )
        )
        queue.complete(now=0, busy_delta=500, io_delta=1)
        assert queue.admit(now=0, deadline=32) == 500
        assert queue.shed_overload == queue.shed_deadline == 0

    def test_slow_streak_trips_after_consecutive_slow_completions(self):
        config = AdmissionConfig(
            slow_threshold_milli=4000, slow_trip_requests=3
        )
        queue = DiskAdmission(config)
        trips = [
            queue.complete(now=0, busy_delta=8, io_delta=1)
            for _ in range(4)
        ]
        # EWMA (alpha 1/4 from 1000) crosses 4000 on the 3rd 8000-milli
        # sample; the streak then needs 3 consecutive slow completions.
        assert trips.count(True) >= 1
        assert queue.slow_streak >= config.slow_trip_requests

    def test_fast_completion_resets_slow_streak(self):
        queue = DiskAdmission(AdmissionConfig(slow_threshold_milli=2000))
        queue.complete(now=0, busy_delta=100, io_delta=1)
        assert queue.slow_streak == 1
        big = DiskAdmission(AdmissionConfig(slow_threshold_milli=200000))
        big.complete(now=0, busy_delta=100, io_delta=1)
        assert big.slow_streak == 0

    def test_background_charge_override_spares_the_queue(self):
        """charge_units discounts the queue but never the EWMA."""
        queue = DiskAdmission(self.CONFIG)
        queue.complete(now=0, busy_delta=80, io_delta=1, charge_units=10)
        assert queue.busy_until == 10
        assert queue.ewma.milli > 1000  # full 80000-milli sample folded in

    def test_reset_forgets_queue_and_latency_history(self):
        queue = DiskAdmission(self.CONFIG)
        queue.complete(now=0, busy_delta=500, io_delta=1)
        queue.reset(now=7)
        assert queue.busy_until == 7
        assert queue.ewma.samples == 0
        assert queue.slow_streak == 0


class TestRetryBudget:
    def test_starts_full_and_spends_to_empty(self):
        budget = RetryBudget(capacity=2, refill_units=16)
        assert budget.acquire(0) and budget.acquire(0)
        assert not budget.acquire(0)
        assert budget.spent == 2
        assert budget.denied == 1

    def test_refills_one_token_per_refill_units(self):
        budget = RetryBudget(capacity=2, refill_units=16)
        budget.acquire(0), budget.acquire(0)
        assert not budget.acquire(15)
        assert budget.acquire(16)  # one token refilled
        assert not budget.acquire(17)

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(capacity=3, refill_units=4)
        budget.acquire(0)
        assert budget.acquire(1000)
        assert budget.tokens == 2  # capped at 3, then spent 1

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=-1, refill_units=4)
        with pytest.raises(ValueError):
            RetryBudget(capacity=4, refill_units=0)


class TestAdmissionConfig:
    def test_no_shedding_keeps_accounting_only(self):
        config = AdmissionConfig.no_shedding(deadline_units=96)
        assert not config.shedding
        assert not config.hedge_reads
        assert config.deadline_units == 96

    def test_default_is_shedding_with_hedges(self):
        config = AdmissionConfig()
        assert config.shedding and config.hedge_reads


def _node(admission=None, breaker=None, num_disks=3):
    return StorageNode(
        num_disks=num_disks,
        config=StoreConfig(
            geometry=DiskGeometry(
                num_extents=10, extent_size=2048, page_size=128
            )
        ),
        retry_policy=RetryPolicy(),
        breaker=breaker or BreakerConfig(),
        admission=admission,
    )


#: Storm-scale limits: small enough that a held clock or a slowed disk
#: sheds within a test-sized op sequence.
STORM = AdmissionConfig(deadline_units=64, max_backlog_units=128)


class TestNodeAdmission:
    def test_healthy_traffic_never_sheds(self):
        node = _node(admission=AdmissionConfig())
        for i in range(40):
            node.put(b"k%d" % i, b"v" * 48)
            assert node.get(b"k%d" % i) == b"v" * 48
        assert node.stats.shed_overload == 0
        assert node.stats.shed_deadline == 0
        assert node.stats.deadline_violations == 0

    def test_admission_disabled_by_default(self):
        node = _node()
        assert node.admission is None
        node.put(b"k", b"v")
        assert node._clock == 0  # the virtual clock never advances

    def test_burst_with_slow_disks_sheds_typed_errors(self):
        node = _node(admission=STORM)
        for system in node.systems:
            system.disk.set_latency(8)
        node.hold_arrivals(200)
        sheds = 0
        for i in range(80):
            try:
                node.put(b"burst-%d" % i, b"v" * 64)
            except (OverloadedError, DeadlineExceededError):
                sheds += 1
        assert sheds > 0
        assert (
            node.stats.shed_overload + node.stats.shed_deadline == sheds
        )

    def test_advance_clock_drains_the_backlog(self):
        node = _node(admission=STORM)
        for system in node.systems:
            system.disk.set_latency(8)
        node.hold_arrivals(200)
        for i in range(80):
            try:
                node.put(b"burst-%d" % i, b"v" * 64)
            except (OverloadedError, DeadlineExceededError):
                pass
        node.advance_clock(STORM.max_backlog_units * 4)
        for system in node.systems:
            system.disk.set_latency(1)
        node.put(b"after-storm", b"ok")  # must not shed
        assert node.get(b"after-storm") == b"ok"

    def test_nonpositive_deadline_rejected(self):
        node = _node(admission=STORM)
        node.put(b"k", b"v")
        with pytest.raises(InvalidRequestError):
            node.put(b"k", b"v2", deadline=0)
        with pytest.raises(InvalidRequestError):
            node.get(b"k", deadline=-1)

    def test_hold_arrivals_rejects_negative(self):
        node = _node(admission=STORM)
        with pytest.raises(InvalidRequestError):
            node.hold_arrivals(-1)
        with pytest.raises(InvalidRequestError):
            node.advance_clock(-1)

    def test_sustained_slow_disk_trips_slow_breaker(self):
        node = _node(
            admission=STORM,
            breaker=BreakerConfig(
                window=8, trip_failures=3, cooldown_ops=64, probation_ops=4
            ),
        )
        for system in node.systems:
            system.disk.set_latency(8)
        for i in range(60):
            try:
                # Drain forces the queued writeback onto the slow medium;
                # its measured per-IO cost is what feeds the latency EWMA.
                node.put(b"slow-%d" % i, b"v" * 64)
                node.drain()
            except (OverloadedError, DeadlineExceededError):
                pass
        assert node.stats.slow_trips > 0
        states = [node.breaker_state(d) for d in range(node.num_disks)]
        assert any(
            state in (BreakerState.SLOW, BreakerState.HALF_OPEN)
            for state in states
        )

    def test_shed_get_hedges_from_replica(self):
        node = _node(admission=STORM)
        node.put(b"hot", b"payload")
        primary = node.route_of(b"hot")
        assert node._replica_map.get(b"hot") is not None
        # Saturate only the primary's queue; the replica disk stays idle.
        node._admissions[primary].busy_until = (
            node._clock + STORM.max_backlog_units
        )
        before = node.stats.hedges
        assert node.get(b"hot") == b"payload"
        assert node.stats.hedges == before + 1

    def test_hedge_disabled_propagates_the_shed(self):
        config = AdmissionConfig(
            deadline_units=64, max_backlog_units=128, hedge_reads=False
        )
        node = _node(admission=config)
        node.put(b"hot", b"payload")
        primary = node.route_of(b"hot")
        node._admissions[primary].busy_until = (
            node._clock + config.max_backlog_units * 2
        )
        with pytest.raises(OverloadedError):
            node.get(b"hot")

    def test_no_shedding_counts_deadline_violations(self):
        node = _node(
            admission=AdmissionConfig.no_shedding(
                deadline_units=64, max_backlog_units=128
            )
        )
        for system in node.systems:
            system.disk.set_latency(8)
        node.hold_arrivals(200)
        for i in range(80):
            node.put(b"burst-%d" % i, b"v" * 64)  # nothing sheds
        assert node.stats.shed_overload == 0
        assert node.stats.shed_deadline == 0
        assert node.stats.deadline_violations > 0

    def test_health_snapshot_exports_queue_gauges(self):
        node = _node(admission=STORM)
        node.put(b"k", b"v")
        gauges = node.health_snapshot()["gauges"]
        for disk_id in range(node.num_disks):
            for name in (
                "queue_backlog_units",
                "queue_depth",
                "latency_ewma",
                "inflight",
            ):
                assert f"node.disk{disk_id}.{name}" in gauges
        assert "node.retry_budget_tokens" in gauges


class TestShedErrorContract:
    """Satellite: the typed-shed guarantee at every node-API entry point.

    1. A shed request raises *only* :class:`OverloadedError` or
       :class:`DeadlineExceededError` -- never a raw transient
       :class:`IoError`, and never a stall.
    2. A shed fires before any substrate IO, so the store state (and the
       conformance model tracking it) is provably unchanged.
    """

    ALLOWED = (
        OverloadedError,
        DeadlineExceededError,
        RetryableError,
        NotFoundError,
        KeyNotFoundError,
    )

    def test_shed_put_leaves_key_absent(self):
        node = _node(admission=STORM)
        # Saturate every queue so the next put sheds wherever it routes.
        for queue in node._admissions:
            queue.busy_until = node._clock + STORM.max_backlog_units * 2
        with pytest.raises((OverloadedError, DeadlineExceededError)):
            node.put(b"never-stored", b"v")
        node.advance_clock(STORM.max_backlog_units * 4)
        with pytest.raises(NotFoundError):
            node.get(b"never-stored")
        assert node.contains(b"never-stored") is False

    def test_shed_delete_leaves_key_readable(self):
        node = _node(admission=STORM)
        node.put(b"keep", b"payload")
        for queue in node._admissions:
            queue.busy_until = node._clock + STORM.max_backlog_units * 2
        with pytest.raises((OverloadedError, DeadlineExceededError)):
            node.delete(b"keep")
        node.advance_clock(STORM.max_backlog_units * 4)
        assert node.get(b"keep") == b"payload"

    @pytest.mark.parametrize("seed", range(4))
    def test_only_documented_errors_escape_a_storm(self, seed):
        """Randomized storm: slow disks, bursts, transient IO faults.

        Any exception other than the documented typed set -- most
        importantly a raw transient ``IoError`` leaking through the
        retry/shed machinery -- fails the test by propagating.
        """
        rng = random.Random(seed)
        node = _node(
            admission=STORM,
            breaker=BreakerConfig(
                window=8, trip_failures=3, cooldown_ops=16, probation_ops=4
            ),
        )
        live = {}
        for step in range(200):
            if step == 40:  # the brownout sets in
                for system in node.systems:
                    system.disk.set_latency(rng.choice((4, 6, 8)))
            if step == 140:  # and heals
                for system in node.systems:
                    system.disk.set_latency(1)
                node.advance_clock(STORM.max_backlog_units * 2)
            if rng.random() < 0.1:
                node.hold_arrivals(rng.choice((8, 16)))
            if rng.random() < 0.05:
                disk = node.systems[rng.randrange(node.num_disks)].disk
                disk.arm_fault(
                    rng.randrange(
                        FIRST_DATA_EXTENT, disk.geometry.num_extents
                    ),
                    FailureMode.ONCE,
                )
            key = b"k%d" % rng.randrange(12)
            op = rng.randrange(3)
            try:
                if op == 0:
                    node.put(key, b"v" * rng.randrange(1, 48))
                    live[key] = True
                elif op == 1:
                    node.get(key)
                else:
                    node.delete(key)
                    live.pop(key, None)
            except self.ALLOWED:
                continue
            except IoError as exc:  # pragma: no cover - the contract breach
                pytest.fail(
                    f"raw IoError leaked from the node API: {exc!r}"
                )
        # Settlement: the node still serves healthy traffic afterwards.
        node.advance_clock(STORM.max_backlog_units * 4)
        node.put(b"settled", b"ok")
        assert node.get(b"settled") == b"ok"

    def test_every_escape_is_a_shardstore_error(self):
        """The blanket contract: one catchable base type for harnesses."""
        node = _node(admission=STORM)
        for system in node.systems:
            system.disk.set_latency(8)
        node.hold_arrivals(300)
        for i in range(100):
            try:
                node.put(b"x%d" % i, b"v" * 64)
                node.get(b"x%d" % i)
            except ShardStoreError:
                continue
