"""Unit tests for the LSM-tree index."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    Fault,
    FaultSet,
    StoreConfig,
    StoreSystem,
)
from repro.shardstore.chunk import Locator
from repro.shardstore.lsm import LsmIndex


def _system(faults=None, **kwargs):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults or FaultSet.none(),
        memtable_flush_threshold=kwargs.pop("memtable_flush_threshold", 50),
        **kwargs,
    )
    return StoreSystem(config)


def _put(store, key, payload=b"v"):
    locators, data_dep = store.chunk_store.put_shard(key, payload)
    return store.index.put(key, locators, data_dep)


class TestKeyValueSurface:
    def test_put_get(self):
        store = _system().store
        _put(store, b"k1", b"hello")
        locators = store.index.get(b"k1")
        assert store.chunk_store.get_shard(b"k1", locators) == b"hello"

    def test_absent_key_is_none(self):
        store = _system().store
        assert store.index.get(b"missing") is None

    def test_overwrite_takes_latest(self):
        store = _system().store
        _put(store, b"k", b"old")
        _put(store, b"k", b"new")
        locators = store.index.get(b"k")
        assert store.chunk_store.get_shard(b"k", locators) == b"new"

    def test_delete_tombstones(self):
        store = _system().store
        _put(store, b"k")
        store.index.delete(b"k")
        assert store.index.get(b"k") is None

    def test_tombstone_shadows_flushed_value(self):
        store = _system().store
        _put(store, b"k", b"value")
        store.index.flush()
        store.index.delete(b"k")
        assert store.index.get(b"k") is None
        store.index.flush()
        assert store.index.get(b"k") is None

    def test_keys_resolves_tombstones(self):
        store = _system().store
        _put(store, b"a")
        _put(store, b"b")
        store.index.flush()
        store.index.delete(b"a")
        assert store.index.keys() == [b"b"]


class TestFlush:
    def test_threshold_triggers_flush(self):
        store = _system(memtable_flush_threshold=3).store
        for i in range(3):
            _put(store, b"k%d" % i)
        assert store.index.memtable_len == 0
        assert store.index.run_count == 1

    def test_flush_resolves_put_promises(self):
        store = _system().store
        dep = _put(store, b"k", b"v")
        assert not dep.is_persistent()
        store.index.flush()
        store.superblock.flush()
        store.drain()
        assert dep.is_persistent()

    def test_empty_flush_is_noop(self):
        store = _system().store
        runs_before = store.index.run_count
        store.index.flush()
        assert store.index.run_count == runs_before

    def test_newer_run_shadows_older(self):
        store = _system().store
        _put(store, b"k", b"first")
        store.index.flush()
        _put(store, b"k", b"second")
        store.index.flush()
        locators = store.index.get(b"k")
        assert store.chunk_store.get_shard(b"k", locators) == b"second"

    def test_superseded_memtable_entry_promise_still_resolves(self):
        store = _system().store
        dep_old = _put(store, b"k", b"old")
        dep_new = _put(store, b"k", b"new")
        store.index.flush()
        store.superblock.flush()
        store.drain()
        assert dep_new.is_persistent()
        assert dep_old.is_persistent(), "superseded op resolves via superseder"


class TestCompaction:
    def test_compact_merges_runs(self):
        store = _system().store
        for i in range(4):
            _put(store, b"k%d" % i)
            store.index.flush()
        assert store.index.run_count == 4
        store.index.compact()
        assert store.index.run_count == 1
        assert len(store.index.keys()) == 4

    def test_compact_drops_tombstones(self):
        store = _system().store
        _put(store, b"k")
        store.index.flush()
        store.index.delete(b"k")
        store.index.flush()
        store.index.compact()
        run_locators = store.index.run_locators()
        assert store.index.get(b"k") is None
        assert store.index.run_count == 1

    def test_compact_preserves_values(self):
        store = _system().store
        values = {b"k%d" % i: bytes([i]) * 50 for i in range(6)}
        for key, value in values.items():
            _put(store, key, value)
            store.index.flush()
        store.index.compact()
        for key, value in values.items():
            assert store.chunk_store.get_shard(key, store.index.get(key)) == value

    def test_compact_on_empty_index(self):
        store = _system().store
        assert store.index.compact() is None

    def test_compact_skips_tombstone_only_oldest_runs(self):
        store = _system().store
        # Oldest runs hold only tombstones (deletes of never-written keys):
        # they shadow nothing, so the merge skips them entirely.
        store.index.delete(b"ghost1")
        store.index.delete(b"ghost2")
        store.index.flush()
        store.index.delete(b"ghost3")
        store.index.flush()
        _put(store, b"alive", b"payload")
        _put(store, b"doomed", b"gone")
        store.index.flush()
        store.index.delete(b"doomed")
        store.index.flush()
        assert store.index.run_count == 4
        store.index.compact()
        assert store.index.run_count == 1
        # Deletes stay deleted, live data stays reachable.
        assert store.index.get(b"doomed") is None
        for ghost in (b"ghost1", b"ghost2", b"ghost3"):
            assert store.index.get(ghost) is None
        assert (
            store.chunk_store.get_shard(b"alive", store.index.get(b"alive"))
            == b"payload"
        )
        # The merged run carries no tombstones at all: it is the oldest
        # run, so there is nothing older left to shadow.
        (merged,) = store.index._runs
        assert all(locs is not None for locs in merged.entries.values())
        assert set(merged.entries) == {b"alive"}


class TestRecovery:
    def test_roundtrip_through_recovery(self):
        system = _system()
        store = system.store
        values = {b"key%d" % i: bytes([i + 1]) * 80 for i in range(5)}
        for key, value in values.items():
            _put(store, key, value)
        store.index.flush()
        store.superblock.flush()
        store.drain()
        recovered, lost = LsmIndex.recover(
            store.chunk_store, store.scheduler, system.config
        )
        assert lost == []
        for key, value in values.items():
            locators = recovered.get(key)
            assert store.chunk_store.get_shard(key, locators) == value

    def test_unflushed_memtable_lost_on_recovery(self):
        system = _system()
        store = system.store
        _put(store, b"volatile")
        store.drain()
        recovered, _ = LsmIndex.recover(
            store.chunk_store, store.scheduler, system.config
        )
        assert recovered.get(b"volatile") is None

    def test_run_id_continuity(self):
        system = _system()
        store = system.store
        _put(store, b"a")
        store.index.flush()
        store.superblock.flush()
        store.drain()
        recovered, _ = LsmIndex.recover(
            store.chunk_store, store.scheduler, system.config
        )
        assert recovered._next_run_id == store.index._next_run_id

    def test_meta_rotation_survives_recovery(self):
        system = _system(memtable_flush_threshold=1)
        store = system.store
        # Enough flushes to overflow the first metadata extent.
        for i in range(40):
            _put(store, b"k%d" % (i % 4), bytes([i]))
        store.superblock.flush()
        store.drain()
        assert store.index.meta_switched
        recovered, lost = LsmIndex.recover(
            store.chunk_store, store.scheduler, system.config
        )
        assert lost == []
        assert len(recovered.keys()) == 4


class TestShutdownFault3:
    def test_correct_shutdown_persists_final_memtable(self):
        system = _system(memtable_flush_threshold=1)
        store = system.store
        for i in range(40):  # force a metadata-extent switch
            _put(store, b"k%d" % (i % 4), bytes([i]))
        # Make the final put sit in the memtable at shutdown time.
        system.config.memtable_flush_threshold = 100
        _put(store, b"final", b"F")
        store = system.clean_reboot()
        assert store.index.get(b"final") is not None

    def test_fault3_loses_final_memtable_after_switch(self):
        system = _system(
            memtable_flush_threshold=1,
            faults=FaultSet.only(Fault.SHUTDOWN_SKIPS_METADATA_AFTER_RESET),
        )
        system.config = system.config  # keep flake8 quiet
        store = system.store
        for i in range(40):
            _put(store, b"k%d" % (i % 4), bytes([i]))
        assert store.index.meta_switched
        # The final put sits in the memtable at shutdown time.
        system.config.memtable_flush_threshold = 100
        _put(store, b"final", b"F")
        store = system.clean_reboot()
        assert store.index.get(b"final") is None, "fault #3 loses the entry"


class TestReclamationSupport:
    def test_replace_data_locator(self):
        store = _system().store
        _put(store, b"k", b"data" * 30)
        old = store.index.get(b"k")[0]
        new_loc, write_dep = store.chunk_store.put_chunk(0, b"k", b"data" * 30)
        dep = store.index.replace_data_locator(b"k", old, new_loc, write_dep)
        assert dep is not None
        assert store.index.get(b"k")[0] == new_loc

    def test_replace_missing_locator_returns_none(self):
        store = _system().store
        _put(store, b"k")
        bogus = Locator(9, 999, 10)
        new_loc, write_dep = store.chunk_store.put_chunk(0, b"k", b"x")
        assert store.index.replace_data_locator(b"k", bogus, new_loc, write_dep) is None

    def test_run_liveness_and_relocation(self):
        store = _system().store
        _put(store, b"k")
        store.index.flush()
        old = store.index.run_locators()[0]
        assert store.index.is_run_live(old)
        new_loc, dep = store.chunk_store.put_chunk(1, b"run:0", b"copy")
        store.index.relocate_run(old, new_loc, dep)
        assert not store.index.is_run_live(old)
        assert store.index.is_run_live(new_loc)

    def test_relocate_unknown_run_raises(self):
        from repro.shardstore import ShardStoreError

        store = _system().store
        new_loc, dep = store.chunk_store.put_chunk(1, b"run:9", b"copy")
        with pytest.raises(ShardStoreError):
            store.index.relocate_run(Locator(9, 0, 10), new_loc, dep)
