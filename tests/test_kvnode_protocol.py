"""The unified KVNode surface: one battery, three conforming objects.

ShardStore (one disk), StorageNode (many disks behind the RPC layer), and
ReferenceKvStore (the executable specification) all structurally conform
to :class:`repro.shardstore.KVNode`, including the uniform contract that
``delete`` of an absent key raises :class:`KeyNotFoundError` and invalid
keys are rejected identically via ``validate_key``.
"""

import pytest

from repro.models import ReferenceKvStore
from repro.shardstore import (
    DiskGeometry,
    InvalidRequestError,
    KeyNotFoundError,
    KVNode,
    NotFoundError,
    ShardStoreError,
    StorageNode,
    StoreConfig,
    StoreSystem,
)


def _config():
    return StoreConfig(
        geometry=DiskGeometry(num_extents=12, extent_size=2048, page_size=128)
    )


def _store():
    return StoreSystem(_config()).store


def _node():
    return StorageNode(num_disks=2, config=_config())


SURFACES = [
    pytest.param(_store, id="store"),
    pytest.param(_node, id="node"),
    pytest.param(ReferenceKvStore, id="model"),
]


@pytest.mark.parametrize("make", SURFACES)
class TestKVNodeBattery:
    def test_conforms_to_protocol(self, make):
        assert isinstance(make(), KVNode)

    def test_put_get_contains_keys(self, make):
        kv = make()
        kv.put(b"b", b"2")
        kv.put(b"a", b"1")
        assert kv.get(b"a") == b"1"
        assert kv.contains(b"b")
        assert not kv.contains(b"zzz")
        assert kv.keys() == [b"a", b"b"]

    def test_delete_removes(self, make):
        kv = make()
        kv.put(b"k", b"v")
        kv.delete(b"k")
        assert not kv.contains(b"k")
        assert kv.keys() == []

    def test_delete_absent_raises_uniformly(self, make):
        kv = make()
        with pytest.raises(KeyNotFoundError):
            kv.delete(b"never-put")

    def test_delete_after_delete_raises(self, make):
        kv = make()
        kv.put(b"k", b"v")
        kv.delete(b"k")
        with pytest.raises(KeyNotFoundError):
            kv.delete(b"k")

    @pytest.mark.parametrize("key", [b"", "string", None, b"x" * 2000])
    def test_invalid_keys_rejected_everywhere(self, make, key):
        kv = make()
        with pytest.raises(InvalidRequestError):
            kv.put(key, b"v")
        with pytest.raises(InvalidRequestError):
            kv.get(key)
        with pytest.raises(InvalidRequestError):
            kv.delete(key)
        with pytest.raises(InvalidRequestError):
            kv.contains(key)

    def test_drain_is_available(self, make):
        kv = make()
        kv.put(b"k", b"v")
        kv.drain()  # must exist and not raise on every surface


class TestErrorTaxonomy:
    def test_key_not_found_is_a_not_found(self):
        assert issubclass(KeyNotFoundError, NotFoundError)
        assert issubclass(KeyNotFoundError, ShardStoreError)


@pytest.mark.parametrize("make", [pytest.param(_store, id="store"),
                                  pytest.param(_node, id="node")])
class TestFlushContract:
    def test_flush_then_drain_is_persistent(self, make):
        kv = make()
        kv.put(b"k", b"v" * 50)
        dep = kv.flush()
        kv.drain()
        assert dep.is_persistent()

    def test_flush_not_persistent_before_writeback(self, make):
        kv = make()
        kv.put(b"k", b"v" * 50)
        dep = kv.flush()
        assert not dep.is_persistent()


class TestModelFlushIsNoop:
    def test_specification_is_immediately_durable(self):
        model = ReferenceKvStore()
        model.put(b"k", b"v")
        assert model.flush() is None
        model.drain()
        assert model.get(b"k") == b"v"
