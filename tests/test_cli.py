"""Tests for the ``python -m repro`` validation CLI."""

import pytest

from repro.cli import main


class TestConformanceCommand:
    def test_clean_run_exits_zero(self, capsys):
        status = main(["conformance", "--sequences", "5", "--ops", "30"])
        assert status == 0
        assert "PASS" in capsys.readouterr().out

    def test_fault_detection_exits_one(self, capsys):
        status = main(
            [
                "conformance",
                "--alphabet",
                "crash",
                "--fault",
                "CACHE_WRITE_MISSING_SOFT_PTR_DEP",
                "--sequences",
                "10",
            ]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "failing seed" in out

    def test_minimize_flag_prints_reproducer(self, capsys):
        status = main(
            [
                "conformance",
                "--alphabet",
                "crash",
                "--fault",
                "CACHE_WRITE_MISSING_SOFT_PTR_DEP",
                "--sequences",
                "10",
                "--minimize",
            ]
        )
        assert status == 1
        assert "minimized" in capsys.readouterr().out

    def test_node_alphabet(self, capsys):
        status = main(
            ["conformance", "--alphabet", "node", "--sequences", "5", "--ops", "30"]
        )
        assert status == 0

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            main(["conformance", "--fault", "NOT_A_FAULT"])


class TestMcCommand:
    def test_clean_harness_passes(self, capsys):
        status = main(
            ["mc", "--harness", "list-remove", "--iterations", "30", "--seed", "3"]
        )
        assert status == 0

    def test_injected_race_detected(self, capsys):
        status = main(
            [
                "mc",
                "--harness",
                "list-remove",
                "--fault",
                "LIST_REMOVE_RACE",
                "--iterations",
                "120",
                "--seed",
                "3",
            ]
        )
        assert status == 1
        assert "FAIL" in capsys.readouterr().out

    @pytest.mark.slow
    def test_dfs_strategy(self, capsys):
        status = main(
            [
                "mc",
                "--harness",
                "buffer-pool",
                "--strategy",
                "dfs",
                "--iterations",
                "25000",
            ]
        )
        assert status == 0
        assert "exhausted=True" in capsys.readouterr().out


class TestOtherCommands:
    def test_fuzz(self, capsys):
        status = main(["fuzz", "--iterations", "500", "--exhaustive-len", "1"])
        assert status == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 5

    def test_verify_models(self, capsys):
        status = main(["verify-models", "--depth", "3"])
        assert status == 0
        assert capsys.readouterr().out.count("PASS") == 2

    def test_loc(self, capsys):
        status = main(["loc"])
        assert status == 0
        assert "Implementation" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignSuiteFlag:
    """``--suite`` is generated from SUITE_REGISTRY, not hand-listed."""

    def _campaign_parser(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        return subparsers.choices["campaign"]

    def _suite_action(self):
        return next(
            action
            for action in self._campaign_parser()._actions
            if action.dest == "suite"
        )

    def test_suite_choices_mirror_the_registry(self):
        from repro.campaign import SUITE_REGISTRY

        assert tuple(self._suite_action().choices) == tuple(SUITE_REGISTRY)
        assert "brownout" in SUITE_REGISTRY

    def test_suite_help_enumerates_every_registered_suite(self):
        from repro.campaign import SUITE_REGISTRY

        help_text = self._suite_action().help
        for name, blurb in SUITE_REGISTRY.items():
            assert f"'{name}'" in help_text
            assert blurb in help_text

    def test_unknown_suite_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--smoke", "--suite", "thunderstorm"])
        assert excinfo.value.code == 2

    def test_brownout_smoke_passes(self, capsys, tmp_path):
        import json

        artifact_path = tmp_path / "brownout.json"
        status = main(
            [
                "campaign",
                "--smoke",
                "--suite",
                "brownout",
                "--seed",
                "0",
                "--output",
                str(artifact_path),
            ]
        )
        assert status == 0
        artifact = json.loads(artifact_path.read_text())
        assert artifact["passed"]
        totals = artifact["brownout"]["totals"]
        assert totals["shed_overload"] + totals["shed_deadline"] > 0
        assert totals["deadline_violations"] == 0

    def test_brownout_no_shedding_fails(self, capsys):
        status = main(
            [
                "campaign",
                "--smoke",
                "--suite",
                "brownout",
                "--seed",
                "0",
                "--no-shedding",
            ]
        )
        assert status == 1
