"""Unit tests for chunk framing and extent scanning (incl. the bug #10
mechanism)."""

import pytest

from repro.shardstore.chunk import (
    CHUNK_MAGIC,
    KIND_DATA,
    KIND_RUN,
    Locator,
    PagedReader,
    decode_chunk,
    encode_chunk,
    frame_size,
    scan_chunks,
)
from repro.shardstore.errors import CorruptionError, IoError

UUID = bytes(range(16))


def _frame(key=b"key", payload=b"payload", kind=KIND_DATA, uuid=UUID):
    return encode_chunk(kind, key, payload, uuid)


class TestFraming:
    def test_roundtrip(self):
        frame = _frame(payload=b"p" * 100)
        chunk = decode_chunk(frame)
        assert chunk.key == b"key"
        assert chunk.payload == b"p" * 100
        assert chunk.kind == KIND_DATA
        assert chunk.frame_length == len(frame)
        assert chunk.uuid == UUID

    def test_frame_size_matches(self):
        assert frame_size(b"key", b"abc") == len(_frame(payload=b"abc"))

    def test_empty_payload(self):
        chunk = decode_chunk(_frame(payload=b""))
        assert chunk.payload == b""

    def test_run_kind(self):
        chunk = decode_chunk(_frame(kind=KIND_RUN))
        assert chunk.kind == KIND_RUN

    def test_bad_uuid_length_rejected_at_encode(self):
        with pytest.raises(ValueError):
            encode_chunk(KIND_DATA, b"k", b"p", b"short")

    def test_unknown_kind_rejected_at_encode(self):
        with pytest.raises(ValueError):
            encode_chunk(7, b"k", b"p", UUID)

    def test_offset_decoding(self):
        buf = b"\x00" * 50 + _frame()
        chunk = decode_chunk(buf, 50)
        assert chunk.key == b"key"


class TestDecodeRejection:
    def test_bad_magic(self):
        frame = bytearray(_frame())
        frame[0] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_chunk(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(CorruptionError):
            decode_chunk(_frame()[:10])

    def test_truncated_body(self):
        frame = _frame(payload=b"x" * 100)
        with pytest.raises(CorruptionError):
            decode_chunk(frame[:-20])

    def test_body_crc(self):
        frame = bytearray(_frame(payload=b"x" * 50))
        frame[30] ^= 0x01  # inside the body
        with pytest.raises(CorruptionError):
            decode_chunk(bytes(frame))

    def test_trailing_uuid_mismatch(self):
        frame = bytearray(_frame())
        frame[-1] ^= 0x01
        with pytest.raises(CorruptionError):
            decode_chunk(bytes(frame))

    def test_unknown_kind_on_disk(self):
        frame = bytearray(_frame())
        # Flip the kind byte inside the body and fix the CRC by re-encoding:
        # simpler -- craft with a valid kind then ensure changed kind fails
        # CRC (defense in depth).
        body_start = 2 + 16 + 8
        frame[body_start] = 9
        with pytest.raises(CorruptionError):
            decode_chunk(bytes(frame))

    def test_negative_offset(self):
        with pytest.raises(CorruptionError):
            decode_chunk(_frame(), -1)


def _reader(data: bytes, page=128) -> PagedReader:
    return PagedReader(lambda off, length: data[off : off + length], len(data), page)


class TestScan:
    def test_back_to_back_chunks(self):
        data = _frame(key=b"a") + _frame(key=b"b") + _frame(key=b"c")
        found = scan_chunks(_reader(data), 128)
        assert [c.key for _, c in found] == [b"a", b"b", b"c"]

    def test_corrupt_chunk_skipped_to_page_boundary(self):
        first = bytearray(_frame(key=b"a", payload=b"x" * 100))
        first[5] ^= 0xFF  # corrupt the uuid
        data = bytes(first).ljust(256, b"\x00") + _frame(key=b"b")
        found = scan_chunks(_reader(data), 128)
        assert [c.key for _, c in found] == [b"b"]

    def test_sequential_scan_equivalent_on_clean_extent(self):
        data = _frame(key=b"a") + _frame(key=b"b", payload=b"y" * 200)
        fixed = scan_chunks(_reader(data), 128)
        sequential = scan_chunks(_reader(data), 128, sequential_only=True)
        assert [(o, c.key) for o, c in fixed] == [(o, c.key) for o, c in sequential]

    def test_uuid_magic_collision_scenario(self):
        """The paper's section 5 bug #10, byte for byte.

        A chunk whose trailing UUID spills 2 bytes onto the next page is
        torn by a crash; a second chunk is written at the page boundary.
        If the lost UUID tail equals the chunk magic, the sequential scan
        "successfully" decodes the corrupt first chunk and skips the live
        second chunk; the fixed scan still finds it.
        """
        page = 128
        # Choose payload so the frame ends exactly 2 bytes past page 1.
        overhead = frame_size(b"k1", b"")
        payload_len = page + 2 - overhead
        uuid1 = bytes(14) + CHUNK_MAGIC  # tail == magic: the collision
        first = encode_chunk(KIND_DATA, b"k1", b"p" * payload_len, uuid1)
        assert len(first) == page + 2
        second = _frame(key=b"k2", payload=b"live data")
        # Crash state: page 0 of chunk 1 persisted; chunk 2 written at the
        # recovered (page-aligned) pointer.
        data = first[:page] + second
        sequential = scan_chunks(_reader(data, page), page, sequential_only=True)
        fixed = scan_chunks(_reader(data, page), page)
        seq_keys = [c.key for _, c in sequential]
        fixed_keys = [c.key for _, c in fixed]
        assert b"k2" not in seq_keys, "buggy scan must be fooled"
        assert b"k2" in fixed_keys, "fixed scan must find the live chunk"

    def test_no_collision_means_both_scans_recover(self):
        page = 128
        overhead = frame_size(b"k1", b"")
        payload_len = page + 2 - overhead
        first = encode_chunk(KIND_DATA, b"k1", b"p" * payload_len, UUID)
        second = _frame(key=b"k2")
        data = first[:page] + second
        sequential = scan_chunks(_reader(data, page), page, sequential_only=True)
        assert b"k2" in [c.key for _, c in sequential]

    def test_read_error_raises_by_default(self):
        def failing_read(off, length):
            if off >= 128:
                raise IoError("injected")
            return (_frame(key=b"a") + b"\x00" * 512)[off : off + length]

        reader = PagedReader(failing_read, 512, 128)
        with pytest.raises(IoError):
            scan_chunks(reader, 128)

    def test_read_error_truncates_with_fault5_policy(self):
        data = _frame(key=b"a").ljust(128, b"\x00") + _frame(key=b"b")

        def failing_read(off, length):
            if off >= 128:
                raise IoError("injected")
            return data[off : off + length]

        reader = PagedReader(failing_read, len(data), 128)
        found = scan_chunks(reader, 128, on_read_error="truncate")
        assert [c.key for _, c in found] == [b"a"]  # b forgotten: bug #5


class TestLocator:
    def test_value_roundtrip(self):
        loc = Locator(4, 100, 57)
        assert Locator.from_value(loc.to_value()) == loc

    @pytest.mark.parametrize("raw", [[1, 2], [1, 2, "x"], "nope", [-1, 0, 3]])
    def test_malformed_rejected(self, raw):
        with pytest.raises(CorruptionError):
            Locator.from_value(raw)

    def test_ordering(self):
        assert Locator(1, 0, 5) < Locator(1, 10, 5) < Locator(2, 0, 1)
