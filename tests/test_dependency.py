"""Unit tests for the Dependency type and durability tracking."""

import pytest

from repro.shardstore.dependency import (
    Dependency,
    DurabilityTracker,
    FutureCell,
    RecordInfo,
    dependency_graph_edges,
)


@pytest.fixture
def tracker() -> DurabilityTracker:
    return DurabilityTracker()


class TestBasics:
    def test_root_is_always_persistent(self, tracker):
        assert Dependency.root(tracker).is_persistent()

    def test_records_gate_persistence(self, tracker):
        rid = tracker.allocate()
        dep = Dependency.on_records(tracker, [rid])
        assert not dep.is_persistent()
        tracker.mark_durable(rid)
        assert dep.is_persistent()

    def test_allocate_is_monotonic(self, tracker):
        ids = [tracker.allocate() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_durable_count(self, tracker):
        ids = [tracker.allocate() for _ in range(3)]
        tracker.mark_durable(ids[0])
        tracker.mark_durable(ids[2])
        assert tracker.durable_count == 2


class TestConjunction:
    def test_and_requires_both(self, tracker):
        a, b = tracker.allocate(), tracker.allocate()
        dep = Dependency.on_records(tracker, [a]).and_(
            Dependency.on_records(tracker, [b])
        )
        tracker.mark_durable(a)
        assert not dep.is_persistent()
        tracker.mark_durable(b)
        assert dep.is_persistent()

    def test_all_of_many(self, tracker):
        ids = [tracker.allocate() for _ in range(4)]
        dep = Dependency.all_([Dependency.on_records(tracker, [i]) for i in ids])
        for rid in ids[:-1]:
            tracker.mark_durable(rid)
            assert not dep.is_persistent()
        tracker.mark_durable(ids[-1])
        assert dep.is_persistent()

    def test_all_of_nothing_rejected(self, tracker):
        with pytest.raises(ValueError):
            Dependency.all_([])

    def test_cross_tracker_combination_rejected(self, tracker):
        other = DurabilityTracker()
        with pytest.raises(ValueError):
            Dependency.root(tracker).and_(Dependency.root(other))


class TestFutures:
    def test_unresolved_future_blocks_persistence(self, tracker):
        cell = FutureCell("pending")
        dep = Dependency.on_future(tracker, cell)
        assert not dep.is_persistent()
        assert dep.unresolved_futures() == [cell]

    def test_resolution_transfers_records(self, tracker):
        rid = tracker.allocate()
        cell = FutureCell()
        dep = Dependency.on_future(tracker, cell)
        cell.resolve(Dependency.on_records(tracker, [rid]))
        assert not dep.is_persistent()
        tracker.mark_durable(rid)
        assert dep.is_persistent()
        assert rid in dep.record_ids()

    def test_double_resolution_is_conjunction(self, tracker):
        a, b = tracker.allocate(), tracker.allocate()
        cell = FutureCell()
        dep = Dependency.on_future(tracker, cell)
        cell.resolve(Dependency.on_records(tracker, [a]))
        cell.resolve(Dependency.on_records(tracker, [b]))
        tracker.mark_durable(a)
        assert not dep.is_persistent(), "second resolution must also hold"
        tracker.mark_durable(b)
        assert dep.is_persistent()

    def test_nested_future_chains(self, tracker):
        rid = tracker.allocate()
        inner = FutureCell("inner")
        outer = FutureCell("outer")
        dep = Dependency.on_future(tracker, outer)
        outer.resolve(Dependency.on_future(tracker, inner))
        assert not dep.is_persistent()
        inner.resolve(Dependency.on_records(tracker, [rid]))
        tracker.mark_durable(rid)
        assert dep.is_persistent()

    def test_duplicate_future_in_and(self, tracker):
        cell = FutureCell()
        a = Dependency.on_future(tracker, cell)
        combined = a.and_(Dependency.on_future(tracker, cell))
        assert len(combined.unresolved_futures()) == 1


class TestSnapshotRestore:
    def test_durability_rewinds(self, tracker):
        rid = tracker.allocate()
        snap = tracker.snapshot()
        tracker.mark_durable(rid)
        dep = Dependency.on_records(tracker, [rid])
        assert dep.is_persistent()
        tracker.restore(snap)
        assert not dep.is_persistent()


class TestGraphEdges:
    def test_edges_follow_prerequisites(self, tracker):
        a = tracker.allocate()
        b = tracker.allocate()
        dep_a = Dependency.on_records(tracker, [a])
        tracker.record_info[a] = RecordInfo(a, "first", 0, 0, 4, Dependency.root(tracker))
        tracker.record_info[b] = RecordInfo(b, "second", 0, 4, 4, dep_a)
        edges = dependency_graph_edges(tracker, [b])
        assert (a, b) in edges
