"""Unit tests for the superblock: pointer publication, promises, recovery."""

import random


from repro.shardstore import (
    SUPERBLOCK_EXTENTS,
    DiskGeometry,
    Fault,
    FaultSet,
    InMemoryDisk,
    StoreConfig,
)
from repro.shardstore.dependency import Dependency, DurabilityTracker
from repro.shardstore.scheduler import IoScheduler
from repro.shardstore.superblock import OWNER_DATA, OWNER_FREE, Superblock


def _fresh(faults=None, seed=0):
    config = StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults or FaultSet.none(),
        seed=seed,
    )
    disk = InMemoryDisk(config.geometry)
    tracker = DurabilityTracker()
    scheduler = IoScheduler(disk, tracker, random.Random(seed))
    return config, disk, tracker, scheduler, Superblock(scheduler, config)


class TestFlushAndRecover:
    def test_flush_writes_recoverable_state(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"x" * 100, Dependency.root(tracker))
        sb.note_append(4)
        sb.note_ownership(4, OWNER_DATA)
        sb.flush()
        scheduler.drain()
        state, slot = Superblock.recover_state(scheduler, config)
        assert state.pointers[4] == 100
        assert state.ownership[4] == OWNER_DATA
        assert slot == 0

    def test_epochs_increase(self):
        config, disk, tracker, scheduler, sb = _fresh()
        sb.flush()
        sb.flush()
        scheduler.drain()
        state, _ = Superblock.recover_state(scheduler, config)
        assert state.epoch == 2

    def test_unflushed_state_not_recovered(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"x" * 100, Dependency.root(tracker))
        sb.note_append(4)
        sb.flush()  # queued but never written back
        state, _ = Superblock.recover_state(scheduler, config)
        assert state.pointers.get(4, 0) == 0

    def test_empty_disk_recovers_free_ownership(self):
        config, disk, tracker, scheduler, sb = _fresh()
        state, _ = Superblock.recover_state(scheduler, config)
        assert all(owner == OWNER_FREE for owner in state.ownership.values())


class TestRotation:
    def test_rotation_switches_slots_and_keeps_newest(self):
        config, disk, tracker, scheduler, sb = _fresh()
        # Fill extent 0 with records (each flush record is page-padded).
        for _ in range(40):
            sb.flush()
        scheduler.drain()
        state, slot = Superblock.recover_state(scheduler, config)
        assert state.epoch == 40
        assert disk.write_pointer(SUPERBLOCK_EXTENTS[1]) > 0 or slot == 0

    def test_recovered_slot_resumes_on_newest_extent(self):
        """The rotation-after-reboot bug: resuming on slot 0 when slot 1
        holds the newest records would reset the newest records away."""
        config, disk, tracker, scheduler, sb = _fresh()
        flushes = 0
        while disk.write_pointer(SUPERBLOCK_EXTENTS[1]) == 0:
            sb.flush()
            scheduler.drain()
            flushes += 1
            assert flushes < 100
        state, slot = Superblock.recover_state(scheduler, config)
        assert slot == 1
        # A new superblock resuming on the recovered slot must not reset
        # the extent that holds the newest epoch.
        sb2 = Superblock(scheduler, config, recovered=state, recovered_slot=slot)
        resets_before = disk.reset_count(SUPERBLOCK_EXTENTS[1])
        sb2.flush()
        scheduler.drain()
        assert disk.reset_count(SUPERBLOCK_EXTENTS[1]) == resets_before
        new_state, _ = Superblock.recover_state(scheduler, config)
        assert new_state.epoch > state.epoch


class TestPointerPromises:
    def test_append_promise_resolves_on_covering_flush(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"x" * 64, Dependency.root(tracker))
        promise = sb.note_append(4)
        assert not promise.is_persistent()
        sb.flush()
        scheduler.drain()
        assert promise.is_persistent()

    def test_promises_are_batched_per_extent(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"a" * 10, Dependency.root(tracker))
        p1 = sb.note_append(4)
        scheduler.append(4, b"b" * 10, Dependency.root(tracker))
        p2 = sb.note_append(4)
        assert p1.unresolved_futures() == p2.unresolved_futures()

    def test_reset_closes_era_and_resolves_with_reset_record(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"victim data", Dependency.root(tracker))
        promise = sb.note_append(4)
        reset_dep = scheduler.reset(4, Dependency.root(tracker))
        sb.note_reset(4, reset_dep)
        assert not promise.is_persistent()
        scheduler.drain()  # applies the reset
        assert promise.is_persistent(), "era promise resolves via the reset"

    def test_publication_held_back_while_reset_pending(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"x" * 200, Dependency.root(tracker))
        sb.note_append(4)
        sb.flush()
        scheduler.drain()  # published pointer = 200
        blocker = Dependency.on_records(tracker, [tracker.allocate()])
        reset_dep = scheduler.reset(4, blocker)
        sb.note_reset(4, reset_dep)
        sb.flush()
        while scheduler.pump_one():
            pass
        state, _ = Superblock.recover_state(scheduler, config)
        assert state.pointers[4] == 200, "pre-reset pointer must be held"

    def test_fault7_publishes_early(self):
        config, disk, tracker, scheduler, sb = _fresh(
            faults=FaultSet.only(Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET)
        )
        scheduler.append(4, b"x" * 200, Dependency.root(tracker))
        sb.note_append(4)
        sb.flush()
        scheduler.drain()
        blocker = Dependency.on_records(tracker, [tracker.allocate()])
        sb.note_reset(4, scheduler.reset(4, blocker))
        sb.flush()
        while scheduler.pump_one():
            pass
        state, _ = Superblock.recover_state(scheduler, config)
        assert state.pointers[4] == 0, "the fault publishes the reset early"


class TestRecoveredPointer:
    def test_min_of_published_and_hard(self):
        from repro.shardstore.superblock import SuperblockState

        config, disk, tracker, scheduler, sb = _fresh()
        # Medium has 128 durable bytes; published pointer claims 300.
        disk.write(4, 0, b"x" * 128)
        scheduler.sync_soft_pointer(4, 128)
        state = SuperblockState(epoch=1, pointers={4: 300}, ownership={})
        assert Superblock.recovered_pointer(state, scheduler, 4, 128) == 128
        # Published below hard: the unacknowledged tail is discarded.
        state = SuperblockState(epoch=1, pointers={4: 100}, ownership={})
        pointer = Superblock.recovered_pointer(state, scheduler, 4, 128)
        assert pointer == 128  # 100 rounded up to the page boundary
        state = SuperblockState(epoch=1, pointers={4: 0}, ownership={})
        assert Superblock.recovered_pointer(state, scheduler, 4, 128) == 0

    def test_rounding_to_page_boundary(self):
        config, disk, tracker, scheduler, sb = _fresh()
        scheduler.append(4, b"x" * 200, Dependency.root(tracker))
        sb.note_append(4)
        sb.flush()
        scheduler.drain()
        state, _ = Superblock.recover_state(scheduler, config)
        pointer = Superblock.recovered_pointer(state, scheduler, 4, 128)
        assert pointer % 128 == 0
        assert pointer >= 200

    def test_fault6_reuses_stale_promise_after_reboot(self):
        config, disk, tracker, scheduler, sb = _fresh()
        sb.flush()
        scheduler.drain()
        state, slot = Superblock.recover_state(scheduler, config)
        faulty_config = StoreConfig(
            geometry=config.geometry,
            faults=FaultSet.only(Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT),
            seed=0,
        )
        sb2 = Superblock(
            scheduler, faulty_config, recovered=state, recovered_slot=slot
        )
        scheduler.append(4, b"fresh", Dependency.root(tracker))
        promise = sb2.note_append(4)
        scheduler.drain()
        # No post-reboot flush happened, yet the stale promise reports
        # persistent -- the bug.
        assert promise.is_persistent()


class TestBufferPool:
    def test_with_buffer_roundtrip(self):
        _, _, _, _, sb = _fresh()
        assert sb.with_buffer(lambda: 42) == 42

    def test_current_epoch_tracks_flushes(self):
        _, _, _, scheduler, sb = _fresh()
        assert sb.current_epoch() == 0
        sb.flush()
        assert sb.current_epoch() == 1
