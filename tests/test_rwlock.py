"""Unit and model-checked tests for the readers-writer lock."""


from repro.concurrency import model, spawn
from repro.concurrency.primitives import RwLock


class TestPlainExecution:
    def test_read_guard(self):
        lock = RwLock({"x": 1})
        with lock.read() as value:
            assert value == {"x": 1}

    def test_write_guard(self):
        lock = RwLock([])
        with lock.write() as value:
            value.append(1)
        with lock.read() as value:
            assert value == [1]

    def test_concurrent_readers_and_writers_threads(self):
        lock = RwLock({"n": 0})
        observed = []

        def writer():
            for _ in range(50):
                with lock.write() as state:
                    state["n"] += 1

        def reader():
            for _ in range(50):
                with lock.read() as state:
                    observed.append(state["n"])

        handles = [spawn(writer, "w")] + [spawn(reader, f"r{i}") for i in range(3)]
        for handle in handles:
            handle.join()
        with lock.read() as state:
            assert state["n"] == 50
        assert all(0 <= n <= 50 for n in observed)


class TestModelChecked:
    def test_writer_exclusion_is_exhaustively_verified(self):
        """No reader ever observes a writer's half-applied update."""

        def harness():
            lock = RwLock({"a": 0, "b": 0}, name="pair")

            def writer():
                with lock.write() as state:
                    state["a"] += 1
                    state["b"] += 1  # must be atomic with the line above

            def reader():
                with lock.read() as state:
                    assert state["a"] == state["b"], "torn read"

            def body():
                t1 = spawn(writer, "writer")
                t2 = spawn(reader, "reader")
                t1.join()
                t2.join()

            return body

        result = model(harness, strategy="dfs")
        assert result.passed and result.exhausted

    def test_unlocked_version_is_caught(self):
        """The same harness without the lock fails -- the checker works."""

        def harness():
            state = {"a": 0, "b": 0}
            from repro.concurrency.primitives import AtomicCell

            cell_a = AtomicCell(0, name="a")
            cell_b = AtomicCell(0, name="b")

            def writer():
                cell_a.store(cell_a.load() + 1)
                cell_b.store(cell_b.load() + 1)

            def reader():
                a = cell_a.load()
                b = cell_b.load()
                assert a == b, "torn read"

            def body():
                t1 = spawn(writer, "writer")
                t2 = spawn(reader, "reader")
                t1.join()
                t2.join()

            return body

        result = model(harness, strategy="dfs")
        assert not result.passed

    def test_two_writers_serialise(self):
        def harness():
            lock = RwLock([], name="log")

            def writer(tag):
                def body():
                    with lock.write() as log:
                        log.append((tag, "begin"))
                        log.append((tag, "end"))

                return body

            def body():
                t1 = spawn(writer("x"), "x")
                t2 = spawn(writer("y"), "y")
                t1.join()
                t2.join()
                with lock.read() as log:
                    assert len(log) == 4
                    assert log[0][0] == log[1][0]
                    assert log[2][0] == log[3][0]

            return body

        result = model(harness, strategy="dfs")
        assert result.passed and result.exhausted

    def test_no_deadlock_under_contention(self):
        def harness():
            lock = RwLock(0, name="c")

            def reader():
                with lock.read():
                    pass

            def writer():
                with lock.write():
                    pass

            def body():
                tasks = [
                    spawn(reader, "r1"),
                    spawn(writer, "w1"),
                    spawn(reader, "r2"),
                ]
                for task in tasks:
                    task.join()

            return body

        result = model(harness, strategy="random", iterations=150, seed=5)
        assert result.passed
