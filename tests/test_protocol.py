"""Tests for the wire protocol (request routing, section 8.3's gap)."""

import pytest

from repro.shardstore import (
    DiskGeometry,
    StorageNode,
    StoreConfig,
)
from repro.shardstore.errors import CorruptionError
from repro.shardstore.protocol import (
    Request,
    Response,
    decode_request,
    decode_response,
    dispatch,
    encode_request,
    encode_response,
)


def _node():
    return StorageNode(
        num_disks=2,
        config=StoreConfig(
            geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128)
        ),
    )


class TestMarshalling:
    @pytest.mark.parametrize(
        "request_",
        [
            Request(op="get", key=b"k"),
            Request(op="put", key=b"k", value=b"v" * 200),
            Request(op="delete", key=b"k"),
            Request(op="list"),
            Request(op="bulk_create", pairs=((b"a", b"1"), (b"b", b"2"))),
            Request(op="bulk_delete", keys=(b"a", b"b")),
            Request(op="migrate", key=b"k", target_disk=1),
            Request(op="scrub"),
        ],
    )
    def test_request_roundtrip(self, request_):
        assert decode_request(encode_request(request_)) == request_

    @pytest.mark.parametrize(
        "response",
        [
            Response(status="ok", value=b"data"),
            Response(status="not_found", message="gone"),
            Response(status="ok", shards=(b"a", b"b"), count=2),
            Response(status="retry", message="disk out of service"),
        ],
    )
    def test_response_roundtrip(self, response):
        assert decode_response(encode_response(response)) == response

    def test_unknown_op_rejected(self):
        from repro.serialization.codec import encode_record

        raw = encode_record({"op": "format_disk"}, 64)
        with pytest.raises(CorruptionError):
            decode_request(raw)

    def test_wrong_field_types_rejected(self):
        from repro.serialization.codec import encode_record

        for payload in (
            {"op": "get", "key": "not-bytes"},
            {"op": "put", "key": b"k", "value": 7},
            {"op": "migrate", "key": b"k", "target_disk": b"0"},
            {"op": "bulk_create", "pairs": [b"flat"]},
            {"op": "bulk_delete", "keys": [1, 2]},
            ["not", "a", "dict"],
        ):
            with pytest.raises(CorruptionError):
                decode_request(encode_record(payload, 64))

    def test_garbage_bytes_rejected(self):
        with pytest.raises(CorruptionError):
            decode_request(b"\xff" * 100)
        with pytest.raises(CorruptionError):
            decode_response(b"")


class TestDispatch:
    def test_put_get_roundtrip_over_the_wire(self):
        node = _node()
        response = decode_response(
            dispatch(node, encode_request(Request(op="put", key=b"k", value=b"v")))
        )
        assert response.ok
        response = decode_response(
            dispatch(node, encode_request(Request(op="get", key=b"k")))
        )
        assert response.ok and response.value == b"v"

    def test_get_missing_is_not_found(self):
        response = decode_response(
            dispatch(_node(), encode_request(Request(op="get", key=b"nope")))
        )
        assert response.status == "not_found"

    def test_invalid_key_is_invalid_status(self):
        response = decode_response(
            dispatch(_node(), encode_request(Request(op="put", key=b"", value=b"v")))
        )
        assert response.status == "invalid"

    def test_list_and_bulk_over_the_wire(self):
        node = _node()
        response = decode_response(
            dispatch(
                node,
                encode_request(
                    Request(op="bulk_create", pairs=((b"a", b"1"), (b"b", b"2")))
                ),
            )
        )
        assert response.ok and response.count == 2
        response = decode_response(
            dispatch(node, encode_request(Request(op="list")))
        )
        assert response.shards == (b"a", b"b")
        response = decode_response(
            dispatch(node, encode_request(Request(op="bulk_delete", keys=(b"a",))))
        )
        assert response.ok and response.count == 1

    def test_migrate_over_the_wire(self):
        node = _node()
        dispatch(node, encode_request(Request(op="put", key=b"k", value=b"v")))
        source = node._shard_map[b"k"]
        response = decode_response(
            dispatch(
                node,
                encode_request(
                    Request(op="migrate", key=b"k", target_disk=1 - source)
                ),
            )
        )
        assert response.ok
        assert node._shard_map[b"k"] == 1 - source

    def test_scrub_over_the_wire(self):
        node = _node()
        dispatch(node, encode_request(Request(op="put", key=b"k", value=b"v")))
        response = decode_response(
            dispatch(node, encode_request(Request(op="scrub")))
        )
        assert response.ok and response.count == 0

    def test_garbage_request_yields_invalid_response(self):
        raw = dispatch(_node(), b"\x00\x01\x02 total garbage")
        response = decode_response(raw)
        assert response.status == "invalid"

    def test_dispatch_never_raises_on_fuzzed_input(self):
        import random

        node = _node()
        rng = random.Random(4)
        for _ in range(300):
            raw = bytes(rng.getrandbits(8) for _ in range(rng.randrange(120)))
            decode_response(dispatch(node, raw))


class TestProtocolPanicFreedom:
    """The section 7 property extended to the wire decoders."""

    def test_request_decoder_in_fuzz_harness(self):
        from repro.serialization.fuzz import check_fuzz

        report = check_fuzz(
            decode_request,
            iterations=4000,
            seed=9,
            corpus=[encode_request(Request(op="put", key=b"k", value=b"v"))],
            name="decode_request",
        )
        assert report.passed, report.panic

    def test_response_decoder_in_fuzz_harness(self):
        from repro.serialization.fuzz import check_fuzz

        report = check_fuzz(
            decode_response,
            iterations=4000,
            seed=9,
            corpus=[encode_response(Response(status="ok", value=b"v"))],
            name="decode_response",
        )
        assert report.passed, report.panic
