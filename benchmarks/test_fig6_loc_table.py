"""Fig. 6: artifact sizes -- implementation vs specification vs validation.

The paper reports the reference models at ~1% of the implementation, and
all validation artifacts combined at 13% of the code base / 20% of the
implementation -- contrasted with the 3-10x proof overhead of full formal
verification.  This benchmark measures the same ratios for this repository
and asserts the lightweight-overhead *shape*: models are a small fraction
of the implementation, and validation stays within the same order of
magnitude as the paper's ratios rather than verification's multiples.
"""

from __future__ import annotations

import os

from repro.core import count_lines, loc_table
from repro.core.report import FIG6_CATEGORIES


def _measure(repo_root: str) -> dict:
    return {
        category: sum(
            count_lines(os.path.join(repo_root, path)) for path in paths
        )
        for category, paths in FIG6_CATEGORIES.items()
    }


def test_fig6_loc_table(benchmark, repo_root):
    rows = benchmark.pedantic(_measure, args=(repo_root,), rounds=1, iterations=1)
    print("\n" + loc_table(repo_root))
    implementation = rows["Implementation"]
    models = rows["Reference models (S3.2)"]
    validation = sum(
        count for category, count in rows.items() if "checks" in category
    ) + models
    assert implementation > 0 and models > 0 and validation > 0
    # The models are a small executable specification (paper: ~1% of the
    # implementation; we allow up to 15% for a smaller codebase).
    assert models / implementation < 0.15, (models, implementation)
    # Validation overhead is lightweight: well under 1x the implementation
    # (verification efforts report 3-10x proof-to-code).
    assert validation / implementation < 1.0, (validation, implementation)
