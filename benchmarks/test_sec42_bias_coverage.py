"""Section 4.2: what argument bias buys (and coverage metrics).

Two claims from the paper, each measured here:

1. **Key-reuse bias** makes the successful-``Get`` path testable: with
   naive random keys, gets and puts rarely coincide, so the
   read-the-right-data path is starved.  We measure the successful-get
   rate under biased vs unbiased alphabets.

2. **Page-size bias** reaches boundary corner cases: the paper's
   experience is that sizes near the disk page size are frequent bug
   causes.  We measure how fast the biased alphabet detects the
   re-injected page-boundary bug (#1) versus the unbiased one, and compare
   implementation line coverage of the two alphabets.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core import (
    BiasConfig,
    StoreHarness,
    measure,
    run_conformance,
    store_alphabet,
)
from repro.shardstore import Fault, FaultSet, NotFoundError


def _get_hit_rate(bias: BiasConfig, sequences: int = 30, ops: int = 60) -> float:
    alphabet = store_alphabet()
    hits = 0
    total = 0
    for seed in range(sequences):
        rng = random.Random(seed)
        ops_list = alphabet.generate_sequence(rng, ops, bias)
        harness = StoreHarness(FaultSet.none(), seed)
        for index, op in enumerate(ops_list):
            if op.name == "Get":
                total += 1
                try:
                    harness.store.get(op.args[0])
                    hits += 1
                except NotFoundError:
                    pass
            failure = harness.apply(index, op)
            assert failure is None, failure
    return hits / max(total, 1)


def _sequences_to_detect(bias: BiasConfig, max_sequences: int = 300) -> Optional[int]:
    report = run_conformance(
        lambda seed: StoreHarness(FaultSet.only(Fault.RECLAIM_OFF_BY_ONE), seed),
        store_alphabet(),
        sequences=max_sequences,
        ops_per_sequence=80,
        bias=bias,
        base_seed=0,
    )
    return report.sequences_run if not report.passed else None


def test_sec42_key_reuse_bias(benchmark):
    """Biased key selection multiplies the successful-get rate."""
    biased, unbiased = benchmark.pedantic(
        lambda: (
            _get_hit_rate(BiasConfig()),
            _get_hit_rate(BiasConfig.unbiased()),
        ),
        rounds=1,
        iterations=1,
    )
    ratio = "inf" if unbiased == 0 else f"{biased / unbiased:.1f}x"
    print(
        f"\nsuccessful-Get rate: biased={biased:.1%} unbiased={unbiased:.1%} "
        f"({ratio})"
    )
    assert biased > unbiased * 1.5, (biased, unbiased)
    assert biased > 0.3


def test_sec42_page_size_bias_detects_boundary_bug(benchmark):
    """Page-size bias reliably reaches the page-boundary bug #1.

    Honest caveat, matching the paper's own experience (section 4.2): the
    unbiased alphabet is not uniformly worse -- boundary sizes occur by
    chance too -- so the assertion is that the *biased* alphabet finds the
    bug within a small budget, and both counts are reported.
    """
    biased, unbiased = benchmark.pedantic(
        lambda: (
            _sequences_to_detect(BiasConfig(), max_sequences=60),
            _sequences_to_detect(BiasConfig.unbiased(), max_sequences=60),
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nsequences to detect bug #1 (budget 60): biased={biased}, "
        f"unbiased={'not found' if unbiased is None else unbiased}"
    )
    assert biased is not None, "biased alphabet must find the boundary bug"


def test_sec42_coverage_metrics(benchmark):
    """Coverage metrics quantify each alphabet's blind spots (section 4.2's
    mitigation for eroding test reach)."""

    def run_with(bias: BiasConfig, seed: int):
        alphabet = store_alphabet()
        rng = random.Random(seed)
        ops = alphabet.generate_sequence(rng, 120, bias)
        harness = StoreHarness(FaultSet.none(), seed)

        def body() -> None:
            harness.run(ops)

        return measure(body)

    biased_cov, unbiased_cov = benchmark.pedantic(
        lambda: (run_with(BiasConfig(), 3), run_with(BiasConfig.unbiased(), 3)),
        rounds=1,
        iterations=1,
    )
    only_biased = biased_cov.minus(unbiased_cov)
    only_unbiased = unbiased_cov.minus(biased_cov)
    print(
        f"\nimplementation lines covered: biased={biased_cov.count()} "
        f"unbiased={unbiased_cov.count()}; "
        f"biased-only={only_biased.count()} unbiased-only={only_unbiased.count()}"
    )
    print(f"biased-only lines by file: {only_biased.by_file()}")
    assert biased_cov.count() > 0 and unbiased_cov.count() > 0
