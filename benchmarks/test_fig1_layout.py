"""Fig. 1: on-disk layout before and after chunk reclamation.

Recreates the paper's Fig. 1 scenario: shards stored as chunks on extents,
one shard deleted leaving an unreferenced chunk (the "hole"), then
reclamation evacuating live chunks and resetting the extent so its space
is reusable.  The benchmark renders both layouts and asserts the semantic
content of the figure: the hole exists before, the reclaimed extent is
empty after, and the live shards moved yet remain readable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.shardstore import StoreConfig, StoreSystem
from repro.shardstore.chunk import PagedReader, scan_chunks


def _layout(store, extents) -> Dict[int, List[Tuple[int, str, int]]]:
    """Chunks per extent as (offset, kind:key, frame length)."""
    out: Dict[int, List[Tuple[int, str, int]]] = {}
    page = store.config.geometry.page_size
    for extent in extents:
        limit = store.scheduler.soft_pointer(extent)
        reader = PagedReader(
            lambda off, length, e=extent: store.cache.read(e, off, length),
            limit,
            page,
        )
        chunks = scan_chunks(reader, page)
        out[extent] = [
            (
                offset,
                ("run:" if chunk.kind else "data:") + chunk.key.decode("latin1"),
                chunk.frame_length,
            )
            for offset, chunk in chunks
        ]
    return out


def _render(title: str, layout: Dict[int, List[Tuple[int, str, int]]]) -> str:
    lines = [title]
    for extent, chunks in sorted(layout.items()):
        body = "  ".join(f"[{off}:{label}]" for off, label, _ in chunks) or "(empty)"
        lines.append(f"  extent {extent}: {body}")
    return "\n".join(lines)


def _scenario():
    system = StoreSystem(StoreConfig(seed=7))
    store = system.store
    shards = {
        b"shardID 0x13": b"\x13" * 300,
        b"shardID 0x28": b"\x28" * 300,
        b"shardID 0x75": b"\x75" * 300,
    }
    for key, value in shards.items():
        store.put(key, value)
    store.flush_index()
    store.drain()
    # Delete one shard: its chunk becomes the unreferenced hole of Fig. 1a.
    store.delete(b"shardID 0x28")
    store.flush_index()
    store.drain()
    # Move the open extent off the victim (reclamation skips the extent
    # writers are appending to).
    victim = store.chunk_store.rotate_open()
    if victim is None:
        victim = store.chunk_store.owned_extents()[0]
    before = _layout(store, store.chunk_store.owned_extents())
    result = store.reclaim(victim)
    assert result is not None, "victim extent was not reclaimable"
    store.drain()
    after = _layout(
        store, sorted(set(store.chunk_store.owned_extents()) | {victim})
    )
    return store, shards, victim, before, after, result


def test_fig1_layout(benchmark):
    store, shards, victim, before, after, result = benchmark.pedantic(
        _scenario, rounds=1, iterations=1
    )
    print("\n" + _render(f"(a) before reclamation of extent {victim}:", before))
    print(_render(f"(b) after reclamation of extent {victim}:", after))
    print(
        f"reclaim: scanned={result.scanned_chunks} evacuated={result.evacuated} "
        f"dropped={result.dropped}"
    )
    # Fig. 1a: the deleted shard's chunk is on the victim extent, dead.
    labels_before = [label for _, label, _ in before[victim]]
    assert any("0x28" in label for label in labels_before), labels_before
    # Fig. 1b: the victim extent was reset (write pointer back to zero).
    assert store.disk.write_pointer(victim) == 0
    assert result.dropped >= 1  # the hole was dropped, not evacuated
    # Live shards were evacuated and still read back correctly.
    assert store.get(b"shardID 0x13") == shards[b"shardID 0x13"]
    assert store.get(b"shardID 0x75") == shards[b"shardID 0x75"]
    locators = store.index.get(b"shardID 0x13")
    assert all(loc.extent != victim for loc in locators)
