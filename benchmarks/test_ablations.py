"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but quantified versions of its design
arguments:

* **PCT depth** (section 6 / Burckhardt et al.): PCT's guarantee is
  parameterised by the bug depth d; a depth-d bug needs >= d priority
  change points.  We measure detection rate across depths on issue #14.
* **Bounded model verification scope** (section 3.2): how the cost of the
  bounded-exhaustive reference-model proof grows with depth, and that the
  issue-#15 counterexample already appears at tiny scopes (the small-scope
  hypothesis that makes the technique practical).
* **Crash-state writeback budgets** (section 5): how many of the bugs'
  detections come from partial-pump crash states vs the all-or-nothing
  extremes -- the reason RebootType carries a pump budget at all.
"""

from __future__ import annotations

import time

from repro.concurrency import PctExplorer
from repro.core import (
    BiasConfig,
    StoreHarness,
    run_conformance,
    verify_chunkstore_model,
    verify_kv_model,
)
from repro.core.alphabet import Alphabet, OpSpec, crash_alphabet
from repro.core.concurrent_harnesses import compaction_reclaim_harness
from repro.shardstore import Fault, FaultSet


def test_ablation_pct_depth(benchmark):
    """Detection rate of issue #14 as a function of PCT depth."""

    def run():
        rows = []
        for depth in (1, 2, 3, 5):
            explorer = PctExplorer(
                iterations=150, depth=depth, max_steps_hint=128, seed=3
            )
            result = explorer.explore(
                compaction_reclaim_harness(
                    FaultSet.only(Fault.COMPACTION_RECLAIM_RACE)
                )
            )
            rows.append((depth, not result.passed, result.executions))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nPCT depth   detected   executions-to-bug")
    for depth, detected, executions in rows:
        print(f"{depth:>9}   {detected!s:<8}   {executions}")
    # The race needs at least one preemption at the right point; some depth
    # in the sweep must find it.
    assert any(detected for _, detected, _ in rows)


def test_ablation_model_verification_depth(benchmark):
    """Cost growth of bounded-exhaustive model verification."""

    def run():
        rows = []
        for depth in (2, 3, 4):
            start = time.perf_counter()
            result = verify_kv_model(depth=depth)
            rows.append(
                (depth, result.sequences_checked, time.perf_counter() - start)
            )
            assert result.verified
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ndepth   sequences   seconds")
    for depth, sequences, seconds in rows:
        print(f"{depth:>5}   {sequences:>9}   {seconds:7.3f}")
    # Exponential in depth -- the reason the bound stays small.
    assert rows[-1][1] > rows[0][1] * 10


def test_ablation_small_scope_for_model_bug(benchmark):
    """Issue #15's counterexample appears at the smallest useful scope."""

    def run():
        detected_at = None
        for depth in (1, 2, 3, 4):
            result = verify_chunkstore_model(
                depth=depth, faults=FaultSet.only(Fault.MODEL_REUSES_LOCATORS)
            )
            if not result.verified:
                detected_at = depth
                break
        return detected_at

    detected_at = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nissue #15 counterexample found at depth {detected_at}")
    assert detected_at is not None and detected_at <= 4


def _crash_alphabet_with_pump(pump_choices) -> Alphabet:
    base = [spec for spec in crash_alphabet().specs if spec.name != "DirtyReboot"]

    def args(ctx, bias):
        flush_index = ctx.rng.random() < 0.4
        flush_superblock = ctx.rng.random() < 0.4
        return (flush_index, flush_superblock, ctx.rng.choice(pump_choices))

    return Alphabet(base + [OpSpec("DirtyReboot", 0.9, args)])


def test_ablation_partial_writeback_matters(benchmark):
    """Section 5's pump budget: partial crash states find bug #8 faster
    than all-or-nothing reboots from the same seeds."""

    def detect_within(alphabet, budget=120):
        report = run_conformance(
            lambda seed: StoreHarness(
                FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP), seed
            ),
            alphabet,
            sequences=budget,
            ops_per_sequence=80,
            bias=BiasConfig(),
        )
        return report.sequences_run if not report.passed else None

    partial, extremes = benchmark.pedantic(
        lambda: (
            detect_within(_crash_alphabet_with_pump([0, 1, 4, 16, None])),
            detect_within(_crash_alphabet_with_pump([0, None])),
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nsequences to detect bug #8: mixed pump budgets={partial}, "
        f"all-or-nothing={'not found' if extremes is None else extremes}"
    )
    assert partial is not None
