"""Section 6: the soundness-scalability trade-off of model checking.

The paper uses Loom (sound, exhaustive) for small correctness-critical
code and Shuttle (randomized, PCT) for larger end-to-end harnesses that
exhaustive checking cannot scale to.  This benchmark quantifies the
trade-off on our checkers:

* a small harness (the buffer-pool primitive) is exhaustively enumerable,
  and DFS proves the absence of bugs by exhausting the schedule space;
* a large harness (the Fig. 4 compaction/reclamation end-to-end test) has
  an interleaving space DFS cannot exhaust within budget, while PCT finds
  the injected race in a handful of sampled executions.
"""

from __future__ import annotations

import time

from repro.concurrency import DfsExplorer, model
from repro.core.concurrent_harnesses import (
    buffer_pool_harness,
    compaction_reclaim_harness,
    locator_race_harness,
)
from repro.shardstore import Fault, FaultSet


def test_sec6_dfs_exhausts_small_harness(benchmark):
    """Loom-analogue: a small harness is fully enumerable (soundness)."""

    def run():
        return model(
            buffer_pool_harness(FaultSet.none()),
            strategy="dfs",
            max_executions=20_000,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nDFS on buffer-pool harness: {result.executions} executions, "
        f"{result.total_steps} steps, exhausted={result.exhausted}"
    )
    assert result.passed
    assert result.exhausted, "small harness must be fully enumerable"


def test_sec6_dfs_cannot_exhaust_large_harness(benchmark):
    """The end-to-end harness's schedule space exceeds the DFS budget."""

    def run():
        return DfsExplorer(max_executions=200).explore(
            compaction_reclaim_harness(FaultSet.none())
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nDFS on Fig. 4 harness: {result.executions} executions "
        f"({result.total_steps} steps) without exhausting the space"
    )
    assert not result.exhausted, "end-to-end space should exceed the budget"


def test_sec6_pct_scales_to_large_harness(benchmark):
    """Shuttle-analogue: PCT samples the large space and finds the race."""

    def run():
        t0 = time.perf_counter()
        clean = model(
            compaction_reclaim_harness(FaultSet.none()),
            strategy="pct",
            iterations=150,
            seed=3,
            pct_steps_hint=128,
        )
        t_clean = time.perf_counter() - t0
        t0 = time.perf_counter()
        faulty = model(
            compaction_reclaim_harness(
                FaultSet.only(Fault.COMPACTION_RECLAIM_RACE)
            ),
            strategy="pct",
            iterations=300,
            seed=3,
            pct_steps_hint=128,
        )
        t_faulty = time.perf_counter() - t0
        return clean, faulty, t_clean, t_faulty

    clean, faulty, t_clean, t_faulty = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nPCT on Fig. 4 harness: clean pass in {clean.executions} executions "
        f"({t_clean:.1f}s); injected race found in {faulty.executions} "
        f"executions ({t_faulty:.1f}s)"
    )
    assert clean.passed
    assert not faulty.passed, "PCT must find the issue #14 race"


def test_sec6_strategy_comparison_on_known_race(benchmark):
    """Executions-to-detection across strategies for the same bug (#11)."""

    def run():
        rows = []
        for strategy, kwargs in [
            ("dfs", dict(max_executions=5000)),
            ("random", dict(iterations=500, seed=5)),
            ("pct", dict(iterations=500, seed=5)),
        ]:
            t0 = time.perf_counter()
            result = model(
                locator_race_harness(
                    FaultSet.only(Fault.LOCATOR_RACE_WRITE_FLUSH)
                ),
                strategy=strategy,
                **kwargs,
            )
            rows.append(
                (strategy, result.executions, not result.passed,
                 time.perf_counter() - t0)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nstrategy   executions-to-bug   detected   seconds")
    for strategy, execs, detected, seconds in rows:
        print(f"{strategy:<10} {execs:>10}          {detected!s:<8} {seconds:7.2f}")
    assert all(detected for _, _, detected, _ in rows)
