"""Fig. 2: the dependency graph for three put operations.

The paper's Fig. 2 shows three puts whose durability each requires (a) the
shard-data chunk write, (b) the index entry flushed in the LSM tree, and
(c) the LSM metadata update -- with soft-write-pointer updates in the
superblock batched, so puts whose chunks share an extent share a
superblock-update node, and all three puts share one LSM flush.

This benchmark replays that scenario and checks the graph's structure: no
put is persistent until every leg is durable; the puts share the index
flush (one run chunk + one metadata record); and superblock pointer
updates are coalesced across puts (fewer superblock records than appends).
"""

from __future__ import annotations

from repro.shardstore import StoreConfig, StoreSystem
from repro.shardstore.dependency import dependency_graph_edges


def _scenario():
    config = StoreConfig(seed=1, superblock_flush_cadence=100)  # manual flushes
    system = StoreSystem(config)
    store = system.store
    deps = {
        key: store.put(key, bytes([i]) * 200)
        for i, key in enumerate([b"shard-1", b"shard-2", b"shard-3"])
    }
    # All three puts participate in the same LSM flush and the same
    # superblock flush, exactly as in Fig. 2.
    store.flush_index()
    store.flush_superblock()
    return system, store, deps


def test_fig2_dependency_graph(benchmark):
    system, store, deps = benchmark.pedantic(_scenario, rounds=1, iterations=1)
    tracker = system.tracker

    # Before writeback nothing is persistent; each pump can only move the
    # system toward persistence (monotonic, never a regression).
    assert all(not dep.is_persistent() for dep in deps.values())
    persisted_history = []
    while store.scheduler.pending_count:
        store.pump(1)
        persisted_history.append(
            sum(1 for dep in deps.values() if dep.is_persistent())
        )
    assert persisted_history == sorted(persisted_history)
    assert all(dep.is_persistent() for dep in deps.values())

    # Render the graph: each put's records and their prerequisites.
    print()
    labels = {}
    for key, dep in deps.items():
        record_ids = sorted(dep.record_ids())
        for rid in record_ids:
            info = tracker.record_info[rid]
            labels[rid] = f"{info.label}@extent{info.extent}"
        edges = dependency_graph_edges(tracker, record_ids)
        print(f"put({key.decode()}): records {record_ids}")
        for src, dst in edges:
            print(f"    {labels.get(src, src)} -> {labels.get(dst, dst)}")

    # Structure checks (the figure's content):
    def kinds(dep):
        out = set()
        for rid in dep.record_ids():
            out.add(tracker.record_info[rid].label.split("@")[0].split(":")[0])
        return out

    for dep in deps.values():
        assert "chunk" in kinds(dep), "shard data write missing"
        assert "lsm-metadata" in kinds(dep), "metadata update missing"
        assert "superblock-record" in kinds(dep), "soft-pointer update missing"

    # Shared legs: the three puts resolve to ONE run chunk + metadata
    # record and share superblock records (coalesced pointer updates).
    meta_records = set()
    sb_records = set()
    for dep in deps.values():
        for rid in dep.record_ids():
            label = tracker.record_info[rid].label
            if label == "lsm-metadata":
                meta_records.add(rid)
            if label == "superblock-record":
                sb_records.add(rid)
    per_put_sb = [
        {
            rid
            for rid in dep.record_ids()
            if tracker.record_info[rid].label == "superblock-record"
        }
        for dep in deps.values()
    ]
    assert per_put_sb[0] == per_put_sb[1] == per_put_sb[2], (
        "puts should share the coalesced superblock update"
    )
    assert len(sb_records) >= 1
    print(
        f"shared: {len(meta_records)} metadata record pages, "
        f"{len(sb_records)} superblock record pages for 3 puts (coalesced)"
    )


def test_fig2_writeback_coalescing(benchmark):
    """Fig. 2's other claim: the IO scheduler coalesces contiguous
    writebacks into one device IO.  Measures the device-write reduction
    for the same workload with and without coalescing."""
    import random

    from repro.shardstore import DiskGeometry, InMemoryDisk
    from repro.shardstore.dependency import Dependency, DurabilityTracker
    from repro.shardstore.scheduler import IoScheduler

    def run(coalesce: bool):
        disk = InMemoryDisk(
            DiskGeometry(num_extents=8, extent_size=65536, page_size=128)
        )
        tracker = DurabilityTracker()
        scheduler = IoScheduler(disk, tracker, random.Random(0))
        for i in range(120):
            scheduler.append(
                4 + (i % 3), bytes([i % 256]) * 300, Dependency.root(tracker)
            )
        while scheduler.pump_one(coalesce=coalesce):
            pass
        return disk.stats.writes

    coalesced, raw = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1
    )
    print(
        f"\ndevice writes for 120 appends across 3 extents: "
        f"raw={raw}, coalesced={coalesced} ({raw / coalesced:.1f}x fewer IOs)"
    )
    assert coalesced < raw / 3
