"""Fig. 5 (the headline result): 16 issues, each caught by its checker.

The paper's evaluation is a catalog of 16 issues the validation stack
prevented from reaching production.  This benchmark re-injects every issue
via :mod:`repro.shardstore.faults`, hunts it with the checker the paper
attributes it to (conformance PBT, crash-consistency PBT, or stateless
model checking), and regenerates the Fig. 5 table with a Detected column.

Seeds are pinned to the known-detecting region so the matrix completes in
benchmark time; the unpinned pay-as-you-go behaviour (run longer, find the
same bugs from any seed) is exercised by ``test_pbt_throughput.py`` and
the integration tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import pytest

from repro.concurrency import model
from repro.core import (
    BiasConfig,
    ChunkStoreModelHarness,
    DetectionOutcome,
    NodeHarness,
    StoreHarness,
    crash_alphabet,
    detection_matrix,
    failure_alphabet,
    node_alphabet,
    run_conformance,
    store_alphabet,
)
from repro.core.concurrent_harnesses import (
    buffer_pool_harness,
    bulk_race_harness,
    compaction_reclaim_harness,
    list_remove_harness,
    locator_race_harness,
)
from repro.shardstore import Fault, FaultSet, detector_for

# fault -> (alphabet factory, pinned base seed, uuid bias)
_PBT_PLAN: Dict[Fault, Tuple[Callable, int, float]] = {
    Fault.RECLAIM_OFF_BY_ONE: (store_alphabet, 15, 0.0),
    Fault.CACHE_NOT_DRAINED_ON_RESET: (store_alphabet, 0, 0.0),
    Fault.SHUTDOWN_SKIPS_METADATA_AFTER_RESET: (store_alphabet, 23, 0.0),
    Fault.RECLAIM_FORGETS_ON_READ_ERROR: (failure_alphabet, 394, 0.0),
    Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT: (crash_alphabet, 0, 0.0),
    Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET: (crash_alphabet, 20, 0.0),
    Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP: (crash_alphabet, 0, 0.0),
    Fault.MODEL_STALE_AFTER_CRASH_RECLAIM: (crash_alphabet, 3, 0.0),
    Fault.UUID_MAGIC_COLLISION_SCAN: (crash_alphabet, 174, 0.25),
}

# fault -> (harness factory, strategy, kwargs)
_MC_PLAN: Dict[Fault, Tuple[Callable, str, dict]] = {
    Fault.LOCATOR_RACE_WRITE_FLUSH: (
        locator_race_harness,
        "pct",
        dict(iterations=120, seed=3),
    ),
    Fault.BUFFER_POOL_DEADLOCK: (
        buffer_pool_harness,
        "random",
        dict(iterations=300, seed=3),
    ),
    Fault.LIST_REMOVE_RACE: (
        list_remove_harness,
        "pct",
        dict(iterations=120, seed=3),
    ),
    Fault.COMPACTION_RECLAIM_RACE: (
        compaction_reclaim_harness,
        "pct",
        dict(iterations=300, seed=3, pct_steps_hint=128),
    ),
    Fault.BULK_CREATE_REMOVE_RACE: (
        bulk_race_harness,
        "pct",
        dict(iterations=120, seed=3),
    ),
}


def _hunt_pbt(fault: Fault) -> DetectionOutcome:
    alphabet_factory, seed, bias = _PBT_PLAN[fault]
    if fault is Fault.DISK_RETURN_DROPS_SHARDS:
        raise AssertionError("handled separately")
    report = run_conformance(
        lambda s: StoreHarness(FaultSet.only(fault), s, uuid_magic_bias=bias),
        alphabet_factory(),
        sequences=8,
        ops_per_sequence=80,
        bias=BiasConfig(),
        base_seed=seed,
    )
    return DetectionOutcome(
        fault=fault,
        detected=not report.passed,
        detector=detector_for(fault),
        evidence=str(report.failure) if report.failure else "",
        sequences_or_executions=report.sequences_run,
    )


def _hunt_node(fault: Fault) -> DetectionOutcome:
    report = run_conformance(
        lambda s: NodeHarness(FaultSet.only(fault), s),
        node_alphabet(),
        sequences=8,
        ops_per_sequence=60,
        base_seed=0,
        ctx_kwargs={"num_disks": 3},
    )
    return DetectionOutcome(
        fault=fault,
        detected=not report.passed,
        detector=detector_for(fault),
        evidence=str(report.failure) if report.failure else "",
        sequences_or_executions=report.sequences_run,
    )


def _hunt_model_fault(fault: Fault) -> DetectionOutcome:
    report = run_conformance(
        lambda s: ChunkStoreModelHarness(FaultSet.only(fault), s),
        store_alphabet(),
        sequences=8,
        ops_per_sequence=60,
        base_seed=0,
    )
    return DetectionOutcome(
        fault=fault,
        detected=not report.passed,
        detector="PBT invariant check (model artifact)",
        evidence=str(report.failure) if report.failure else "",
        sequences_or_executions=report.sequences_run,
    )


def _hunt_mc(fault: Fault) -> DetectionOutcome:
    harness_factory, strategy, kwargs = _MC_PLAN[fault]
    result = model(
        harness_factory(FaultSet.only(fault)), strategy=strategy, **kwargs
    )
    return DetectionOutcome(
        fault=fault,
        detected=not result.passed,
        detector=detector_for(fault),
        evidence=type(result.failure).__name__ if result.failure else "",
        sequences_or_executions=result.executions,
    )


def _run_matrix() -> List[DetectionOutcome]:
    outcomes: List[DetectionOutcome] = []
    for fault in _PBT_PLAN:
        outcomes.append(_hunt_pbt(fault))
    outcomes.append(_hunt_node(Fault.DISK_RETURN_DROPS_SHARDS))
    outcomes.append(_hunt_model_fault(Fault.MODEL_REUSES_LOCATORS))
    for fault in _MC_PLAN:
        outcomes.append(_hunt_mc(fault))
    return outcomes


def test_fig5_detection_matrix(benchmark):
    """Regenerate Fig. 5: every injected issue must be detected."""
    outcomes = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    table = detection_matrix(outcomes)
    print("\n" + table)
    missed = [o.fault.name for o in outcomes if not o.detected]
    assert not missed, f"faults not detected: {missed}"
    assert len(outcomes) == 16


@pytest.mark.parametrize("fault", list(_PBT_PLAN))
def test_fig5_baseline_clean_for_pbt_alphabets(fault):
    """Sanity: with the fault OFF, the same pinned region finds nothing."""
    alphabet_factory, seed, bias = _PBT_PLAN[fault]
    report = run_conformance(
        lambda s: StoreHarness(FaultSet.none(), s, uuid_magic_bias=bias),
        alphabet_factory(),
        sequences=4,
        ops_per_sequence=80,
        base_seed=seed,
    )
    assert report.passed, report.failure
