"""Fig. 5 (the headline result): 16 issues, each caught by its checker.

The paper's evaluation is a catalog of 16 issues the validation stack
prevented from reaching production.  This benchmark re-injects every issue
via :mod:`repro.shardstore.faults`, hunts it with the checker the paper
attributes it to (conformance PBT, crash-consistency PBT, or stateless
model checking), and regenerates the Fig. 5 table with a Detected column.

The hunt plans (alphabet, pinned seed, strategy per fault) are the
canonical ones in :mod:`repro.campaign.fault_matrix` -- the same plans the
``repro campaign`` fault-matrix phase runs in parallel in CI.  Seeds are
pinned to the known-detecting region so the matrix completes in benchmark
time; the unpinned pay-as-you-go behaviour (run longer, find the same
bugs from any seed) is exercised by ``test_pbt_throughput.py`` and the
integration tests.
"""

from typing import List

import pytest

from repro.campaign.fault_matrix import (
    PBT_PLAN,
    fault_matrix_shards,
    run_shard,
)
from repro.campaign.spec import smoke_spec
from repro.core import (
    BiasConfig,
    DetectionOutcome,
    StoreHarness,
    crash_alphabet,
    detection_matrix,
    failure_alphabet,
    run_conformance,
    store_alphabet,
)
from repro.shardstore import Fault, FaultSet

_ALPHABETS = {
    "store": store_alphabet,
    "crash": crash_alphabet,
    "failure": failure_alphabet,
}


def _run_matrix() -> List[DetectionOutcome]:
    outcomes: List[DetectionOutcome] = []
    for shard in fault_matrix_shards(smoke_spec(), 0):
        result = run_shard(shard)
        outcomes.append(
            DetectionOutcome(
                fault=Fault[result.fault],
                detected=result.detected,
                detector=result.detector,
                evidence=result.failures[0].detail if result.failures else "",
                sequences_or_executions=result.cases,
            )
        )
    return outcomes


def test_fig5_detection_matrix(benchmark):
    """Regenerate Fig. 5: every injected issue must be detected."""
    outcomes = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    table = detection_matrix(outcomes)
    print("\n" + table)
    missed = [o.fault.name for o in outcomes if not o.detected]
    assert not missed, f"faults not detected: {missed}"
    assert len(outcomes) == 16


@pytest.mark.parametrize("fault", list(PBT_PLAN))
def test_fig5_baseline_clean_for_pbt_alphabets(fault):
    """Sanity: with the fault OFF, the same pinned region finds nothing."""
    alphabet_name, seed, bias = PBT_PLAN[fault]
    report = run_conformance(
        lambda s: StoreHarness(FaultSet.none(), s, uuid_magic_bias=bias),
        _ALPHABETS[alphabet_name](),
        sequences=4,
        ops_per_sequence=80,
        base_seed=seed,
    )
    assert report.passed, report.failure
