"""Shared fixtures for the benchmark/evaluation harness.

Each benchmark module regenerates one table or figure from the paper's
evaluation (see DESIGN.md's experiment index).  Absolute numbers differ --
our substrate is a Python simulator, not the authors' Rust testbed -- but
the *shape* of each result (who detects what, which approach is slower,
where overheads land) is the reproduction target, and every module prints
the regenerated table so `pytest benchmarks/ --benchmark-only` doubles as
the paper-artifact generator.
"""

from __future__ import annotations

import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="session")
def repo_root() -> str:
    return REPO_ROOT
