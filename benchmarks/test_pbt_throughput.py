"""Pay-as-you-go checking throughput (sections 1 and 4.2).

The paper runs "tens of millions of random test sequences before every
deployment" -- the checks are pay-as-you-go: run them longer to find more.
This benchmark measures our conformance engine's sequence throughput at
several sequence lengths and for each alphabet, the number that calibrates
how much checking a deployment-gate budget buys on this substrate.
"""

from __future__ import annotations

from repro.core import (
    BiasConfig,
    StoreHarness,
    crash_alphabet,
    failure_alphabet,
    run_conformance,
    store_alphabet,
)
from repro.shardstore import FaultSet


def _run(alphabet, sequences: int, ops: int) -> int:
    report = run_conformance(
        lambda seed: StoreHarness(FaultSet.none(), seed),
        alphabet,
        sequences=sequences,
        ops_per_sequence=ops,
        bias=BiasConfig(),
    )
    assert report.passed, report.failure
    return report.ops_run


def test_pbt_throughput_store_alphabet(benchmark):
    ops_run = benchmark.pedantic(
        _run, args=(store_alphabet(), 25, 60), rounds=3, iterations=1
    )
    print(f"\nstore alphabet: {ops_run} ops per round")
    assert ops_run == 25 * 60


def test_pbt_throughput_crash_alphabet(benchmark):
    ops_run = benchmark.pedantic(
        _run, args=(crash_alphabet(), 25, 60), rounds=3, iterations=1
    )
    print(f"\ncrash alphabet: {ops_run} ops per round")
    assert ops_run == 25 * 60


def test_pbt_throughput_failure_alphabet(benchmark):
    ops_run = benchmark.pedantic(
        _run, args=(failure_alphabet(), 25, 60), rounds=3, iterations=1
    )
    print(f"\nfailure alphabet: {ops_run} ops per round")
    assert ops_run == 25 * 60


def test_pbt_scaling_with_sequence_length(benchmark):
    """Longer sequences reach deeper states; cost scales near-linearly."""
    import time

    def run():
        rows = []
        for ops in (20, 60, 140):
            t0 = time.perf_counter()
            _run(store_alphabet(), 10, ops)
            rows.append((ops, time.perf_counter() - t0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nops/sequence   seconds per 10 sequences")
    for ops, seconds in rows:
        print(f"{ops:>10}     {seconds:8.3f}")
    # Near-linear: 7x the ops should cost far less than 50x the time.
    assert rows[-1][1] < rows[0][1] * 60
