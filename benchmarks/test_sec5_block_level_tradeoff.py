"""Section 5: coarse crash states vs block-level enumeration.

The paper implemented a block-level ``DirtyReboot`` variant that
exhaustively enumerates crash states (like BOB / CrashMonkey) and found it
"has not found additional bugs and is dramatically slower", so the coarse
RebootType approach is the default.  This benchmark reproduces both halves
of that claim:

* the block-level explorer finds the same crash bug (#8) the coarse
  checker finds;
* block-level exploration visits many more states and costs much more
  wall-clock per history than the coarse sampler.
"""

from __future__ import annotations

import random
import time

from repro.core import (
    BiasConfig,
    StoreHarness,
    coarse_crash_states,
    explore_block_level,
    store_alphabet,
)
from repro.shardstore import Fault, FaultSet


def _prepared_harness(fault_set: FaultSet, seed: int = 0) -> StoreHarness:
    """A harness advanced through a short history with pending writeback."""
    harness = StoreHarness(fault_set, seed)
    alphabet = store_alphabet()
    rng = random.Random(seed)
    # Crash-free prefix: put/flush activity leaves a rich pending queue.
    ops = [
        op
        for op in alphabet.generate_sequence(rng, 30, BiasConfig())
        if op.name not in ("Reboot", "PumpIo")
    ]
    failure = harness.run(ops)
    assert failure is None, failure
    return harness


def test_sec5_block_level_finds_crash_bug(benchmark):
    """Block-level enumeration detects the missing-dependency bug #8."""

    def run():
        harness = _prepared_harness(
            FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP)
        )
        return explore_block_level(harness, max_states=400)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nblock-level: {result.states_explored} states explored, "
        f"{result.states_deduplicated} deduplicated, violation: {result.violation}"
    )
    assert result.violation is not None


def test_sec5_block_level_clean_baseline(benchmark):
    """Fault-free: every reachable crash state satisfies persistence."""

    def run():
        harness = _prepared_harness(FaultSet.none())
        return explore_block_level(harness, max_states=400)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nblock-level clean: {result.states_explored} states, all consistent")
    assert result.passed
    assert result.states_explored > 10


def test_sec5_coarse_vs_block_level_cost(benchmark):
    """The paper's trade-off: same bug, dramatically different cost."""

    def run():
        timings = {}
        t0 = time.perf_counter()
        harness = _prepared_harness(
            FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP)
        )
        t_setup = time.perf_counter() - t0

        t0 = time.perf_counter()
        coarse = coarse_crash_states(harness, samples=8)
        timings["coarse"] = time.perf_counter() - t0

        harness2 = _prepared_harness(
            FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP)
        )
        t0 = time.perf_counter()
        block = explore_block_level(harness2, max_states=400)
        timings["block"] = time.perf_counter() - t0
        return coarse, block, timings, t_setup

    coarse, block, timings, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ncoarse:      {coarse.states_explored:>5} states, "
        f"{timings['coarse'] * 1e3:8.1f} ms, "
        f"found bug: {coarse.violation is not None}"
    )
    print(
        f"block-level: {block.states_explored:>5} states, "
        f"{timings['block'] * 1e3:8.1f} ms, "
        f"found bug: {block.violation is not None}"
    )
    # Both find the bug; block-level pays for many more states.
    assert block.violation is not None
    assert block.states_explored > coarse.states_explored
