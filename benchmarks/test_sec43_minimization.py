"""Section 4.3: automatic test-case minimization.

The paper's anecdote for bug #9: the first failing random sequence had 61
operations, 9 crashes, and 226 KiB of writes; after automatic minimization
it had 6 operations, 1 crash, and 2 bytes.  This benchmark reproduces the
experiment's shape on our re-injected crash-consistency bugs: find a
failing sequence with the PBT runner, minimize it, and assert order-of-
magnitude reductions in operation count, crash count, and bytes written --
while the minimized sequence still fails deterministically.
"""

from __future__ import annotations

from repro.core import (
    BiasConfig,
    StoreHarness,
    crash_alphabet,
    minimize,
    replay_fails,
    run_conformance,
    sequence_bytes,
    sequence_crashes,
)
from repro.shardstore import Fault, FaultSet


def _find_and_minimize(fault: Fault, base_seed: int, uuid_bias: float = 0.0):
    def factory(seed: int) -> StoreHarness:
        return StoreHarness(FaultSet.only(fault), seed, uuid_magic_bias=uuid_bias)

    report = run_conformance(
        factory,
        crash_alphabet(),
        sequences=40,
        ops_per_sequence=80,
        bias=BiasConfig(),
        base_seed=base_seed,
    )
    assert not report.passed, f"{fault.name}: no failing sequence found"
    fails = replay_fails(factory, report.failing_seed)
    reduced, stats = minimize(report.failing_sequence, fails)
    return report, reduced, stats


def test_sec43_minimization(benchmark):
    report, reduced, stats = benchmark.pedantic(
        _find_and_minimize,
        args=(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP, 0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nminimization (bug #8 analogue of the paper's #9 anecdote):\n"
        f"  before: {stats.initial_ops} ops, {stats.initial_crashes} crashes, "
        f"{stats.initial_bytes_written} bytes written\n"
        f"  after:  {stats.final_ops} ops, {stats.final_crashes} crashes, "
        f"{stats.final_bytes_written} bytes written\n"
        f"  ({stats.candidates_tried} candidates over {stats.rounds} rounds)\n"
        f"  minimized sequence: {[str(op) for op in reduced]}"
    )
    # Paper shape: 61 -> 6 ops, 9 -> 1 crashes, 226 KiB -> 2 B.
    assert stats.final_ops <= max(8, stats.initial_ops // 5)
    assert stats.final_crashes <= 2
    assert stats.final_bytes_written <= max(8, stats.initial_bytes_written // 20)
    # Determinism: the minimized sequence still fails on replay.
    fails = replay_fails(
        lambda seed: StoreHarness(
            FaultSet.only(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP), seed
        ),
        report.failing_seed,
    )
    assert fails(reduced)


def test_sec43_minimization_uuid_collision(benchmark):
    """The same experiment on the section 5 bug (#10) itself."""
    report, reduced, stats = benchmark.pedantic(
        _find_and_minimize,
        args=(Fault.UUID_MAGIC_COLLISION_SCAN, 174, 0.25),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nminimization of the #10 scenario: {stats.initial_ops} ops "
        f"-> {stats.final_ops} ops; {stats.initial_bytes_written} "
        f"-> {stats.final_bytes_written} bytes"
    )
    assert stats.final_ops < stats.initial_ops
    assert sequence_crashes(reduced) >= 1, "the crash is essential to #10"
    assert sequence_bytes(reduced) <= sequence_bytes(report.failing_sequence)
