"""Merging per-shard results into the campaign artifact.

The artifact is one JSON document (schema documented in EXPERIMENTS.md):
phase totals, every unexpected failure with its replay seed and minimized
reproducer, the Fig. 5 fault matrix with per-fault detection verdicts,
merged coverage statistics, and a ``timing`` section.  Everything outside
``timing`` is deterministic -- rerunning the same spec produces the same
bytes for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spec import (
    ALL_KINDS,
    KIND_ANTIENTROPY,
    KIND_CLUSTER,
    KIND_FAULT_MATRIX,
    KIND_INJECTION,
    SCHEMA_VERSION,
    CampaignSpec,
    ShardResult,
)


@dataclass
class CampaignResult:
    """Aggregated campaign outcome (``to_json`` renders the artifact)."""

    spec: CampaignSpec
    results: List[ShardResult]
    wall_clock_seconds: float
    shard_durations: Dict[int, float] = field(default_factory=dict)

    @property
    def total_cases(self) -> int:
        return sum(result.cases for result in self.results)

    @property
    def total_ops(self) -> int:
        return sum(result.ops for result in self.results)

    @property
    def cases_per_second(self) -> float:
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.total_cases / self.wall_clock_seconds

    @property
    def unexpected_failures(self) -> List[ShardResult]:
        return [
            result
            for result in self.results
            if not result.expected_failure and result.failures
        ]

    @property
    def missed_faults(self) -> List[str]:
        return [
            result.fault or "?"
            for result in self.results
            if result.expected_failure
            and not result.skipped
            and not result.detected
        ]

    @property
    def skipped_faults(self) -> List[str]:
        return [
            result.fault or "?"
            for result in self.results
            if result.kind == KIND_FAULT_MATRIX and result.skipped
        ]

    @property
    def passed(self) -> bool:
        # A budget cut may skip random-search shards (pay-as-you-go: less
        # budget, fewer cases) without failing the gate, but the fault
        # matrix is a known-answer suite: every one of the 16 issues must
        # actually run and be detected for the campaign to certify.
        return (
            not self.unexpected_failures
            and not self.missed_faults
            and not self.skipped_faults
        )

    def to_json(self) -> Dict[str, Any]:
        return result_to_json(self)

    def merged_metrics(self) -> Optional[Dict[str, Any]]:
        """Campaign-wide metrics (None unless the campaign was traced)."""
        return _merged_metrics(self.results)


def aggregate(
    spec: CampaignSpec,
    results: List[ShardResult],
    wall_clock_seconds: float,
    shard_durations: Optional[Dict[int, float]] = None,
) -> CampaignResult:
    """Wrap ordered shard results in a :class:`CampaignResult`."""
    return CampaignResult(
        spec=spec,
        results=list(results),
        wall_clock_seconds=wall_clock_seconds,
        shard_durations=dict(shard_durations or {}),
    )


def _phase_summary(results: List[ShardResult], kind: str) -> Dict[str, Any]:
    phase = [result for result in results if result.kind == kind]
    return {
        "shards": len(phase),
        "shards_skipped": sum(1 for result in phase if result.skipped),
        "cases": sum(result.cases for result in phase),
        "ops": sum(result.ops for result in phase),
        "failures": sum(
            len(result.failures)
            for result in phase
            if not result.expected_failure
        ),
    }


def _coverage_summary(results: List[ShardResult]) -> Dict[str, Any]:
    lines: set = set()
    for result in results:
        if result.coverage_lines:
            lines.update(tuple(entry) for entry in result.coverage_lines)
    by_file: Dict[str, int] = {}
    for filename, _ in lines:
        by_file[filename] = by_file.get(filename, 0) + 1
    return {
        "lines": len(lines),
        "by_file": {name: by_file[name] for name in sorted(by_file)},
    }


def _fault_matrix_rows(results: List[ShardResult]) -> List[Dict[str, Any]]:
    from repro.shardstore.faults import FAULT_CATALOG, Fault

    rows: List[Dict[str, Any]] = []
    matrix = [
        result for result in results if result.kind == KIND_FAULT_MATRIX
    ]
    for result in sorted(matrix, key=lambda r: Fault[r.fault or ""].value):
        fault = Fault[result.fault or ""]
        meta = FAULT_CATALOG[fault]
        row: Dict[str, Any] = {
            "id": fault.value,
            "fault": fault.name,
            "component": meta["component"],
            "property": meta["property"],
            "detector": result.detector,
            "detected": result.detected,
            "skipped": result.skipped,
            "seed": result.seed,
            "cases": result.cases,
            "evidence": (
                result.failures[0].detail if result.failures else ""
            ),
        }
        if result.fault_events is not None:
            row["fault_events"] = result.fault_events
        if result.trace is not None:
            row["trace"] = result.trace
        rows.append(row)
    return rows


def _injection_summary(
    results: List[ShardResult],
) -> Optional[Dict[str, Any]]:
    """The resilience section: per-shard plan identity plus summed fault
    and self-healing counters (None when no injection phase ran)."""
    shards = [r for r in results if r.kind == KIND_INJECTION]
    if not shards:
        return None
    totals: Dict[str, int] = {}
    per_shard: List[Dict[str, Any]] = []
    for result in shards:
        block: Dict[str, Any] = dict(result.injection or {})
        for key, value in block.items():
            if isinstance(value, int) and not isinstance(value, bool):
                totals[key] = totals.get(key, 0) + value
        block.update(
            {
                "shard_id": result.shard_id,
                "seed": result.seed,
                "cases": result.cases,
                "ok": result.ok,
                "skipped": result.skipped,
            }
        )
        per_shard.append(block)
    return {
        "shards": per_shard,
        "totals": {key: totals[key] for key in sorted(totals)},
    }


#: Counter keys the ``brownout`` section carries (the admission-plane
#: slice of the injection totals), in artifact order.
_BROWNOUT_KEYS = (
    "storm_events",
    "shed_overload",
    "shed_deadline",
    "hedges",
    "slow_trips",
    "deadline_violations",
    "retry_budget_exhausted",
    "replica_writes",
)


def _brownout_summary(
    results: List[ShardResult],
) -> Optional[Dict[str, Any]]:
    """The gray-failure section: shed/hedge/deadline behaviour of every
    admission-enabled injection shard (None when none ran).

    ``deadline_violations`` is the load-bearing gate total: 0 whenever
    shedding is on (late requests are shed, never run), non-zero under a
    ``--no-shedding`` storm -- which is also why the negative-control CI
    job asserts this campaign FAILS.
    """
    shards = [
        r
        for r in results
        if r.kind == KIND_INJECTION
        and (r.injection or {}).get("admission_enabled")
    ]
    if not shards:
        return None
    totals = {key: 0 for key in _BROWNOUT_KEYS}
    per_shard: List[Dict[str, Any]] = []
    for result in shards:
        block = result.injection or {}
        for key in _BROWNOUT_KEYS:
            totals[key] += int(block.get(key, 0))
        per_shard.append(
            {
                "shard_id": result.shard_id,
                "seed": result.seed,
                "profile": block.get("profile"),
                "shedding_enabled": bool(block.get("shedding_enabled")),
                "ok": result.ok,
                **{key: int(block.get(key, 0)) for key in _BROWNOUT_KEYS},
            }
        )
    return {"shards": per_shard, "totals": totals}


def _evidence_summary(
    results: List[ShardResult],
) -> Optional[Dict[str, Any]]:
    """The evidence-plane section (schema v5): per-shard journal digests
    and trace-conformance verdicts (None unless ``--journal`` ran).

    Everything here is deterministic: journals carry logical ticks and
    digests only, so the section is byte-identical for any worker count.
    """
    import hashlib

    shards = [
        r
        for r in results
        if r.kind == KIND_INJECTION
        and (r.injection or {}).get("evidence") is not None
    ]
    if not shards:
        return None
    per_shard: List[Dict[str, Any]] = []
    totals = {"sequences": 0, "records": 0, "checked": 0, "skipped": 0}
    all_passed = True
    heads: List[str] = []
    for result in shards:
        block = dict((result.injection or {})["evidence"])
        for key in totals:
            totals[key] += int(block.get(key, 0))
        all_passed = all_passed and bool(block.get("check_passed"))
        heads.append(str(block.get("heads_digest")))
        per_shard.append(
            {"shard_id": result.shard_id, "seed": result.seed, **block}
        )
    return {
        "shards": per_shard,
        "totals": totals,
        "all_passed": all_passed,
        "heads_digest": hashlib.sha256(
            "\n".join(heads).encode("ascii")
        ).hexdigest()[:16],
    }


#: Counter keys the ``cluster`` section totals, in artifact order (the
#: schema v6 addendum in EXPERIMENTS.md documents each).
_CLUSTER_KEYS = (
    "planned",
    "fired",
    "degraded_writes",
    "quorum_write_failures",
    "quorum_read_failures",
    "read_repairs",
    "hints_queued",
    "hints_replayed",
    "hints_dropped",
    "hints_revoked",
    "node_crashes",
    "node_restarts",
    "partitions",
    "partition_heals",
    "slow_storms",
    "node_demotions",
    "node_readmissions",
    "rebalances",
    "rebalance_moves",
)


def _cluster_summary(
    results: List[ShardResult],
) -> Optional[Dict[str, Any]]:
    """The cluster section (schema v6): per-shard consistency verdicts
    plus summed storm/quorum/handoff counters (None when no cluster
    phase ran).

    ``consistent`` is the load-bearing verdict: every quorum-acked write
    survived its minority outage, replicas converged after one read
    sweep, and the merged multi-journal replay was clean.  A
    ``--no-read-repair`` run deterministically flips it on any shard
    whose storm left revoked- or dropped-hint divergence -- the
    negative-control CI job asserts that campaign FAILS.
    """
    import hashlib

    shards = [r for r in results if r.kind == KIND_CLUSTER]
    if not shards:
        return None
    totals = {key: 0 for key in _CLUSTER_KEYS}
    all_consistent = True
    evidence_passed = True
    heads: List[str] = []
    per_shard: List[Dict[str, Any]] = []
    for result in shards:
        block = dict(result.cluster or {})
        for key in _CLUSTER_KEYS:
            totals[key] += int(block.get(key, 0))
        all_consistent = all_consistent and bool(
            block.get("consistent", result.ok)
        )
        evidence = block.get("evidence") or {}
        evidence_passed = evidence_passed and bool(
            evidence.get("check_passed", True)
        )
        heads.append(str(evidence.get("heads_digest")))
        block.update(
            {
                "shard_id": result.shard_id,
                "seed": result.seed,
                "ok": result.ok,
                "skipped": result.skipped,
            }
        )
        per_shard.append(block)
    return {
        "shards": per_shard,
        "totals": totals,
        "all_consistent": all_consistent,
        "evidence_passed": evidence_passed,
        "heads_digest": hashlib.sha256(
            "\n".join(heads).encode("ascii")
        ).hexdigest()[:16],
    }


#: Counter keys the ``anti_entropy`` section totals, in artifact order
#: (the schema v7 addendum in EXPERIMENTS.md documents each).
_ANTIENTROPY_KEYS = (
    "planned",
    "fired",
    "degraded_writes",
    "quorum_write_failures",
    "hints_queued",
    "hints_replayed",
    "hints_dropped",
    "hints_revoked",
    "node_crashes",
    "node_restarts",
    "partitions",
    "partition_heals",
    "slow_storms",
    "anti_entropy_rounds",
    "anti_entropy_root_matches",
    "anti_entropy_buckets",
    "anti_entropy_keys_repaired",
    "anti_entropy_skips",
    "settle_rounds",
    "pre_settle_divergent",
)


def _antientropy_summary(
    results: List[ShardResult],
) -> Optional[Dict[str, Any]]:
    """The anti-entropy section (schema v7): per-shard ``roots_converged``
    verdicts plus summed storm/sync/handoff counters (None when no
    anti-entropy phase ran).

    ``roots_converged`` is the load-bearing verdict: after a divergence
    storm with zero reads, every placement group's live Merkle roots
    agree -- only anti-entropy can make that true.  A
    ``--no-anti-entropy`` run deterministically flips it on any shard
    whose storm dropped or revoked hints -- the negative-control CI job
    asserts that campaign FAILS.
    """
    import hashlib

    shards = [r for r in results if r.kind == KIND_ANTIENTROPY]
    if not shards:
        return None
    totals = {key: 0 for key in _ANTIENTROPY_KEYS}
    all_converged = True
    evidence_passed = True
    heads: List[str] = []
    per_shard: List[Dict[str, Any]] = []
    for result in shards:
        block = dict(result.anti_entropy or {})
        for key in _ANTIENTROPY_KEYS:
            totals[key] += int(block.get(key, 0))
        all_converged = all_converged and bool(
            block.get("roots_converged", result.ok)
        )
        evidence = block.get("evidence") or {}
        evidence_passed = evidence_passed and bool(
            evidence.get("check_passed", True)
        )
        heads.append(str(evidence.get("heads_digest")))
        block.update(
            {
                "shard_id": result.shard_id,
                "seed": result.seed,
                "ok": result.ok,
                "skipped": result.skipped,
            }
        )
        per_shard.append(block)
    return {
        "shards": per_shard,
        "totals": totals,
        "all_converged": all_converged,
        "evidence_passed": evidence_passed,
        "heads_digest": hashlib.sha256(
            "\n".join(heads).encode("ascii")
        ).hexdigest()[:16],
    }


def _merged_metrics(results: List[ShardResult]) -> Optional[Dict[str, Any]]:
    """Merge every traced shard's metrics snapshot (None when untraced)."""
    from repro.shardstore.observability import merge_metrics

    snapshots = [
        result.metrics for result in results if result.metrics is not None
    ]
    if not snapshots:
        return None
    return merge_metrics(snapshots)


def result_to_json(outcome: CampaignResult) -> Dict[str, Any]:
    """Render the artifact; only ``timing`` varies between reruns."""
    spec, results = outcome.spec, outcome.results
    failures: List[Dict[str, Any]] = []
    for result in results:
        if result.expected_failure:
            continue
        for failure in result.failures:
            entry = failure.to_json()
            entry["shard_id"] = result.shard_id
            failures.append(entry)
    artifact: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "campaign": {
            "profile": spec.profile,
            "base_seed": spec.base_seed,
            "workers": spec.workers,
            "budget_seconds": spec.budget_seconds,
            "shard_count": len(results),
        },
        "totals": {
            "cases": outcome.total_cases,
            "ops": outcome.total_ops,
            "shards_run": sum(1 for r in results if not r.skipped),
            "shards_skipped": sum(1 for r in results if r.skipped),
            "failures": len(failures),
            "faults_detected": sum(
                1
                for r in results
                if r.kind == KIND_FAULT_MATRIX and r.detected
            ),
            "faults_missed": len(outcome.missed_faults),
        },
        "phases": {
            kind: _phase_summary(results, kind) for kind in ALL_KINDS
        },
        "failures": failures,
        "missed_faults": list(outcome.missed_faults),
        "fault_matrix": _fault_matrix_rows(results),
        "coverage": _coverage_summary(results),
        "traced": spec.trace,
        "skipped_shards": [r.shard_id for r in results if r.skipped],
        "passed": outcome.passed,
        "timing": {
            "wall_clock_seconds": round(outcome.wall_clock_seconds, 3),
            "cases_per_second": round(outcome.cases_per_second, 1),
            "per_shard_seconds": {
                str(shard_id): round(duration, 3)
                for shard_id, duration in sorted(
                    outcome.shard_durations.items()
                )
            },
        },
    }
    metrics = _merged_metrics(results)
    if metrics is not None:
        artifact["metrics"] = metrics
    injection = _injection_summary(results)
    if injection is not None:
        artifact["injection"] = injection
    brownout = _brownout_summary(results)
    if brownout is not None:
        artifact["brownout"] = brownout
    evidence = _evidence_summary(results)
    if evidence is not None:
        artifact["evidence"] = evidence
    cluster = _cluster_summary(results)
    if cluster is not None:
        artifact["cluster"] = cluster
    anti_entropy = _antientropy_summary(results)
    if anti_entropy is not None:
        artifact["anti_entropy"] = anti_entropy
    return artifact
