"""Parallel validation-campaign runner (section 4.4's CI loop).

The paper's checks only pay off because they run *continuously at scale*:
conformance checking runs on every code submission and executes millions
of test cases nightly in S3's CI.  This package is that loop for the
reproduction: a campaign fans the validation stack out across a process
pool -- conformance runs over every alphabet, crash-consistency
exploration, deserializer fuzzing, and the Fig. 5 fault-injection matrix
(each of the 16 re-injected bugs as an independent work unit) -- and
merges per-shard results into one JSON artifact that CI uploads.

Determinism is the design constraint throughout: every shard carries its
own seed derived from the campaign base seed (``base_seed + shard_id``),
so the artifact is byte-identical across reruns and worker counts (modulo
the ``timing`` section), and any failure replays from a single ``--seed``.
"""

from .aggregate import CampaignResult, aggregate, result_to_json
from .fault_matrix import fault_matrix_shards
from .runner import build_shards, run_campaign
from .spec import (
    SCHEMA_VERSION,
    SUITE_REGISTRY,
    CampaignSpec,
    ShardFailure,
    ShardResult,
    ShardSpec,
    smoke_spec,
)

__all__ = [
    "SCHEMA_VERSION",
    "SUITE_REGISTRY",
    "CampaignResult",
    "CampaignSpec",
    "ShardFailure",
    "ShardResult",
    "ShardSpec",
    "aggregate",
    "build_shards",
    "fault_matrix_shards",
    "result_to_json",
    "run_campaign",
    "smoke_spec",
]
