"""Anti-entropy campaign shards: divergence storms Merkle sync must heal.

The ``cluster`` suite proves read-repair is load-bearing by running
storms whose divergence only read-repair converges.  This suite proves
the *other* healer is load-bearing, by constructing storms whose
divergence read-repair provably cannot touch:

* the op stream is **write-only** (puts and deletes, never a client
  read), and the router is built with ``read_repair=False`` -- so the
  read-repair path never arms, by construction, not by luck;
* storm windows (partitions, crashes, slow nodes) are long relative to a
  deliberately tiny hint buffer, so hinted handoff overflows and drops
  the hints that would otherwise heal lagging replicas on settle, and
  quorum-failed writes revoke their hints outright;
* settlement heals every node and replays surviving hints
  (:meth:`~repro.cluster.router.ClusterRouter.settle`), after which the
  dropped/revoked-hint divergence is still there -- and the only path
  left that can converge it is Merkle anti-entropy.

The settlement gate is ``roots_converged``: per placement group, every
live member's Merkle root over that group's key domain must be equal
(:meth:`~repro.cluster.antientropy.AntiEntropyService.
converged_snapshot`).  With anti-entropy enabled the harness drives
budgeted rounds until the roots converge, then cross-validates the
Merkle verdict against raw replica bytes and the harness model.  With
``--no-anti-entropy`` the sync step is skipped and any shard whose storm
left divergence FAILS the gate -- the negative control CI asserts.

Every sequence journals through one router journal plus one journal per
node; the shard replays them through the merged-journal checker and
ships chain-head digests.  The router's ``settle`` and ``merkle_roots``
records feed the mined ``roots-converge-after-settle`` invariant.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, Optional

from repro.cluster import FLAG_VALUE, ClusterConfig, ClusterRouter
from repro.errors import (
    DegradedReadError,
    DegradedWriteError,
    KeyNotFoundError,
)
from repro.shardstore.injection import CLUSTER_PROFILES, FaultPlan
from repro.shardstore.observability.journal import Journal

__all__ = ["AntiEntropyHarness", "run_shard"]

#: Default knobs: the cluster-suite topology, but with an even smaller
#: hint buffer (divergence is the *point* here, not a side effect) and a
#: mid-stream sync cadence small enough that op-clocked background
#: rounds demonstrably run during the storm.
DEFAULT_NODES = 5
DEFAULT_OPS = 80
HINT_LIMIT = 2
KEYSPACE = 16
SYNC_INTERVAL = 16
#: Settlement budget: rounds are per-pair and bucket-budgeted, so the
#: ceiling is generous; the gate trusts the convergence check, never the
#: round count.
MAX_SETTLE_ROUNDS = 400


class AntiEntropyHarness:
    """One write-only op stream + divergence storm against one router."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int,
        *,
        num_nodes: int = DEFAULT_NODES,
        anti_entropy: bool = True,
        journal_factory: Optional[Any] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.router = ClusterRouter(
            ClusterConfig(
                num_nodes=num_nodes,
                # Read-repair is disabled by construction: even the quorum
                # read inside delete() must not heal replicas, or the
                # negative control would depend on op-mix luck.
                read_repair=False,
                hint_limit=HINT_LIMIT,
                seed=seed,
                anti_entropy=anti_entropy,
                anti_entropy_interval=SYNC_INTERVAL,
            ),
            journal_factory=journal_factory,
        )
        self.rng = random.Random(seed ^ 0xAE5EED)
        # key -> value bytes (None = certainly absent); same candidate-set
        # bookkeeping as the cluster harness, minus the read ops.
        self.model: Dict[bytes, Optional[bytes]] = {}
        self.uncertain: Dict[bytes, List[Optional[bytes]]] = {}
        self.touched: set = set()
        self.fired = 0
        self.settle_rounds = 0
        self.pre_settle_divergent = 0
        self.snapshot: Dict[str, Any] = {}

    # ------------------------------------------------------------------

    def _certain(self, key: bytes, value: Optional[bytes]) -> None:
        self.model[key] = value
        self.uncertain.pop(key, None)

    def _widen(self, key: bytes, value: Optional[bytes]) -> None:
        if key not in self.uncertain:
            self.uncertain[key] = [self.model.get(key)]
        if value in self.uncertain[key]:
            self.uncertain[key].remove(value)
        self.uncertain[key].append(value)

    def _op_put(self, key: bytes, value: bytes) -> None:
        try:
            self.router.put(key, value)
        except DegradedWriteError as exc:
            if exc.acks:
                self._widen(key, value)
            return
        self._certain(key, value)

    def _op_delete(self, key: bytes) -> None:
        try:
            self.router.delete(key)
        except KeyNotFoundError:
            return
        except DegradedReadError:
            return
        except DegradedWriteError as exc:
            if exc.acks:
                self._widen(key, None)
            return
        self._certain(key, None)

    def run(self, ops: int) -> Optional[str]:
        """Drive ``ops`` write-only operations, firing planned faults
        between them.  Writes never observe state, so there is nothing to
        check mid-stream; violations surface at settlement."""
        faults_by_op: Dict[int, List[Any]] = {}
        for fault in self.plan.faults:
            faults_by_op.setdefault(fault.op_index, []).append(fault)
        for index in range(ops):
            for fault in faults_by_op.get(index, []):
                self.router.apply_fault(fault)
                self.fired += 1
            key = b"ak-%02d" % self.rng.randrange(KEYSPACE)
            self.touched.add(key)
            if self.rng.random() < 0.78:
                self._op_put(key, b"av-%d-%d" % (self.seed, index))
            else:
                self._op_delete(key)
        return None

    # ------------------------------------------------------------------

    def settle_and_verify(self) -> Optional[str]:
        """Heal the cluster, sync (when enabled), then gate on converged
        Merkle roots and cross-validate against raw replica bytes."""
        service = self.router.antientropy
        self.router.settle()
        pre = service.converged_snapshot()
        self.pre_settle_divergent = int(pre["divergent"])
        if service.enabled:
            outcome = service.run_until_converged(MAX_SETTLE_ROUNDS)
            self.settle_rounds = int(outcome["rounds"])
        self.snapshot = service.converged_snapshot()
        service.journal_roots()
        if not self.snapshot["converged"]:
            return (
                "settlement: Merkle roots divergent in "
                f"{self.snapshot['divergent']} of {self.snapshot['groups']} "
                "placement groups; this suite performs zero reads, so "
                "anti-entropy is the only path that converges replicas"
            )
        # The Merkle verdict is a proof over the *trees*; cross-validate
        # it against raw replica bytes and the write model.
        for key in sorted(self.touched):
            states = self.router.replica_states(key)
            distinct = set(states.values())
            if len(distinct) > 1:
                detail = ", ".join(
                    f"node{nid}={'absent' if rec is None else 'v%d' % rec[0]}"
                    for nid, rec in sorted(states.items())
                )
                return (
                    f"settlement: roots converged but replicas of {key!r} "
                    f"disagree ({detail}); the tree no longer mirrors the "
                    "replica contents"
                )
            rec = next(iter(distinct)) if distinct else None
            observed = (
                rec[2]
                if rec is not None and rec[1] == FLAG_VALUE
                else None
            )
            if key in self.uncertain:
                if observed not in self.uncertain[key]:
                    return (
                        f"settlement: replicas of {key!r} hold {observed!r}, "
                        f"outside its {len(self.uncertain[key])} candidate "
                        "values"
                    )
            elif observed != self.model.get(key):
                return (
                    f"settlement: replicas of {key!r} hold {observed!r} but "
                    f"the model is certain of {self.model.get(key)!r} "
                    "(quorum-acked write lost?)"
                )
        return None


# ----------------------------------------------------------------------
# campaign entry point


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable campaign entry point: one anti-entropy work unit.

    Params: ``profile`` (a :data:`~repro.shardstore.injection.
    CLUSTER_PROFILES` name), ``sequences``, ``ops``, ``nodes``,
    ``anti_entropy``.  Sequence ``i`` derives everything from
    ``spec.seed + i``, so shards replay byte-identically for any worker
    count.
    """
    from repro.campaign.spec import ShardFailure, ShardResult
    from repro.evidence import check_cluster_journals

    profile = spec.param("profile", "partition")
    if profile not in CLUSTER_PROFILES:
        raise ValueError(f"unknown cluster storm profile {profile!r}")
    sequences = spec.param("sequences", 2)
    ops = spec.param("ops", DEFAULT_OPS)
    num_nodes = spec.param("nodes", DEFAULT_NODES)
    anti_entropy = bool(spec.param("anti_entropy", True))

    totals: Dict[str, int] = {
        "planned": 0,
        "fired": 0,
        "degraded_writes": 0,
        "quorum_write_failures": 0,
        "hints_queued": 0,
        "hints_replayed": 0,
        "hints_dropped": 0,
        "hints_revoked": 0,
        "node_crashes": 0,
        "node_restarts": 0,
        "partitions": 0,
        "partition_heals": 0,
        "slow_storms": 0,
        "anti_entropy_rounds": 0,
        "anti_entropy_root_matches": 0,
        "anti_entropy_buckets": 0,
        "anti_entropy_keys_repaired": 0,
        "anti_entropy_skips": 0,
        "settle_rounds": 0,
        "pre_settle_divergent": 0,
    }
    hints_by_node: Dict[str, Dict[str, int]] = {}
    evidence: Dict[str, Any] = {
        "sequences": 0,
        "journals": 0,
        "records": 0,
        "checked": 0,
        "corroborated": 0,
        "check_passed": True,
        "violations": [],
        "heads": [],
    }
    failures: List[ShardFailure] = []
    cases = 0
    ops_run = 0
    for i in range(sequences):
        seed = spec.seed + i
        plan = FaultPlan.generate_cluster(
            seed, ops=ops, num_nodes=num_nodes, profile=profile
        )
        journals: List[Journal] = []

        def factory(
            identity: str, meta: Dict[str, Any], _sink: List[Journal] = journals
        ) -> Journal:
            journal = Journal(meta=dict(meta, seed=seed), node=identity)
            _sink.append(journal)
            return journal

        harness = AntiEntropyHarness(
            plan,
            seed,
            num_nodes=num_nodes,
            anti_entropy=anti_entropy,
            journal_factory=factory,
        )
        detail = harness.run(ops)
        cases += 1
        ops_run += ops
        if detail is None:
            detail = harness.settle_and_verify()
        stats = harness.router.stats
        totals["planned"] += len(plan.faults)
        totals["fired"] += harness.fired
        totals["settle_rounds"] += harness.settle_rounds
        totals["pre_settle_divergent"] += harness.pre_settle_divergent
        for name in (
            "degraded_writes",
            "quorum_write_failures",
            "hints_queued",
            "hints_replayed",
            "hints_dropped",
            "hints_revoked",
            "node_crashes",
            "node_restarts",
            "partitions",
            "partition_heals",
            "slow_storms",
            "anti_entropy_rounds",
            "anti_entropy_root_matches",
            "anti_entropy_buckets",
            "anti_entropy_keys_repaired",
            "anti_entropy_skips",
        ):
            totals[name] += stats[name]
        for nid, counters in sorted(harness.router.hint_stats.items()):
            slot = hints_by_node.setdefault(
                str(nid),
                {"queued": 0, "dropped": 0, "replayed": 0, "revoked": 0},
            )
            for name in slot:
                slot[name] += counters.get(name, 0)
        heads = harness.router.close()
        report = check_cluster_journals(
            [journal.entries for journal in journals], require_seal=True
        )
        evidence["sequences"] += 1
        evidence["journals"] += len(journals)
        evidence["records"] += report.records
        evidence["checked"] += report.checked
        evidence["corroborated"] += report.corroborated
        evidence["heads"].extend(head for _, head in sorted(heads.items()))
        if not report.passed:
            evidence["check_passed"] = False
            for violation in report.violations[:4]:
                if len(evidence["violations"]) < 16:
                    evidence["violations"].append({"seed": seed, **violation})
            if detail is None:
                detail = (
                    "merged-journal replay found "
                    f"{report.violation_count} violations"
                )
        if detail is not None:
            failures.append(
                ShardFailure(
                    kind=spec.kind,
                    seed=seed,
                    detail=detail,
                    fault=f"anti-entropy:{profile}",
                )
            )
            break
    heads = evidence.pop("heads")
    evidence["heads_digest"] = hashlib.sha256(
        "\n".join(heads).encode("ascii")
    ).hexdigest()[:16]
    block: Dict[str, Any] = {
        "profile": profile,
        "nodes": num_nodes,
        "replication": 3,
        "anti_entropy": anti_entropy,
        "roots_converged": not failures,
        **totals,
        "hints_by_node": hints_by_node,
        "evidence": evidence,
    }
    return ShardResult(
        shard_id=spec.shard_id,
        kind=spec.kind,
        seed=spec.seed,
        cases=cases,
        ops=ops_run,
        failures=failures,
        anti_entropy=block,
    )
