"""Campaign and shard specifications (the picklable work-unit contract).

A campaign is compiled into a flat list of :class:`ShardSpec` work units
before any process is spawned.  Each spec is plain data -- strings, ints,
floats -- so it pickles across a ``ProcessPoolExecutor`` boundary, and each
carries its own ``seed`` (``base_seed + shard_id``), so the unit replays
deterministically no matter which worker runs it or in what order.

Checkers consume specs through their module-level
``run_shard(spec) -> ShardResult`` entry points (see
:func:`repro.core.conformance.run_shard` and friends); the campaign runner
only dispatches on ``spec.kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Version stamp for the campaign JSON artifact (documented in
#: EXPERIMENTS.md).  Bump when the schema changes shape.
#: v2: adds the observability sections -- top-level ``metrics``, per-shard
#: and per-failure ``trace``/``fault_events``.
#: v3: adds the failure-injection phase -- per-shard ``injection`` blocks
#: and the aggregated top-level ``injection`` section.
#: v4: adds the brownout/overload storm dimension -- injection blocks gain
#: admission/shedding identity plus shed/hedge/slow-trip/deadline-violation
#: counters, and the aggregate gains a top-level ``brownout`` section.
#: v5: adds the evidence plane -- journaled injection shards carry
#: per-shard journal record counts, chained journal digests, and
#: trace-conformance verdicts; the aggregate gains a top-level
#: ``evidence`` section.
#: v6: adds the cluster dimension -- shards of kind ``cluster`` carry a
#: per-shard ``cluster`` block (consistency verdict, partitions fired,
#: read-repairs, handoff/rebalance counters, merged-journal evidence)
#: and the aggregate gains a top-level ``cluster`` section.
#: v7: adds the anti-entropy dimension -- shards of kind ``anti-entropy``
#: carry a per-shard ``anti_entropy`` block (Merkle ``roots_converged``
#: settlement verdict, sync-round/bucket/repair counters, per-node hint
#: overflow/revocation breakdown, merged-journal evidence) and the
#: aggregate gains a top-level ``anti_entropy`` section; cluster blocks
#: gain a per-node ``hints`` breakdown.
SCHEMA_VERSION = 7

#: Campaign suites: which slice of the shard plan a run compiles.  The CLI
#: builds its ``--suite`` choices and help text from this registry, so a
#: new suite lands in ``repro campaign --help`` by being added here.
SUITE_REGISTRY: Dict[str, str] = {
    "full": "every phase: conformance, crash, fuzz, fault matrix, injection",
    "injection": "failure-injection storms only (section 4.4 contract)",
    "brownout": (
        "gray-failure storms only: slow-disk brownouts and arrival "
        "overloads against the deadline-aware admission plane"
    ),
    "cluster": (
        "multi-node storms only: quorum conformance under node crashes, "
        "partitions and slow nodes, with merged-journal replay"
    ),
    "anti-entropy": (
        "divergence storms only: partition + hint-overflow storms with "
        "zero post-storm reads, so Merkle anti-entropy is the only path "
        "that converges replicas (read-repair provably cannot fire)"
    ),
}

#: Shard kinds, dispatched by the runner to the owning checker module.
KIND_CONFORMANCE = "conformance"
KIND_CRASH = "crash"
KIND_FUZZ = "fuzz"
KIND_FAULT_MATRIX = "fault-matrix"
KIND_INJECTION = "injection"
KIND_CLUSTER = "cluster"
KIND_ANTIENTROPY = "anti-entropy"

ALL_KINDS = (
    KIND_CONFORMANCE,
    KIND_CRASH,
    KIND_FUZZ,
    KIND_FAULT_MATRIX,
    KIND_INJECTION,
    KIND_CLUSTER,
    KIND_ANTIENTROPY,
)


@dataclass(frozen=True)
class ShardSpec:
    """One picklable unit of campaign work.

    ``params`` holds only plain data (the checker interprets it); ``seed``
    is the single number needed to replay the shard by hand.
    """

    shard_id: int
    kind: str
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @staticmethod
    def make(
        shard_id: int, kind: str, seed: int, **params: Any
    ) -> "ShardSpec":
        """Build a spec from keyword params (sorted for determinism)."""
        return ShardSpec(
            shard_id=shard_id,
            kind=kind,
            seed=seed,
            params=tuple(sorted(params.items())),
        )


@dataclass
class ShardFailure:
    """One check violation found by a shard, ready for the artifact."""

    kind: str
    seed: int
    detail: str
    fault: Optional[str] = None  # injected fault name, if any
    minimized: Optional[List[str]] = None  # minimized op reproducer
    #: Observability evidence from a focused replay of the failing input
    #: (present when the campaign ran with tracing enabled).
    trace: Optional[List[Dict[str, Any]]] = None
    fault_events: Optional[List[Dict[str, Any]]] = None

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "seed": self.seed,
            "detail": self.detail,
        }
        if self.fault is not None:
            out["fault"] = self.fault
        if self.minimized is not None:
            out["minimized"] = list(self.minimized)
        if self.trace is not None:
            out["trace"] = list(self.trace)
        if self.fault_events is not None:
            out["fault_events"] = list(self.fault_events)
        return out


@dataclass
class ShardResult:
    """What one shard reports back to the aggregator.

    ``cases`` counts whatever the shard's checker calls a test case
    (sequences, fuzz inputs, crash states, schedules); ``ops`` counts
    individual operations where that is meaningful.  ``expected_failure``
    marks fault-matrix shards, where *finding* the injected bug is the
    passing outcome.
    """

    shard_id: int
    kind: str
    seed: int
    cases: int = 0
    ops: int = 0
    failures: List[ShardFailure] = field(default_factory=list)
    expected_failure: bool = False
    detector: str = ""  # fault-matrix: which checker hunted the fault
    fault: Optional[str] = None  # fault-matrix: the injected fault name
    coverage_lines: Optional[List[Tuple[str, int]]] = None
    skipped: bool = False  # budget exhausted before this shard ran
    #: Observability sections (present when the campaign traced this shard):
    #: a metrics snapshot, the structured fault-event log, and the tail of
    #: the shard's ring-buffer trace.
    metrics: Optional[Dict[str, Any]] = None
    fault_events: Optional[List[Dict[str, Any]]] = None
    trace: Optional[List[Dict[str, Any]]] = None
    #: Injection-shard summary: plan/harness identity plus fault and
    #: self-healing counters (planned/armed/fired faults, retries, breaker
    #: trips, readmissions, demotions, stranded/repaired/quarantined).
    injection: Optional[Dict[str, Any]] = None
    #: Cluster-shard summary: storm profile, consistency verdict, quorum
    #: degradation counters, handoff/read-repair/rebalance counters and
    #: the merged multi-journal evidence verdict.
    cluster: Optional[Dict[str, Any]] = None
    #: Anti-entropy-shard summary: divergence-storm identity, the Merkle
    #: ``roots_converged`` settlement verdict, sync-round/repair counters,
    #: per-node hint overflow/revocation breakdown and the merged
    #: multi-journal evidence verdict.
    anti_entropy: Optional[Dict[str, Any]] = None

    @property
    def detected(self) -> bool:
        """Fault-matrix verdict: did the checker find the injected bug?"""
        return bool(self.failures)

    @property
    def ok(self) -> bool:
        """Did this shard meet its goal (no bug found, or bug detected)?"""
        if self.skipped:
            return True
        if self.expected_failure:
            return self.detected
        return not self.failures


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to compile and run one campaign."""

    profile: str = "full"
    #: Which phases to compile -- a :data:`SUITE_REGISTRY` name.
    suite: str = "full"
    workers: int = 2
    base_seed: int = 0
    budget_seconds: Optional[float] = None
    # conformance phase
    conformance_shards_per_alphabet: int = 4
    sequences_per_shard: int = 25
    ops_per_sequence: int = 60
    # crash phase
    crash_shards: int = 4
    crash_prefix_ops: int = 24
    crash_max_states: int = 96
    # fuzz phase
    fuzz_iterations: int = 4000
    fuzz_exhaustive_len: int = 1
    # fault matrix
    fault_matrix: bool = True
    fault_matrix_sequences: int = 8
    # failure-injection phase (section 4.4 storms + recovery contract)
    injection_shards: int = 4
    injection_sequences: int = 4
    injection_ops: int = 40
    #: Disable the node's disk circuit breaker in injection shards -- the
    #: negative configuration: permanent-fault plans must then FAIL.
    breaker_enabled: bool = True
    #: Disable load shedding in admission-enabled (brownout/overload)
    #: shards -- the negative configuration: storm plans must then FAIL
    #: their ``deadline_violations == 0`` settlement gate.
    shedding_enabled: bool = True
    # cluster phase (multi-node quorum storms)
    cluster_shards: int = 3
    cluster_sequences: int = 2
    cluster_ops: int = 80
    cluster_nodes: int = 5
    #: Disable read-repair in cluster shards -- the negative
    #: configuration: storm plans must then FAIL their replica-convergence
    #: settlement gate (revoked/dropped hints leave divergence only
    #: read-repair heals).
    read_repair_enabled: bool = True
    # anti-entropy phase (divergence storms healed by Merkle sync alone)
    antientropy_shards: int = 3
    antientropy_sequences: int = 2
    antientropy_ops: int = 80
    antientropy_nodes: int = 5
    #: Disable Merkle anti-entropy in anti-entropy shards -- the negative
    #: configuration: divergence storms run with zero post-storm reads, so
    #: without anti-entropy nothing converges replicas and every shard
    #: must FAIL its ``roots_converged`` settlement gate.
    anti_entropy_enabled: bool = True
    # coverage is collected on the first store-alphabet shard only
    # (sys.settrace costs ~10x; one shard is enough for blind-spot stats)
    coverage: bool = True
    # observability: thread a RingRecorder through every store/node built
    # by conformance, crash, and fault-matrix shards; the artifact then
    # carries metrics, fault-event logs, and failure traces
    trace: bool = False
    #: Evidence plane: journal every injection-shard op sequence into an
    #: in-memory chained journal, replay it through the trace checker in
    #: the shard, and record journal digests + check verdicts (schema v5
    #: ``evidence`` sections).  Deterministic across workers.
    journal: bool = False


def smoke_spec(
    workers: int = 2,
    base_seed: int = 0,
    budget_seconds: Optional[float] = None,
    trace: bool = False,
    suite: str = "full",
    breaker_enabled: bool = True,
    shedding_enabled: bool = True,
    journal: bool = False,
    read_repair_enabled: bool = True,
    anti_entropy_enabled: bool = True,
) -> CampaignSpec:
    """The per-commit CI profile: every phase, small budgets (~tens of
    seconds on two workers), still detecting all 16 Fig. 5 bugs."""
    if suite not in SUITE_REGISTRY:
        raise ValueError(f"unknown campaign suite {suite!r}")
    return CampaignSpec(
        profile="smoke",
        suite=suite,
        workers=workers,
        base_seed=base_seed,
        budget_seconds=budget_seconds,
        trace=trace,
        conformance_shards_per_alphabet=1,
        sequences_per_shard=6,
        ops_per_sequence=40,
        crash_shards=1,
        crash_prefix_ops=14,
        crash_max_states=48,
        fuzz_iterations=600,
        fuzz_exhaustive_len=1,
        fault_matrix=True,
        fault_matrix_sequences=8,
        injection_shards=4,
        injection_sequences=2,
        injection_ops=40,
        breaker_enabled=breaker_enabled,
        shedding_enabled=shedding_enabled,
        journal=journal,
        cluster_shards=3,
        cluster_sequences=2,
        cluster_ops=80,
        cluster_nodes=5,
        read_repair_enabled=read_repair_enabled,
        antientropy_shards=3,
        antientropy_sequences=2,
        antientropy_ops=80,
        antientropy_nodes=5,
        anti_entropy_enabled=anti_entropy_enabled,
        coverage=True,
    )
