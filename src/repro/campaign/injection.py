"""Failure-injection conformance: the section 4.4 contract under a storm.

Each shard of the ``injection`` campaign phase replays conformance PBT
while a seeded :class:`~repro.shardstore.injection.FaultPlan` fires faults
at (operation count, disk, extent) coordinates, then asserts the paper's
two-sided contract:

* **during the storm** every operation either conforms to the model or
  fails with a *typed* error -- a transient ``IoError`` escaping the node
  request plane (instead of being retried and wrapped as
  ``RetryableError``) is itself a conformance failure;
* **after the storm** a recovery pass must restore full conformance:
  scrub-repair heals corrupt-but-recoverable chunks and quarantines the
  rest, drains succeed, a clean reboot works, a final scrub is clean, and
  every key untouched by any failed operation still holds exactly its
  model value.

Two harnesses cover the two planes:

* :class:`InjectionStoreHarness` extends the single-store conformance
  harness with plan-driven arming, silent bit-flip corruption (with the
  uncertainty relaxation that corruption forces: a cache-served read can
  no longer pin down on-disk state), and a deterministic
  ``recover_and_verify`` pass.
* :class:`InjectionNodeHarness` drives the multi-disk ``StorageNode``
  request plane, where the tolerance machinery (retry/backoff, the
  per-disk circuit breaker, degraded mode) must *absorb* the storm:
  settlement requires flush/drain to eventually succeed, which under a
  permanent-fault plan only happens because the breaker demotes the dying
  disk.  Run with the breaker disabled, the same plan must fail -- the CI
  negative test that proves the self-healing is load-bearing.

The ``brownout`` and ``overload`` node profiles extend the storm into the
gray-failure dimension: a slow disk ramps its per-IO latency, or arrival
bursts outpace the admission clock.  Under these plans the node runs with
its deadline-aware admission plane enabled; a shed
(``OverloadedError``/``DeadlineExceededError``) is a *clean* typed failure
raised before any substrate IO, so -- unlike a mid-IO transient -- it
never smears model uncertainty.  The settlement gate additionally
requires ``deadline_violations == 0``: requests that ran past their
deadline instead of being shed.  With shedding disabled
(``--no-shedding``) the same storm accumulates violations and the gate
fails -- the deterministic negative control proving the shedding is
load-bearing.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

if TYPE_CHECKING:
    from repro.campaign.spec import ShardResult, ShardSpec

from repro.core.alphabet import (
    Alphabet,
    BiasConfig,
    OpSpec,
    Operation,
    _key_args,
    _no_args,
    _put_args,
    store_alphabet,
)
from repro.core.conformance import CheckFailure, Harness, StoreHarness
from repro.shardstore.config import FIRST_DATA_EXTENT, StoreConfig
from repro.shardstore.disk import DiskGeometry, FailureMode, FaultKind
from repro.shardstore.errors import (
    DeadlineExceededError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    RetryableError,
    ShardStoreError,
)
from repro.shardstore.injection import (
    FAULT_BIT_FLIP,
    FAULT_BURST,
    FAULT_HEAL,
    FAULT_PERMANENT,
    FAULT_PERMANENT_DISK,
    FAULT_SLOW_DISK,
    FAULT_TORN_WRITE,
    FAULT_TRANSIENT_READ,
    FAULT_TRANSIENT_WRITE,
    FaultInjector,
    FaultPlan,
    PlannedFault,
)
from repro.shardstore.observability import (
    NULL_RECORDER,
    Journal,
    Recorder,
    RingRecorder,
)
from repro.shardstore.resilience import (
    AdmissionConfig,
    BreakerConfig,
    RetryPolicy,
)
from repro.shardstore.rpc import StorageNode

__all__ = [
    "InjectionStoreHarness",
    "InjectionNodeHarness",
    "injection_node_alphabet",
    "injection_storm_alphabet",
    "storm_admission",
    "run_shard",
]

#: Gray-failure storm profiles: these run with the admission plane on.
STORM_PROFILES = ("brownout", "overload")

#: The storm SLO, tighter than the node's defaults: campaign sequences are
#: short, so the deadline must be breachable within one storm window while
#: healthy traffic (whose per-op cost is a few units against an arrival
#: interval of 8) still never comes near it.
STORM_DEADLINE_UNITS = 96
STORM_MAX_BACKLOG_UNITS = 256

#: Storm sequences are longer than point-fault sequences: backlog has to
#: *accumulate* across a latency ramp or a held-arrival burst before the
#: deadline can be breached.
STORM_OPS = 160


def storm_admission(shedding: bool) -> AdmissionConfig:
    """The admission config storm shards run under (both polarities)."""
    if shedding:
        return AdmissionConfig(
            deadline_units=STORM_DEADLINE_UNITS,
            max_backlog_units=STORM_MAX_BACKLOG_UNITS,
        )
    return AdmissionConfig.no_shedding(
        deadline_units=STORM_DEADLINE_UNITS,
        max_backlog_units=STORM_MAX_BACKLOG_UNITS,
    )

#: The storm geometry: the same small config conformance uses, so faults
#: reach reclamation/rotation paths quickly.
_NUM_EXTENTS = 12
_DATA_EXTENTS = tuple(range(FIRST_DATA_EXTENT, _NUM_EXTENTS))


def _storm_config(
    seed: int, recorder: Recorder, journal: Optional[Journal] = None
) -> StoreConfig:
    return StoreConfig(
        geometry=DiskGeometry(
            num_extents=_NUM_EXTENTS, extent_size=4096, page_size=128
        ),
        seed=seed,
        recorder=recorder,
        retry_policy=RetryPolicy(),
        journal=journal,
    )


def _aim_write(system: Any, planned_extent: int) -> int:
    """Steer a write fault at an extent the store will actually write.

    Planned extents are drawn uniformly, but writes concentrate on the
    scheduler's pending queues; arming a random extent mostly misses.  The
    plan's extent stays the deterministic tie-breaker among candidates.
    """
    pending = sorted(
        extent
        for extent, queue in system.store.scheduler._queues.items()
        if queue and extent in _DATA_EXTENTS
    )
    if pending:
        return pending[planned_extent % len(pending)]
    return planned_extent


def _aim_read(system: Any, planned_extent: int) -> int:
    """Steer a read/corruption fault at an extent holding durable bytes."""
    disk = system.disk
    populated = [
        extent for extent in _DATA_EXTENTS if disk.write_pointer(extent) > 0
    ]
    if populated:
        return populated[planned_extent % len(populated)]
    return planned_extent


def injection_node_alphabet() -> Alphabet:
    """Request-plane ops for node storms (no control-plane interference:
    the plan owns disk lifecycle; the breaker owns demotion)."""
    return Alphabet(
        [
            OpSpec("Put", 3.0, _put_args),
            OpSpec("Get", 3.0, _key_args),
            OpSpec("Delete", 1.0, _key_args),
            OpSpec("Flush", 0.6, _no_args),
            OpSpec("Drain", 0.8, _no_args),
            OpSpec("Scrub", 0.3, _no_args),
        ]
    )


def injection_storm_alphabet() -> Alphabet:
    """Drain-heavier mix for brownout/overload storms.

    Slow disks only *show* their latency when queued writeback actually
    hits the medium, so storms flush/drain more often than the point-fault
    alphabet -- a write-heavy tenant on a browned-out node, not a pathological
    workload.
    """
    return Alphabet(
        [
            OpSpec("Put", 3.0, _put_args),
            OpSpec("Get", 2.0, _key_args),
            OpSpec("Delete", 0.7, _key_args),
            OpSpec("Flush", 1.0, _no_args),
            OpSpec("Drain", 1.6, _no_args),
            OpSpec("Scrub", 0.3, _no_args),
        ]
    )


class InjectionStoreHarness(StoreHarness):
    """Single-store conformance under a plan-driven fault storm."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        *,
        recorder: Recorder = NULL_RECORDER,
        journal: Optional[Journal] = None,
    ) -> None:
        super().__init__(
            None,
            seed,
            config=_storm_config(seed, recorder, journal),
            recorder=recorder,
        )
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.armed = 0
        self.corrupted = False
        self.quarantined_keys: Set[bytes] = set()
        self.repaired_keys: Set[bytes] = set()

    # ------------------------------------------------------------------

    def apply(self, index: int, op: Operation) -> Optional[CheckFailure]:
        for fault in self.injector.due(index):
            self._inject(fault)
        if self.corrupted:
            # Silent corruption breaks the "successful read pins state"
            # rule: a get served from cache says nothing about the flipped
            # bytes on disk.  Re-smear uncertainty before every operation
            # so only the recovery pass (which scrubs the medium) may
            # re-establish certainty.
            self._smear_uncertainty()
        failure = super().apply(index, op)
        if (
            failure is not None
            and self.corrupted
            and "unexpected CorruptionError" in failure.message
        ):
            # With flipped bits on the medium, any operation that touches
            # the bad chunk (compaction, reclamation, eviction) may surface
            # CorruptionError: detected-not-wrong is exactly the contract.
            self.has_failed = True
            return None
        return failure

    def _inject(self, fault: PlannedFault) -> None:
        disk = self.system.disk
        if fault.kind == FAULT_BIT_FLIP:
            extent = _aim_read(self.system, fault.extent)
            if disk.corrupt(extent) is not None:
                self.corrupted = True
                self.has_failed = True
                self.armed += 1
            return
        if fault.kind == FAULT_TRANSIENT_READ:
            extent = _aim_read(self.system, fault.extent)
            disk.arm_fault(extent, FailureMode.ONCE, reads=True, writes=False)
        elif fault.kind == FAULT_TRANSIENT_WRITE:
            extent = _aim_write(self.system, fault.extent)
            disk.arm_fault(extent, FailureMode.ONCE, reads=False, writes=True)
        elif fault.kind == FAULT_TORN_WRITE:
            extent = _aim_write(self.system, fault.extent)
            disk.arm_fault(
                extent,
                FailureMode.ONCE,
                reads=False,
                writes=True,
                kind=FaultKind.TORN_WRITE,
            )
        elif fault.kind == FAULT_PERMANENT:
            disk.arm_fault(_aim_write(self.system, fault.extent), FailureMode.PERMANENT)
        else:  # pragma: no cover - plan generation never emits others here
            raise ValueError(f"store plan cannot inject {fault.kind!r}")
        self.armed += 1
        self.has_failed = True

    def _smear_uncertainty(self) -> None:
        for key in self.model.keys():
            entry = self._uncertain.setdefault(key, set())
            entry.add(self.model.get(key))
            entry.add(None)

    # ------------------------------------------------------------------

    @property
    def fired(self) -> int:
        """Faults that actually hit an IO (armed ones may never fire)."""
        stats = self.system.disk.stats
        return stats.injected_failures + stats.injected_corruptions

    def recover_and_verify(self) -> Optional[str]:
        """The post-storm contract: scrub-repair + reboot restore health.

        Returns a failure detail string, or None when recovery conformed.
        """
        certain: Dict[bytes, bytes] = {}
        for key in self.model.keys():
            if key not in self._uncertain:
                certain[key] = self.model.get(key)
        self.system.disk.clear_faults()
        # Warm pass: the cache may still hold clean bytes for chunks whose
        # on-disk copy is corrupt, so repairing before reboot can rewrite
        # them; after reboot those keys would only be quarantinable.
        try:
            self._absorb_repair(self.store.scrub_repair(), certain)
            self.store.drain()
        except ShardStoreError as exc:
            return (
                "recovery: warm scrub-repair/drain failed after faults "
                f"cleared: {type(exc).__name__}: {exc}"
            )
        try:
            self.system.clean_reboot()
        except ShardStoreError as exc:
            return (
                "recovery: clean reboot failed after faults cleared "
                f"(forward-progress violation): {type(exc).__name__}: {exc}"
            )
        try:
            self._absorb_repair(self.store.scrub_repair(), certain)
            final = self.store.scrub()
        except ShardStoreError as exc:
            return f"recovery: post-reboot scrub failed: {type(exc).__name__}: {exc}"
        if not final.clean:
            key, message = final.errors[0]
            return (
                "recovery: scrub still dirty after repair+quarantine: "
                f"{key!r}: {message}"
            )
        failure = self._verify_certain(certain)
        if failure is not None:
            return failure
        return self._probe_fresh_writes()

    def _absorb_repair(self, report: Any, certain: Dict[bytes, bytes]) -> Optional[str]:
        self.repaired_keys.update(report.repaired)
        for key in report.quarantined:
            # Quarantine is only legal for keys some failure touched; a
            # certain key has no failure to blame.
            if key in certain:
                return f"recovery: scrub quarantined untouched key {key!r}"
            self.quarantined_keys.add(key)
            if self.model.contains(key):
                self.model.delete(key)
            self._uncertain.pop(key, None)
        return None

    def _verify_certain(self, certain: Dict[bytes, bytes]) -> Optional[str]:
        for key in sorted(certain):
            try:
                value = self.store.get(key)
            except ShardStoreError as exc:
                return (
                    f"recovery: certain key {key!r} unreadable after "
                    f"recovery: {type(exc).__name__}: {exc}"
                )
            if value != certain[key]:
                return (
                    f"recovery: certain key {key!r} holds wrong data after "
                    "recovery"
                )
        return None

    def _probe_fresh_writes(self) -> Optional[str]:
        probe = b"__recovery_probe__"
        try:
            self.store.put(probe, b"alive")
            self.store.drain()
            if self.store.get(probe) != b"alive":
                return "recovery: fresh probe read returned wrong data"
            self.store.delete(probe)
        except ShardStoreError as exc:
            return (
                "recovery: fresh write/read/delete probe failed: "
                f"{type(exc).__name__}: {exc}"
            )
        return None


class InjectionNodeHarness(Harness):
    """Node request plane under a storm: self-healing must absorb it."""

    SETTLE_ATTEMPTS = 16
    PROBE_KEY = b"__injection_probe__"

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        num_disks: int = 3,
        *,
        breaker_enabled: bool = True,
        admission: Optional[AdmissionConfig] = None,
        recorder: Recorder = NULL_RECORDER,
        journal: Optional[Journal] = None,
    ) -> None:
        self.node = StorageNode(
            num_disks=num_disks,
            config=_storm_config(seed, recorder, journal),
            retry_policy=RetryPolicy(),
            breaker=(
                BreakerConfig() if breaker_enabled else BreakerConfig.disabled()
            ),
            admission=admission,
        )
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.model: Dict[bytes, bytes] = {}
        self._uncertain: Dict[bytes, Set[Optional[bytes]]] = {}
        self.has_failed = False
        self.armed = 0
        self.storm_events = 0

    # ------------------------------------------------------------------

    def apply(self, index: int, op: Operation) -> Optional[CheckFailure]:
        for fault in self.injector.due(index):
            self._inject(fault)
        handler = getattr(self, f"_op_{op.name.lower()}", None)
        if handler is None:
            return CheckFailure(index, op, f"unknown operation {op.name}")
        try:
            message = handler(*op.args)
        except ShardStoreError as exc:
            return CheckFailure(
                index, op, f"unexpected {type(exc).__name__}: {exc}"
            )
        if message is not None:
            return CheckFailure(index, op, message)
        return None

    def _inject(self, fault: PlannedFault) -> None:
        system = self.node.systems[fault.disk]
        disk = system.disk
        if fault.kind == FAULT_HEAL:
            disk.clear_faults()
            disk.set_latency(1)
            return
        if fault.kind == FAULT_SLOW_DISK:
            # A gray failure: the disk keeps answering, just slowly.  No
            # uncertainty -- slow is not wrong -- but the admission plane
            # (EWMA, SLOW trip, hedged reads) must react.
            disk.set_latency(max(1, fault.arg))
            self.storm_events += 1
            return
        if fault.kind == FAULT_BURST:
            self.node.hold_arrivals(fault.arg)
            self.storm_events += 1
            return
        if fault.kind == FAULT_PERMANENT_DISK:
            for extent in _DATA_EXTENTS:
                disk.arm_fault(extent, FailureMode.PERMANENT)
            self.armed += len(_DATA_EXTENTS)
        elif fault.kind == FAULT_TRANSIENT_READ:
            extent = _aim_read(system, fault.extent)
            disk.arm_fault(extent, FailureMode.ONCE, reads=True, writes=False)
            self.armed += 1
        elif fault.kind == FAULT_TRANSIENT_WRITE:
            extent = _aim_write(system, fault.extent)
            disk.arm_fault(extent, FailureMode.ONCE, reads=False, writes=True)
            self.armed += 1
        elif fault.kind == FAULT_TORN_WRITE:
            extent = _aim_write(system, fault.extent)
            disk.arm_fault(
                extent,
                FailureMode.ONCE,
                reads=False,
                writes=True,
                kind=FaultKind.TORN_WRITE,
            )
            self.armed += 1
        else:  # pragma: no cover - node plans never emit bit flips
            raise ValueError(f"node plan cannot inject {fault.kind!r}")
        self.has_failed = True

    @property
    def fired(self) -> int:
        return sum(
            system.disk.stats.injected_failures for system in self.node.systems
        )

    # ------------------------------------------------------------------
    # storm operations (section 4.4 typed-error contract)

    @staticmethod
    def _escaped(exc: ShardStoreError) -> Optional[str]:
        """The error-contract audit: raw transient IoErrors must not
        reach the node API (the request plane retries and wraps them)."""
        if isinstance(exc, IoError) and exc.transient:
            return (
                "transient IoError escaped the node request plane "
                f"unwrapped: {exc}"
            )
        return None

    def _note_uncertain(self, key: bytes, attempted: Optional[bytes]) -> None:
        entry = self._uncertain.setdefault(key, set())
        entry.add(self.model.get(key))
        entry.add(attempted)

    def _op_put(self, key: bytes, value: bytes) -> Optional[str]:
        try:
            self.node.put(key, value)
        except (OverloadedError, DeadlineExceededError):
            # Shed before any substrate IO: a typed clean failure that
            # provably left the store unchanged -- no uncertainty smear.
            return None
        except (RetryableError, IoError) as exc:
            escaped = self._escaped(exc)
            if escaped is not None:
                return escaped
            self.has_failed = True
            self._note_uncertain(key, value)
            return None
        self.model[key] = value
        self._uncertain.pop(key, None)
        return None

    def _op_get(self, key: bytes) -> Optional[str]:
        model_value = self.model.get(key)
        allowed: Set[Optional[bytes]] = {model_value}
        allowed |= self._uncertain.get(key, set())
        try:
            value: Optional[bytes] = self.node.get(key)
        except (OverloadedError, DeadlineExceededError):
            # Shed (and no viable hedge): clean failure, state untouched.
            return None
        except NotFoundError:
            value = None
        except (RetryableError, IoError) as exc:
            escaped = self._escaped(exc)
            if escaped is not None:
                return escaped
            return None  # typed failure, no data: allowed; state untouched
        if value in allowed:
            if value is not None:
                self._uncertain.pop(key, None)
            return None
        return (
            f"get({key!r}) returned wrong data under injection "
            f"({len(allowed)} allowed values)"
        )

    def _op_delete(self, key: bytes) -> Optional[str]:
        try:
            self.node.delete(key)
        except (OverloadedError, DeadlineExceededError):
            # Shed before the routing entry was dropped: state untouched.
            return None
        except KeyNotFoundError:
            if key in self._uncertain:
                if None not in self._uncertain[key]:
                    return (
                        "delete raised KeyNotFoundError for a key that "
                        "cannot be absent"
                    )
                self._uncertain.pop(key, None)
                self.model.pop(key, None)
                return None
            if key in self.model:
                return "delete raised KeyNotFoundError but the model has the key"
            return None
        except (RetryableError, IoError) as exc:
            escaped = self._escaped(exc)
            if escaped is not None:
                return escaped
            self.has_failed = True
            self._note_uncertain(key, None)
            return None
        if key in self.model:
            del self.model[key]
        elif key not in self._uncertain:
            return "delete succeeded but the model lacks the key"
        self._uncertain.pop(key, None)
        return None

    def _op_flush(self) -> Optional[str]:
        return self._background(self.node.flush)

    def _op_drain(self) -> Optional[str]:
        return self._background(self.node.drain)

    def _op_scrub(self) -> Optional[str]:
        # Mid-storm scrubs tolerate dirty reports (pending/torn state);
        # cleanliness is asserted by the settlement pass.
        return self._background(self.node.scrub_all)

    def _background(self, fn: Any) -> Optional[str]:
        try:
            fn()
        except (RetryableError, IoError) as exc:
            escaped = self._escaped(exc)
            if escaped is not None:
                return escaped
            self.has_failed = True
        return None

    # ------------------------------------------------------------------

    def settle_and_verify(self) -> Optional[str]:
        """Post-storm settlement: the node must regain availability.

        Transient faults are absorbed by retries; a permanently failing
        disk keeps failing drains until the breaker trips, demotes it and
        migrates/strands its shards -- after which drains succeed without
        it.  With the breaker disabled there is no isolation mechanism and
        the settlement loop exhausts: the deterministic negative case CI
        relies on.

        Under an admission-enabled storm the gate additionally requires
        ``deadline_violations == 0``: every request that could not meet
        its deadline must have been *shed* (typed, pre-IO), never allowed
        to run late.  Violations only accrue with shedding disabled, so
        ``--no-shedding`` deterministically fails here -- the brownout
        negative control.  Settlement does **not** heal disk latency: a
        still-slow disk must have been isolated by the SLOW breaker trip,
        exactly as a dying disk must have been isolated by an error trip.
        """
        violations = self.node.stats.deadline_violations
        if violations:
            return (
                f"{violations} requests ran past their logical deadline "
                "without being shed (load-shedding disabled or mis-sized): "
                "the deadline-aware admission plane is load-bearing"
            )
        if self.node.admission is not None:
            # Post-storm cool-down: release any held arrivals and advance
            # the op clock far enough to drain every admission backlog, so
            # settlement measures recovered behaviour, not residual queue.
            self.node.advance_clock(self.node.admission.max_backlog_units * 4)
        certain = {
            key: value
            for key, value in self.model.items()
            if key not in self._uncertain
        }
        last = "never attempted"
        for _ in range(self.SETTLE_ATTEMPTS):
            try:
                self.node.flush()
                self.node.drain()
                break
            except (RetryableError, IoError) as exc:
                last = f"{type(exc).__name__}: {exc}"
        else:
            return (
                f"node failed to settle after {self.SETTLE_ATTEMPTS} "
                f"flush/drain rounds (last error: {last}); the failing disk "
                "was never isolated"
            )
        self.node.scrub_repair_all()
        failure = self._verify_certain(certain)
        if failure is not None:
            return failure
        return self._probe_fresh_writes()

    def _verify_certain(self, certain: Dict[bytes, bytes]) -> Optional[str]:
        for key in sorted(certain):
            try:
                value = self.node.get(key)
            except (RetryableError, IoError) as exc:
                target = self.node.route_of(key)
                if target is not None and (
                    not self.node.in_service(target)
                    or self.node.degraded(target)
                ):
                    # Stranded on a demoted disk: honest, typed
                    # unavailability, not silent data loss.
                    continue
                return (
                    f"certain key {key!r} unreadable on a healthy disk: "
                    f"{type(exc).__name__}: {exc}"
                )
            except NotFoundError:
                return f"certain key {key!r} lost after settlement"
            if value != certain[key]:
                return f"certain key {key!r} holds wrong data after settlement"
        return None

    def _probe_fresh_writes(self) -> Optional[str]:
        """Fresh writes must eventually work, client-style: a probe that
        lands on a not-yet-tripped dying disk fails with a typed error and
        is retried; each failure feeds the breaker until the disk is
        demoted and steering avoids it.  Never succeeding means the node
        lost write availability for good."""
        last = "never attempted"
        for _ in range(self.SETTLE_ATTEMPTS):
            try:
                self.node.put(self.PROBE_KEY, b"alive")
                self.node.drain()
                if self.node.get(self.PROBE_KEY) != b"alive":
                    return "post-settlement probe read returned wrong data"
                self.node.delete(self.PROBE_KEY)
                return None
            except (RetryableError, IoError) as exc:
                escaped = self._escaped(exc)
                if escaped is not None:
                    return escaped
                last = f"{type(exc).__name__}: {exc}"
        return (
            "post-settlement fresh writes never succeeded after "
            f"{self.SETTLE_ATTEMPTS} attempts (last error: {last})"
        )


# ----------------------------------------------------------------------
# campaign entry point


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable campaign entry point: one injection work unit.

    Params: ``harness`` (store/node), ``profile`` (a
    :data:`~repro.shardstore.injection.STORE_PROFILES` /
    :data:`~repro.shardstore.injection.NODE_PROFILES` name), ``sequences``,
    ``ops``, ``num_disks``, ``breaker_enabled``, ``shedding_enabled``,
    ``admission`` (defaults on for the ``brownout``/``overload`` profiles),
    ``trace``.  All randomness derives from ``spec.seed`` (sequence ``i``
    uses ``seed + i`` for both its fault plan and its operation stream), so
    shards replay byte-identically for any worker count.
    """
    from repro.campaign.spec import ShardFailure, ShardResult

    harness_kind = spec.param("harness", "store")
    profile = spec.param("profile", "transient")
    storm = profile in STORM_PROFILES
    sequences = spec.param("sequences", 6)
    ops = spec.param("ops", STORM_OPS if storm else 40)
    num_disks = spec.param("num_disks", 3)
    breaker_enabled = bool(spec.param("breaker_enabled", True))
    shedding_enabled = bool(spec.param("shedding_enabled", True))
    admission_enabled = bool(spec.param("admission", storm))
    trace_enabled = bool(spec.param("trace", False))
    journal_enabled = bool(spec.param("journal", False))
    admission: Optional[AdmissionConfig] = None
    if harness_kind == "node" and admission_enabled:
        admission = storm_admission(shedding_enabled)
    shard_recorder = RingRecorder() if trace_enabled else None
    recorder: Recorder = shard_recorder if shard_recorder else NULL_RECORDER
    if shard_recorder is not None:
        shard_recorder.event(
            "shard",
            kind=spec.kind,
            harness=harness_kind,
            profile=profile,
            seed=spec.seed,
        )

    if harness_kind == "node":
        alphabet = (
            injection_storm_alphabet() if storm else injection_node_alphabet()
        )
        ctx_kwargs: Dict[str, Any] = {"num_disks": num_disks}
    else:
        alphabet = store_alphabet()
        ctx_kwargs = {}

    totals: Dict[str, int] = {
        "planned": 0,
        "armed": 0,
        "fired": 0,
        "retries": 0,
        "breaker_trips": 0,
        "readmissions": 0,
        "demotions": 0,
        "shards_stranded": 0,
        "repaired": 0,
        "quarantined": 0,
        "storm_events": 0,
        "shed_overload": 0,
        "shed_deadline": 0,
        "hedges": 0,
        "slow_trips": 0,
        "deadline_violations": 0,
        "retry_budget_exhausted": 0,
        "replica_writes": 0,
    }
    failures: List[ShardFailure] = []
    cases = 0
    ops_run = 0
    evidence: Optional[Dict[str, Any]] = None
    if journal_enabled:
        evidence = {
            "sequences": 0,
            "records": 0,
            "checked": 0,
            "skipped": 0,
            "check_passed": True,
            "violations": [],
            "heads": [],
        }
    for i in range(sequences):
        seed = spec.seed + i
        plan = FaultPlan.generate(
            seed,
            ops=ops,
            extents=_DATA_EXTENTS,
            profile=profile,
            num_disks=num_disks if harness_kind == "node" else 0,
        )
        # One journal per sequence: each sequence is its own fresh
        # store/model pair, so each journal replays independently through
        # the trace checker (in-memory; only digests reach the artifact).
        journal: Optional[Journal] = None
        if journal_enabled:
            journal = Journal(
                meta={
                    "source": "campaign-injection",
                    "harness": harness_kind,
                    "profile": profile,
                    "seed": seed,
                }
            )
            if shard_recorder is not None:
                journal.attach_recorder(shard_recorder)
        if harness_kind == "node":
            harness: Any = InjectionNodeHarness(
                plan,
                seed,
                num_disks=num_disks,
                breaker_enabled=breaker_enabled,
                admission=admission,
                recorder=recorder,
                journal=journal,
            )
        else:
            harness = InjectionStoreHarness(
                plan, seed, recorder=recorder, journal=journal
            )
        sequence = alphabet.generate_sequence(
            random.Random(seed), ops, BiasConfig(), **ctx_kwargs
        )
        failure = harness.run(sequence)
        cases += 1
        ops_run += len(sequence)
        if failure is None:
            if harness_kind == "node":
                detail = harness.settle_and_verify()
            else:
                detail = harness.recover_and_verify()
            if detail is not None:
                failure = CheckFailure(
                    len(sequence), Operation("Recover", ()), detail
                )
        totals["planned"] += len(plan.faults)
        totals["armed"] += harness.armed
        totals["fired"] += harness.fired
        if harness_kind == "node":
            stats = harness.node.stats
            totals["retries"] += stats.retries
            totals["breaker_trips"] += stats.breaker_trips
            totals["readmissions"] += stats.readmissions
            totals["demotions"] += stats.demotions
            totals["shards_stranded"] += stats.shards_stranded
            totals["repaired"] += stats.repaired
            totals["quarantined"] += stats.quarantined
            totals["storm_events"] += harness.storm_events
            totals["shed_overload"] += stats.shed_overload
            totals["shed_deadline"] += stats.shed_deadline
            totals["hedges"] += stats.hedges
            totals["slow_trips"] += stats.slow_trips
            totals["deadline_violations"] += stats.deadline_violations
            totals["retry_budget_exhausted"] += stats.retry_budget_exhausted
            totals["replica_writes"] += stats.replica_writes
        else:
            totals["retries"] += harness.store.retry_count
            totals["repaired"] += len(harness.repaired_keys)
            totals["quarantined"] += len(harness.quarantined_keys)
        if journal is not None and evidence is not None:
            from repro.evidence import check_journal

            head = journal.close()
            if shard_recorder is not None:
                shard_recorder.journal = None
            report = check_journal(journal.entries, require_seal=True)
            evidence["sequences"] += 1
            evidence["records"] += journal.records_written
            evidence["checked"] += report.checked
            evidence["skipped"] += report.skipped
            evidence["heads"].append(head)
            if not report.passed:
                evidence["check_passed"] = False
                for violation in report.violations[:4]:
                    if len(evidence["violations"]) < 16:
                        evidence["violations"].append(
                            {"seed": seed, **violation}
                        )
        if failure is not None:
            snap = shard_recorder.snapshot() if shard_recorder else None
            failures.append(
                ShardFailure(
                    kind=spec.kind,
                    seed=seed,
                    detail=str(failure),
                    fault=f"injection:{profile}",
                    trace=snap["trace"] if snap else None,
                    fault_events=snap["fault_events"] if snap else None,
                )
            )
            break
    shard_snap = shard_recorder.snapshot() if shard_recorder else None
    injection_block: Dict[str, Any] = {
        "harness": harness_kind,
        "profile": profile,
        "breaker_enabled": breaker_enabled,
        "admission_enabled": admission is not None,
        "shedding_enabled": shedding_enabled,
        **totals,
    }
    if evidence is not None:
        # Collapse per-sequence chain heads into one digest: equal digests
        # mean byte-identical journals, regardless of worker count.
        import hashlib

        heads = evidence.pop("heads")
        evidence["heads_digest"] = hashlib.sha256(
            "\n".join(heads).encode("ascii")
        ).hexdigest()[:16]
        injection_block["evidence"] = evidence
    return ShardResult(
        shard_id=spec.shard_id,
        kind=spec.kind,
        seed=spec.seed,
        cases=cases,
        ops=ops_run,
        failures=failures,
        detector="failure-injection conformance (section 4.4)",
        injection=injection_block,
        metrics=shard_snap["metrics"] if shard_snap else None,
        fault_events=shard_snap["fault_events"] if shard_snap else None,
        trace=shard_snap["trace"] if shard_snap else None,
    )
