"""Cluster campaign shards: conformance PBT through the quorum router.

Each shard replays ``sequences`` independent op streams against a fresh
:class:`~repro.cluster.router.ClusterRouter` while a node-granular fault
storm (:meth:`~repro.shardstore.injection.FaultPlan.generate_cluster`)
crashes, partitions and slows a strict minority of nodes mid-stream.
The harness keeps the flat reference model plus *candidate sets* for
keys whose quorum writes failed with partial acks (the typed
:class:`~repro.errors.DegradedWriteError` contract: zero acks means the
cluster is provably unchanged; one ack means {applied, not-applied}
until an observation of the newest candidate collapses it).

Settlement asserts the three cluster-level guarantees:

1. **durability** -- after healing every node, no quorum-acknowledged
   write may be lost or corrupted (the storm planner never takes down
   more than a minority, so W durable replicas always survive);
2. **convergence** -- after one read sweep, every touched key's
   preference replicas must hold byte-identical records.  Two divergence
   sources exist mid-storm: hinted-handoff overflow (the hint buffer is
   deliberately small here) and quorum-failed writes whose partial acks
   were never rolled back (hints are *revoked* on quorum failure, so no
   background path heals them).  Only read-repair converges these, which
   is exactly what the ``--no-read-repair`` negative control proves by
   failing this gate;
3. **availability** -- a fresh probe write/read/delete must succeed.

Every sequence journals through one router journal plus one journal per
node (distinct chain identities); the shard replays them through the
merged-journal checker (:func:`repro.evidence.check_cluster_journals`)
and ships chain-head digests in the artifact's ``cluster`` section.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import ClusterConfig, ClusterRouter
from repro.errors import (
    DegradedReadError,
    DegradedWriteError,
    KeyNotFoundError,
)
from repro.shardstore.injection import CLUSTER_PROFILES, FaultPlan
from repro.shardstore.observability.journal import Journal

__all__ = ["ClusterHarness", "run_shard"]

#: Default knobs: a 5-node ring with 3-way replication and small hint
#: buffers, so multi-window storms overflow handoff and make read-repair
#: observable (and its absence fatal) at smoke scale.
DEFAULT_NODES = 5
DEFAULT_OPS = 80
HINT_LIMIT = 4
KEYSPACE = 16


class ClusterHarness:
    """One op-stream + storm run against one fresh router."""

    def __init__(
        self,
        plan: FaultPlan,
        seed: int,
        *,
        num_nodes: int = DEFAULT_NODES,
        read_repair: bool = True,
        journal_factory: Optional[Any] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.router = ClusterRouter(
            ClusterConfig(
                num_nodes=num_nodes,
                read_repair=read_repair,
                hint_limit=HINT_LIMIT,
                seed=seed,
            ),
            journal_factory=journal_factory,
        )
        self.rng = random.Random(seed ^ 0x5EED)
        # key -> value bytes (None = certainly absent / never written)
        self.model: Dict[bytes, Optional[bytes]] = {}
        # key -> candidate values in version order, newest last; a value of
        # None is the absent/tombstone candidate.
        self.uncertain: Dict[bytes, List[Optional[bytes]]] = {}
        self.touched: set = set()
        self.fired = 0

    # ------------------------------------------------------------------
    # candidate-set bookkeeping

    def _certain(self, key: bytes, value: Optional[bytes]) -> None:
        self.model[key] = value
        self.uncertain.pop(key, None)

    def _widen(self, key: bytes, value: Optional[bytes]) -> None:
        if key not in self.uncertain:
            self.uncertain[key] = [self.model.get(key)]
        if value in self.uncertain[key]:
            self.uncertain[key].remove(value)
        self.uncertain[key].append(value)  # newest candidate last

    def _observe(self, key: bytes, value: Optional[bytes]) -> Optional[str]:
        """A quorum read of ``key`` saw ``value`` (None = absent)."""
        if key not in self.uncertain:
            expected = self.model.get(key)
            if value != expected:
                return (
                    f"get({key!r}) saw {value!r} but the model is certain "
                    f"of {expected!r}"
                )
            return None
        candidates = self.uncertain[key]
        if value not in candidates:
            return (
                f"get({key!r}) saw {value!r}, outside its "
                f"{len(candidates)} candidate values"
            )
        if value == candidates[-1]:
            # Observed the newest version: quorum reads are monotone in
            # version, so the set collapses.
            self._certain(key, value)
        return None

    # ------------------------------------------------------------------
    # op handlers (each returns a violation string or None)

    def _op_put(self, key: bytes, value: bytes) -> Optional[str]:
        try:
            self.router.put(key, value)
        except DegradedWriteError as exc:
            if exc.acks:
                self._widen(key, value)
            return None  # typed, zero-ack: provably unchanged
        self._certain(key, value)
        return None

    def _op_get(self, key: bytes) -> Optional[str]:
        try:
            got: Optional[bytes] = self.router.get(key)
        except KeyNotFoundError:
            got = None
        except DegradedReadError:
            return None  # typed unavailability: no observation made
        return self._observe(key, got)

    def _op_delete(self, key: bytes) -> Optional[str]:
        try:
            self.router.delete(key)
        except KeyNotFoundError:
            return self._observe(key, None)
        except DegradedReadError:
            return None
        except DegradedWriteError as exc:
            if exc.acks:
                self._widen(key, None)
            return None
        self._certain(key, None)
        return None

    def _op_contains(self, key: bytes) -> Optional[str]:
        try:
            exists = self.router.contains(key)
        except DegradedReadError:
            return None
        if key not in self.uncertain:
            expected = self.model.get(key) is not None
            if exists != expected:
                return (
                    f"contains({key!r}) said {exists} but the model is "
                    f"certain of {expected}"
                )
            return None
        candidates = self.uncertain[key]
        if exists and all(c is None for c in candidates):
            return f"contains({key!r}) said present; every candidate is absent"
        if not exists and None not in candidates:
            return f"contains({key!r}) said absent; every candidate is present"
        return None

    # ------------------------------------------------------------------

    def run(self, ops: int) -> Optional[str]:
        """Drive ``ops`` random operations, firing planned faults between
        them; returns the first consistency violation, if any."""
        faults_by_op: Dict[int, List[Any]] = {}
        for fault in self.plan.faults:
            faults_by_op.setdefault(fault.op_index, []).append(fault)
        for index in range(ops):
            for fault in faults_by_op.get(index, []):
                self.router.apply_fault(fault)
                self.fired += 1
            key = b"ck-%02d" % self.rng.randrange(KEYSPACE)
            self.touched.add(key)
            roll = self.rng.random()
            if roll < 0.50:
                failure = self._op_put(key, b"cv-%d-%d" % (self.seed, index))
            elif roll < 0.78:
                failure = self._op_get(key)
            elif roll < 0.90:
                failure = self._op_delete(key)
            else:
                failure = self._op_contains(key)
            if failure is not None:
                return f"op {index}: {failure}"
        return None

    def settle_and_verify(self) -> Optional[str]:
        """Heal the cluster, then check durability, convergence and
        availability (see the module docstring)."""
        self.router.settle()
        # 1 + read sweep: every touched key re-read through the quorum path
        # (which is also what arms read-repair for gate 2).
        for key in sorted(self.touched):
            failure = self._op_get(key)
            if failure is not None:
                return f"settlement: {failure} (quorum-acked write lost?)"
        for key, value in sorted(self.model.items()):
            if key in self.uncertain or value is None:
                continue
            try:
                got = self.router.get(key)
            except KeyNotFoundError:
                return (
                    f"settlement: quorum-acknowledged write {key!r} lost "
                    "after healing a minority outage"
                )
            if got != value:
                return (
                    f"settlement: quorum-acknowledged write {key!r} holds "
                    "wrong data after healing"
                )
        # 2: replica convergence -- the read-repair gate.
        for key in sorted(self.touched):
            states = self.router.replica_states(key)
            distinct = {
                record for record in states.values()
            }
            if len(distinct) > 1:
                detail = ", ".join(
                    f"node{nid}={'absent' if rec is None else 'v%d' % rec[0]}"
                    for nid, rec in sorted(states.items())
                )
                return (
                    f"settlement: replicas of {key!r} never converged "
                    f"({detail}); read-repair is the only path that heals "
                    "revoked-hint and dropped-hint divergence"
                )
        # 3: availability probe.
        probe = b"ck-probe"
        try:
            self.router.put(probe, b"alive")
            if self.router.get(probe) != b"alive":
                return "settlement: probe read returned wrong data"
            self.router.delete(probe)
        except (DegradedWriteError, DegradedReadError) as exc:
            return (
                "settlement: fresh writes unavailable after healing "
                f"({type(exc).__name__}: {exc})"
            )
        return None


# ----------------------------------------------------------------------
# campaign entry point


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable campaign entry point: one cluster work unit.

    Params: ``profile`` (a :data:`~repro.shardstore.injection.
    CLUSTER_PROFILES` name), ``sequences``, ``ops``, ``nodes``,
    ``read_repair``.  Sequence ``i`` derives everything from
    ``spec.seed + i``, so shards replay byte-identically for any worker
    count.
    """
    from repro.campaign.spec import ShardFailure, ShardResult
    from repro.evidence import check_cluster_journals

    profile = spec.param("profile", "cluster-mixed")
    if profile not in CLUSTER_PROFILES:
        raise ValueError(f"unknown cluster storm profile {profile!r}")
    sequences = spec.param("sequences", 2)
    ops = spec.param("ops", DEFAULT_OPS)
    num_nodes = spec.param("nodes", DEFAULT_NODES)
    read_repair = bool(spec.param("read_repair", True))

    totals: Dict[str, int] = {
        "planned": 0,
        "fired": 0,
        "degraded_writes": 0,
        "quorum_write_failures": 0,
        "quorum_read_failures": 0,
        "read_repairs": 0,
        "hints_queued": 0,
        "hints_replayed": 0,
        "hints_dropped": 0,
        "hints_revoked": 0,
        "node_crashes": 0,
        "node_restarts": 0,
        "partitions": 0,
        "partition_heals": 0,
        "slow_storms": 0,
        "node_demotions": 0,
        "node_readmissions": 0,
        "rebalances": 0,
        "rebalance_moves": 0,
    }
    evidence: Dict[str, Any] = {
        "sequences": 0,
        "journals": 0,
        "records": 0,
        "checked": 0,
        "corroborated": 0,
        "check_passed": True,
        "violations": [],
        "heads": [],
    }
    hints_by_node: Dict[str, Dict[str, int]] = {}
    failures: List[ShardFailure] = []
    cases = 0
    ops_run = 0
    for i in range(sequences):
        seed = spec.seed + i
        plan = FaultPlan.generate_cluster(
            seed, ops=ops, num_nodes=num_nodes, profile=profile
        )
        journals: List[Journal] = []

        def factory(
            identity: str, meta: Dict[str, Any], _sink: List[Journal] = journals
        ) -> Journal:
            journal = Journal(meta=dict(meta, seed=seed), node=identity)
            _sink.append(journal)
            return journal

        harness = ClusterHarness(
            plan,
            seed,
            num_nodes=num_nodes,
            read_repair=read_repair,
            journal_factory=factory,
        )
        detail = harness.run(ops)
        cases += 1
        ops_run += ops
        if detail is None:
            detail = harness.settle_and_verify()
        stats = harness.router.stats
        totals["planned"] += len(plan.faults)
        totals["fired"] += harness.fired
        for name in (
            "degraded_writes",
            "quorum_write_failures",
            "quorum_read_failures",
            "read_repairs",
            "hints_queued",
            "hints_replayed",
            "hints_dropped",
            "hints_revoked",
            "node_crashes",
            "node_restarts",
            "partitions",
            "partition_heals",
            "slow_storms",
            "node_demotions",
            "node_readmissions",
            "rebalances",
            "rebalance_moves",
        ):
            totals[name] += stats[name]
        for nid, counters in sorted(harness.router.hint_stats.items()):
            slot = hints_by_node.setdefault(
                str(nid),
                {"queued": 0, "dropped": 0, "replayed": 0, "revoked": 0},
            )
            for name in slot:
                slot[name] += counters.get(name, 0)
        heads = harness.router.close()
        report = check_cluster_journals(
            [journal.entries for journal in journals], require_seal=True
        )
        evidence["sequences"] += 1
        evidence["journals"] += len(journals)
        evidence["records"] += report.records
        evidence["checked"] += report.checked
        evidence["corroborated"] += report.corroborated
        evidence["heads"].extend(
            head for _, head in sorted(heads.items())
        )
        if not report.passed:
            evidence["check_passed"] = False
            for violation in report.violations[:4]:
                if len(evidence["violations"]) < 16:
                    evidence["violations"].append({"seed": seed, **violation})
            if detail is None:
                detail = (
                    "merged-journal replay found "
                    f"{report.violation_count} violations"
                )
        if detail is not None:
            failures.append(
                ShardFailure(
                    kind=spec.kind,
                    seed=seed,
                    detail=detail,
                    fault=f"cluster:{profile}",
                )
            )
            break
    heads = evidence.pop("heads")
    evidence["heads_digest"] = hashlib.sha256(
        "\n".join(heads).encode("ascii")
    ).hexdigest()[:16]
    cluster_block: Dict[str, Any] = {
        "profile": profile,
        "nodes": num_nodes,
        "replication": 3,
        "read_repair": read_repair,
        "consistent": not failures,
        **totals,
        "hints_by_node": hints_by_node,
        "evidence": evidence,
    }
    return ShardResult(
        shard_id=spec.shard_id,
        kind=spec.kind,
        seed=spec.seed,
        cases=cases,
        ops=ops_run,
        failures=failures,
        cluster=cluster_block,
    )
