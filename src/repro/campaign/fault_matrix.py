"""The Fig. 5 fault-injection matrix as independent campaign work units.

Each of the paper's 16 issues is re-injected (via
:class:`repro.shardstore.faults.Fault`) and hunted by the checker the
paper attributes it to.  Every fault is one :class:`ShardSpec`, so a
campaign runs the whole matrix in parallel and the aggregated artifact
carries a machine-readable Fig. 5 (rendered back to the paper's table by
``repro fig5 --from-artifact``).

Seeds here are *pinned to the known-detecting region* -- the same pinning
as ``benchmarks/test_fig5_detection_matrix.py``, which imports its plans
from this module -- so the matrix completes in smoke time regardless of
the campaign's base seed.  The pay-as-you-go behaviour (any seed finds
the same bugs, given budget) is exercised by the throughput benchmark and
the unpinned conformance phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.shardstore.faults import Fault, detector_for

if TYPE_CHECKING:
    from .spec import CampaignSpec, ShardResult, ShardSpec

#: fault -> (alphabet name, pinned base seed, uuid magic bias).  Hunted by
#: conformance/crash-consistency PBT over a single-store harness.
PBT_PLAN: Dict[Fault, Tuple[str, int, float]] = {
    Fault.RECLAIM_OFF_BY_ONE: ("store", 42, 0.0),
    Fault.CACHE_NOT_DRAINED_ON_RESET: ("store", 0, 0.0),
    Fault.SHUTDOWN_SKIPS_METADATA_AFTER_RESET: ("store", 23, 0.0),
    Fault.RECLAIM_FORGETS_ON_READ_ERROR: ("failure", 394, 0.0),
    Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT: ("crash", 0, 0.0),
    Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET: ("crash", 20, 0.0),
    Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP: ("crash", 0, 0.0),
    Fault.MODEL_STALE_AFTER_CRASH_RECLAIM: ("crash", 3, 0.0),
    Fault.UUID_MAGIC_COLLISION_SCAN: ("crash", 174, 0.25),
}

#: fault -> (harness name, strategy, explorer iterations, explorer seed,
#: pct steps hint).  Hunted by stateless model checking; the harness
#: itself is seeded separately (``harness_seed`` in the shard params).
MC_PLAN: Dict[Fault, Tuple[str, str, int, int, int]] = {
    Fault.LOCATOR_RACE_WRITE_FLUSH: ("locator-race", "pct", 120, 3, 64),
    Fault.BUFFER_POOL_DEADLOCK: ("buffer-pool", "random", 300, 3, 64),
    Fault.LIST_REMOVE_RACE: ("list-remove", "pct", 120, 3, 64),
    Fault.COMPACTION_RECLAIM_RACE: ("compaction-reclaim", "pct", 300, 3, 128),
    Fault.BULK_CREATE_REMOVE_RACE: ("bulk-race", "pct", 300, 3, 64),
}

#: fault -> conformance harness kind, for the two faults hunted through
#: other harnesses: the node API harness and the reference-model harness.
SPECIAL_PLAN: Dict[Fault, Tuple[str, str, int]] = {
    Fault.DISK_RETURN_DROPS_SHARDS: ("node", "node", 0),
    Fault.MODEL_REUSES_LOCATORS: ("model", "store", 0),
}


def fault_matrix_shards(
    spec: "CampaignSpec", first_shard_id: int
) -> List["ShardSpec"]:
    """Compile the 16-fault matrix into shard specs (one per fault)."""
    from .spec import KIND_FAULT_MATRIX, ShardSpec

    shards: List[ShardSpec] = []
    shard_id = first_shard_id
    for fault in Fault:
        if fault in PBT_PLAN:
            alphabet, seed, bias = PBT_PLAN[fault]
            shards.append(
                ShardSpec.make(
                    shard_id,
                    KIND_FAULT_MATRIX,
                    seed,
                    mode="pbt",
                    fault=fault.name,
                    alphabet=alphabet,
                    harness="store",
                    uuid_bias=bias,
                    sequences=spec.fault_matrix_sequences,
                    ops=80,
                    trace=spec.trace,
                )
            )
        elif fault in SPECIAL_PLAN:
            harness, alphabet, seed = SPECIAL_PLAN[fault]
            detector = (
                "PBT invariant check (model artifact)"
                if harness == "model"
                else detector_for(fault)
            )
            shards.append(
                ShardSpec.make(
                    shard_id,
                    KIND_FAULT_MATRIX,
                    seed,
                    mode="pbt",
                    fault=fault.name,
                    alphabet=alphabet,
                    harness=harness,
                    detector=detector,
                    sequences=spec.fault_matrix_sequences,
                    ops=60,
                    # Matrix shards pin the node to historical fail-fast
                    # semantics: self-healing must not mask a known bug.
                    retries_disabled=True,
                    trace=spec.trace,
                )
            )
        else:
            harness, strategy, iterations, seed, steps_hint = MC_PLAN[fault]
            shards.append(
                ShardSpec.make(
                    shard_id,
                    KIND_FAULT_MATRIX,
                    seed,
                    mode="mc",
                    fault=fault.name,
                    harness=harness,
                    harness_seed=0,
                    strategy=strategy,
                    iterations=iterations,
                    pct_steps_hint=steps_hint,
                    trace=spec.trace,
                )
            )
        shard_id += 1
    return shards


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable entry point: hunt one injected fault with its checker."""
    if spec.param("mode") == "mc":
        return _run_mc_shard(spec)
    from repro.core.conformance import run_shard as conformance_run_shard

    return conformance_run_shard(spec)


def _run_mc_shard(spec: "ShardSpec") -> "ShardResult":
    """Stateless model checking of one injected concurrency fault."""
    from repro.concurrency import model
    from repro.core import concurrent_harnesses as harnesses
    from repro.shardstore.faults import FaultSet, component_of
    from repro.shardstore.observability import RingRecorder

    from .spec import ShardFailure, ShardResult

    factory_fn = {
        "locator-race": harnesses.locator_race_harness,
        "buffer-pool": harnesses.buffer_pool_harness,
        "list-remove": harnesses.list_remove_harness,
        "compaction-reclaim": harnesses.compaction_reclaim_harness,
        "bulk-race": harnesses.bulk_race_harness,
        "linearizability": harnesses.linearizability_harness,
    }[spec.param("harness")]
    fault = Fault[spec.param("fault")]
    # Model-checked harnesses replay thousands of schedules; rather than
    # trace every execution, the shard recorder logs the exploration itself
    # plus the armed fault, so traced artifacts stay deterministic and
    # bounded while every matrix row still carries observability evidence.
    recorder = RingRecorder() if spec.param("trace", False) else None
    if recorder is not None:
        recorder.event(
            "mc.explore",
            harness=spec.param("harness"),
            strategy=spec.param("strategy", "pct"),
            iterations=spec.param("iterations", 200),
        )
        recorder.fault_event(fault, component_of(fault), "armed for this shard")
    result = model(
        factory_fn(FaultSet.only(fault), spec.param("harness_seed", 0)),
        strategy=spec.param("strategy", "pct"),
        iterations=spec.param("iterations", 200),
        seed=spec.seed,
        pct_steps_hint=spec.param("pct_steps_hint", 64),
    )
    failures: List[ShardFailure] = []
    if not result.passed:
        # Evidence stays deterministic: exception type plus schedule
        # length, never object reprs (which embed addresses).
        detail = (
            f"{type(result.failure).__name__} after "
            f"{result.executions} executions "
            f"({len(result.failing_schedule or [])}-decision schedule)"
        )
        if recorder is not None:
            recorder.event(
                "mc.violation",
                failure=type(result.failure).__name__,
                executions=result.executions,
            )
        snap = recorder.snapshot() if recorder is not None else None
        failures.append(
            ShardFailure(
                kind=spec.kind,
                seed=spec.seed,
                detail=detail,
                fault=fault.name,
                trace=snap["trace"] if snap else None,
                fault_events=snap["fault_events"] if snap else None,
            )
        )
    shard_snap = recorder.snapshot() if recorder is not None else None
    return ShardResult(
        shard_id=spec.shard_id,
        kind=spec.kind,
        seed=spec.seed,
        cases=result.executions,
        ops=result.total_steps,
        failures=failures,
        expected_failure=True,
        detector=detector_for(fault),
        fault=fault.name,
        metrics=shard_snap["metrics"] if shard_snap else None,
        fault_events=shard_snap["fault_events"] if shard_snap else None,
        trace=shard_snap["trace"] if shard_snap else None,
    )
