"""Shard compilation and the multiprocess campaign executor.

``build_shards`` compiles a :class:`CampaignSpec` into a deterministic,
ordered list of work units; ``run_campaign`` executes them -- inline for
``workers <= 1``, across a ``ProcessPoolExecutor`` otherwise -- and hands
the ordered results to the aggregator.

Seed partitioning: unpinned phases (conformance, crash, fuzz) give shard
``k`` the seed ``base_seed + k * SEED_STRIDE``, so no two shards ever
draw overlapping per-sequence seeds and the result set is identical for
any worker count.  Fault-matrix shards instead carry the pinned
known-detecting seeds from :mod:`repro.campaign.fault_matrix`.

The time budget is best-effort: once ``budget_seconds`` is exhausted no
new shard is dispatched (running shards finish), and undispatched shards
are recorded as skipped in the artifact.  Byte-identical reruns are only
guaranteed when no budget cut occurs.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Tuple

from .aggregate import CampaignResult, aggregate
from .fault_matrix import fault_matrix_shards
from .spec import (
    KIND_ANTIENTROPY,
    KIND_CLUSTER,
    KIND_CONFORMANCE,
    KIND_CRASH,
    KIND_FAULT_MATRIX,
    KIND_FUZZ,
    KIND_INJECTION,
    CampaignSpec,
    ShardFailure,
    ShardResult,
    ShardSpec,
)

#: Seed distance between unpinned shards -- far larger than any
#: per-shard sequence count, so shard seed ranges never overlap.
SEED_STRIDE = 10_000

#: The conformance phase fans out over every (alphabet, harness) pair.
_CONFORMANCE_PLAN: Tuple[Tuple[str, str], ...] = (
    ("store", "store"),
    ("crash", "store"),
    ("failure", "store"),
    ("node", "node"),
    ("store", "model"),
)

#: Injection-phase coverage, cycled through ``injection_shards`` slots:
#: (harness, fault-plan profile) pairs.  The node/permanent slot is the
#: one the circuit breaker must survive -- and the one that must FAIL when
#: a campaign runs with ``breaker_enabled=False``.
_INJECTION_PLAN: Tuple[Tuple[str, str], ...] = (
    ("store", "transient"),
    ("store", "corruption"),
    ("node", "transient"),
    ("node", "permanent"),
    ("store", "mixed"),
    ("node", "mixed"),
)

#: The ``brownout`` suite's plan: gray-failure storms (latency ramps and
#: arrival bursts) against the admission-enabled node request plane.  With
#: shedding disabled (``--no-shedding``) every slot must FAIL its
#: ``deadline_violations == 0`` settlement gate -- the negative control.
_BROWNOUT_PLAN: Tuple[Tuple[str, str], ...] = (
    ("node", "brownout"),
    ("node", "overload"),
)

#: The ``cluster`` suite's plan: node-granular storm profiles, cycled
#: through ``cluster_shards`` slots.  With read-repair disabled
#: (``--no-read-repair``) every slot whose storm leaves replica
#: divergence must FAIL its convergence settlement gate -- the negative
#: control.
_CLUSTER_PLAN: Tuple[str, ...] = (
    "cluster-mixed",
    "node-crash",
    "partition",
)

#: The ``anti-entropy`` suite's plan: divergence storms against a
#: write-only, read-repair-free harness (zero reads ever fire), so the
#: Merkle sync plane is the only path that can converge replicas.  With
#: anti-entropy disabled (``--no-anti-entropy``) every slot whose storm
#: drops or revokes hints must FAIL its ``roots_converged`` settlement
#: gate -- the negative control.
_ANTIENTROPY_PLAN: Tuple[str, ...] = (
    "partition",
    "cluster-mixed",
    "node-crash",
)


def build_shards(spec: CampaignSpec) -> List[ShardSpec]:
    """Compile the campaign into its ordered, deterministic shard list."""
    shards: List[ShardSpec] = []

    def next_seed() -> int:
        return spec.base_seed + len(shards) * SEED_STRIDE

    def add_injection_shards(
        plan: Tuple[Tuple[str, str], ...] = _INJECTION_PLAN,
    ) -> None:
        from .injection import STORM_OPS, STORM_PROFILES

        for index in range(spec.injection_shards):
            harness, profile = plan[index % len(plan)]
            # Storm sequences need room for backlog to accumulate across a
            # latency ramp or burst; point-fault sequences stay short.
            ops = (
                max(spec.injection_ops, STORM_OPS)
                if profile in STORM_PROFILES
                else spec.injection_ops
            )
            shards.append(
                ShardSpec.make(
                    len(shards),
                    KIND_INJECTION,
                    next_seed(),
                    harness=harness,
                    profile=profile,
                    sequences=spec.injection_sequences,
                    ops=ops,
                    breaker_enabled=spec.breaker_enabled,
                    shedding_enabled=spec.shedding_enabled,
                    trace=spec.trace,
                    journal=spec.journal,
                )
            )

    def add_cluster_shards() -> None:
        for index in range(spec.cluster_shards):
            shards.append(
                ShardSpec.make(
                    len(shards),
                    KIND_CLUSTER,
                    next_seed(),
                    profile=_CLUSTER_PLAN[index % len(_CLUSTER_PLAN)],
                    sequences=spec.cluster_sequences,
                    ops=spec.cluster_ops,
                    nodes=spec.cluster_nodes,
                    read_repair=spec.read_repair_enabled,
                )
            )

    def add_antientropy_shards() -> None:
        for index in range(spec.antientropy_shards):
            shards.append(
                ShardSpec.make(
                    len(shards),
                    KIND_ANTIENTROPY,
                    next_seed(),
                    profile=_ANTIENTROPY_PLAN[
                        index % len(_ANTIENTROPY_PLAN)
                    ],
                    sequences=spec.antientropy_sequences,
                    ops=spec.antientropy_ops,
                    nodes=spec.antientropy_nodes,
                    anti_entropy=spec.anti_entropy_enabled,
                )
            )

    if spec.suite == "injection":
        add_injection_shards()
        return shards
    if spec.suite == "brownout":
        add_injection_shards(_BROWNOUT_PLAN)
        return shards
    if spec.suite == "cluster":
        add_cluster_shards()
        return shards
    if spec.suite == "anti-entropy":
        add_antientropy_shards()
        return shards

    for alphabet, harness in _CONFORMANCE_PLAN:
        for _ in range(spec.conformance_shards_per_alphabet):
            # Coverage is traced on the first store-alphabet shard only:
            # sys.settrace costs ~10x, and one shard suffices for the
            # blind-spot statistics (section 4.2).
            coverage = (
                spec.coverage
                and alphabet == "store"
                and harness == "store"
                and not any(
                    s.param("coverage") for s in shards
                )
            )
            shards.append(
                ShardSpec.make(
                    len(shards),
                    KIND_CONFORMANCE,
                    next_seed(),
                    alphabet=alphabet,
                    harness=harness,
                    sequences=spec.sequences_per_shard,
                    ops=spec.ops_per_sequence,
                    coverage=coverage,
                    trace=spec.trace,
                )
            )
    for _ in range(spec.crash_shards):
        shards.append(
            ShardSpec.make(
                len(shards),
                KIND_CRASH,
                next_seed(),
                mode="block",
                sequences=2,
                prefix_ops=spec.crash_prefix_ops,
                max_states=spec.crash_max_states,
                trace=spec.trace,
            )
        )
    from repro.serialization.fuzz import standard_decoders

    for name, _ in standard_decoders():
        shards.append(
            ShardSpec.make(
                len(shards),
                KIND_FUZZ,
                next_seed(),
                decoder=name,
                iterations=spec.fuzz_iterations,
                exhaustive_len=spec.fuzz_exhaustive_len,
            )
        )
    if spec.fault_matrix:
        shards.extend(fault_matrix_shards(spec, len(shards)))
    add_injection_shards()
    return shards


def execute_shard(spec: ShardSpec) -> Tuple[ShardResult, float]:
    """Top-level (picklable) dispatch: run one shard, timing it.

    Checker exceptions are converted into a failure result rather than
    poisoning the pool -- a crashed checker is a campaign finding, not a
    campaign crash.
    """
    start = time.monotonic()
    try:
        if spec.kind == KIND_CONFORMANCE:
            from repro.core.conformance import run_shard
        elif spec.kind == KIND_CRASH:
            from repro.core.crash_checker import run_shard
        elif spec.kind == KIND_FUZZ:
            from repro.serialization.fuzz import run_shard
        elif spec.kind == KIND_FAULT_MATRIX:
            from .fault_matrix import run_shard
        elif spec.kind == KIND_INJECTION:
            from .injection import run_shard
        elif spec.kind == KIND_CLUSTER:
            from .cluster import run_shard
        elif spec.kind == KIND_ANTIENTROPY:
            from .antientropy import run_shard
        else:
            raise ValueError(f"unknown shard kind {spec.kind!r}")
        result = run_shard(spec)
    except Exception as exc:  # noqa: BLE001 - shard isolation boundary
        result = ShardResult(
            shard_id=spec.shard_id,
            kind=spec.kind,
            seed=spec.seed,
            failures=[
                ShardFailure(
                    kind=spec.kind,
                    seed=spec.seed,
                    detail=(
                        f"checker crashed: {type(exc).__name__}: {exc}\n"
                        + traceback.format_exc(limit=4)
                    ),
                    fault=spec.param("fault"),
                )
            ],
            fault=spec.param("fault"),
        )
    return result, time.monotonic() - start


def run_campaign(
    spec: CampaignSpec,
    *,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run every shard of the campaign and aggregate the results."""
    emit = log or (lambda message: None)
    shards = build_shards(spec)
    emit(
        f"campaign[{spec.profile}]: {len(shards)} shards on "
        f"{spec.workers} worker(s), base seed {spec.base_seed}"
    )
    start = time.monotonic()
    results: Dict[int, ShardResult] = {}
    durations: Dict[int, float] = {}

    def over_budget() -> bool:
        return (
            spec.budget_seconds is not None
            and time.monotonic() - start >= spec.budget_seconds
        )

    def skip(shard: ShardSpec) -> None:
        results[shard.shard_id] = ShardResult(
            shard_id=shard.shard_id,
            kind=shard.kind,
            seed=shard.seed,
            skipped=True,
            fault=shard.param("fault"),
            detector=shard.param("detector", ""),
        )
        durations[shard.shard_id] = 0.0

    if spec.workers <= 1:
        for shard in shards:
            if over_budget():
                skip(shard)
                continue
            results[shard.shard_id], durations[shard.shard_id] = (
                execute_shard(shard)
            )
    else:
        queue = deque(shards)
        with ProcessPoolExecutor(max_workers=spec.workers) as pool:
            inflight: Dict = {}
            while queue or inflight:
                if over_budget() and queue:
                    for shard in queue:
                        skip(shard)
                    queue.clear()
                while queue and len(inflight) < spec.workers * 2:
                    shard = queue.popleft()
                    inflight[pool.submit(execute_shard, shard)] = shard
                if not inflight:
                    continue
                done, _ = wait(
                    set(inflight), timeout=0.25, return_when=FIRST_COMPLETED
                )
                for future in done:
                    shard = inflight.pop(future)
                    result, duration = future.result()
                    results[shard.shard_id] = result
                    durations[shard.shard_id] = duration
    wall_clock = time.monotonic() - start
    ordered = [results[shard.shard_id] for shard in shards]
    outcome = aggregate(spec, ordered, wall_clock, durations)
    emit(
        f"campaign[{spec.profile}]: {outcome.total_cases} cases in "
        f"{wall_clock:.1f}s ({outcome.cases_per_second:.0f} cases/sec), "
        f"{'PASS' if outcome.passed else 'FAIL'}"
    )
    return outcome
