"""Typed error hierarchy for the ShardStore substrate.

The paper treats data read from disk as untrusted (bit rot, transient
failures), so corruption is an *expected* error that components detect and
surface, never a crash.  Every error a component can return to a caller is a
subclass of :class:`ShardStoreError`; anything else escaping a component is a
bug (and is exactly what the panic-freedom harness in
:mod:`repro.serialization.fuzz` hunts for).

Error contract at the ``KVNode`` API surface (section 4.4)
----------------------------------------------------------

What a substrate failure looks like by the time it reaches a
``StorageNode``/``KVNode`` client.  Raw *transient* ``IoError``\\ s never
escape the node: the request plane retries them under its
:class:`~repro.shardstore.resilience.RetryPolicy` and wraps survivors.

====================================  ==============================  =========
raised by the substrate               surfaces at the node API as     retryable
====================================  ==============================  =========
``IoError(transient=True)``           ``RetryableError`` (after the   yes
                                      bounded retry budget)
``IoError(transient=False)``          ``IoError`` (permanent medium   no
                                      failure; feeds the breaker)
``CorruptionError``                   ``CorruptionError`` (or
                                      ``NotFoundError`` once scrub
                                      quarantines the key)            no
routing target out of service /       ``RetryableError``              yes
breaker-demoted disk (writes)
admission queue full (shed before     ``OverloadedError``             yes,
touching the disk)                                                    budgeted
estimated wait exceeds the request    ``DeadlineExceededError``       yes,
deadline (shed before the disk)                                       budgeted
missing key                           ``NotFoundError`` /             no
                                      ``KeyNotFoundError``
malformed request                     ``InvalidRequestError``         no
====================================  ==============================  =========

``OverloadedError`` and ``DeadlineExceededError`` are *load-shedding*
errors: the request plane rejects the call **before** any substrate IO,
so the store state is guaranteed unchanged -- there is no torn-write or
lost-ack uncertainty to track.  Both are retryable in principle, but
clients must retry under a bounded retry *budget* (see
:class:`~repro.shardstore.resilience.RetryBudget`) so that shedding does
not trigger a retry storm.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ShardStoreError(Exception):
    """Base class for all expected ShardStore errors."""


class IoError(ShardStoreError):
    """An IO to the underlying disk failed (injected or otherwise)."""

    def __init__(self, message: str, *, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient


class CorruptionError(ShardStoreError):
    """On-disk bytes failed validation (bad magic, CRC, framing, bounds)."""


class NotFoundError(ShardStoreError):
    """The requested key or locator does not exist."""


class KeyNotFoundError(NotFoundError):
    """A mutation (e.g. ``delete``) targeted a key that does not exist.

    Both `KVNode` surfaces raise this uniformly so callers never have to
    branch on a store-vs-node ``Optional`` return.
    """


class ExtentError(ShardStoreError):
    """Invalid extent operation (bounds, overfull append, bad reset)."""


class InvalidRequestError(ShardStoreError):
    """A malformed API request (empty key, oversized value, bad disk id)."""


class RetryableError(ShardStoreError):
    """The operation can be retried (e.g. disk temporarily out of service)."""


class OverloadedError(RetryableError):
    """The request was shed because the target disk's admission queue is full.

    Raised by the request plane *before* any substrate IO: the store state
    is unchanged.  Retry later, under a :class:`RetryBudget`.
    """


class DeadlineExceededError(RetryableError):
    """The request was shed because the estimated queue wait exceeds its
    logical deadline.

    Like :class:`OverloadedError` this is raised before any substrate IO,
    so the store state is unchanged.  Deadlines are measured on the node's
    deterministic op-clock, never wall time.
    """


class DegradedWriteError(RetryableError):
    """A replicated write reached fewer than its write quorum ``W``.

    Raised by the cluster router instead of blocking for unreachable
    replicas.  The write may have been applied on up to ``acks`` replicas
    (never a quorum), so its post-state is *uncertain*: the trace checker
    widens the key to {applied, not-applied} until a later read observes
    one branch.  Retry under a bounded budget; puts are idempotent at
    equal versions.
    """

    def __init__(
        self, message: str, *, acks: int = 0, required: int = 0
    ) -> None:
        super().__init__(message)
        self.acks = acks
        self.required = required


class DegradedReadError(RetryableError):
    """A replicated read reached fewer than its read quorum ``R``.

    Raised by the cluster router when too few replicas respond (down,
    partitioned, or shedding).  Reads never mutate state, so there is no
    uncertainty to track -- the caller simply retries under budget.

    ``candidates`` lists the ``(node_id, version)`` pairs of the replicas
    that *did* answer (version -1 means "replica answered absent"), the
    read-side analogue of :attr:`DegradedWriteError.acks`: divergence
    debugging starts from the error itself instead of a journal replay.
    """

    def __init__(
        self,
        message: str,
        *,
        replies: int = 0,
        required: int = 0,
        candidates: "Optional[List[Tuple[int, int]]]" = None,
    ) -> None:
        super().__init__(message)
        self.replies = replies
        self.required = required
        self.candidates: List[Tuple[int, int]] = list(candidates or [])


class AntiEntropyError(RetryableError):
    """An explicit anti-entropy sync could not reach its peer replica.

    Raised by :class:`repro.cluster.antientropy.AntiEntropyService` when a
    *requested* pairwise sync names a crashed, partitioned, demoted, or
    removed node.  Background rounds never raise it -- they skip
    unreachable pairs and retry on a later round -- so foreground traffic
    is never disturbed by a peer being down.  Retryable: the peer may be
    healed or readmitted by the time the caller retries.
    """

    def __init__(
        self, message: str, *, peer: int = -1, reason: str = "unreachable"
    ) -> None:
        super().__init__(message)
        self.peer = peer
        self.reason = reason
