"""Typed error hierarchy (re-exported from :mod:`repro.errors`) plus the
shared request validators.

The canonical exception definitions live in :mod:`repro.errors` so that
low-level modules (e.g. the serialization codec) can use them without
importing the :mod:`repro.shardstore` package, which would create an
import cycle.  Every shardstore exception subclasses one
:class:`ShardStoreError` base, so harnesses can catch a single type.

:func:`validate_key` is the one key validator both public surfaces
(:class:`~repro.shardstore.store.ShardStore` and
:class:`~repro.shardstore.rpc.StorageNode`) share -- previously each
carried its own ``_check_key`` copy, which is exactly the kind of drift
the `KVNode` protocol exists to prevent.
"""

from repro.errors import (
    CorruptionError,
    DeadlineExceededError,
    DegradedReadError,
    DegradedWriteError,
    ExtentError,
    InvalidRequestError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    RetryableError,
    ShardStoreError,
)

#: Longest accepted key, in bytes (S3 object-key limit).
MAX_KEY_LEN = 1024


def validate_key(key: object) -> None:
    """Reject malformed keys with :class:`InvalidRequestError`.

    Keys must be non-empty ``bytes`` of at most :data:`MAX_KEY_LEN` bytes.
    """
    if not isinstance(key, bytes):
        raise InvalidRequestError(f"key must be bytes, got {type(key).__name__}")
    if not key:
        raise InvalidRequestError("key must be non-empty")
    if len(key) > MAX_KEY_LEN:
        raise InvalidRequestError(f"key exceeds {MAX_KEY_LEN} bytes")


__all__ = [
    "CorruptionError",
    "DeadlineExceededError",
    "DegradedReadError",
    "DegradedWriteError",
    "ExtentError",
    "InvalidRequestError",
    "IoError",
    "KeyNotFoundError",
    "NotFoundError",
    "OverloadedError",
    "RetryableError",
    "ShardStoreError",
    "MAX_KEY_LEN",
    "validate_key",
]
