"""Typed error hierarchy (re-exported from :mod:`repro.errors`).

The canonical definitions live in :mod:`repro.errors` so that low-level
modules (e.g. the serialization codec) can use them without importing the
:mod:`repro.shardstore` package, which would create an import cycle.
"""

from repro.errors import (
    CorruptionError,
    ExtentError,
    InvalidRequestError,
    IoError,
    NotFoundError,
    RetryableError,
    ShardStoreError,
)

__all__ = [
    "CorruptionError",
    "ExtentError",
    "InvalidRequestError",
    "IoError",
    "NotFoundError",
    "RetryableError",
    "ShardStoreError",
]
