"""The IO scheduler: soft-updates writeback honouring dependency order.

ShardStore's only path to disk is ``append`` (section 2.2).  Components hand
appends to this scheduler together with an input :class:`Dependency`; the
scheduler's contract is that **an append is not issued to the durable medium
until its input dependency has persisted**.  Between the component and the
medium, every extent therefore has two write pointers:

* the *soft* write pointer -- where the next append will land, tracked here
  in memory and advanced immediately;
* the *hard* write pointer -- how far the durable medium has actually been
  written, advanced only by writeback.

Appends are split into page-sized IO records, so a crash can persist any
*prefix of pages* of a logical append (a torn append -- the enabling
mechanism of the paper's bug #10).  Records for one extent are written back
strictly in FIFO order (extent writes are sequential); across extents the
writeback order is any order consistent with dependencies, chosen by a
seeded RNG so tests are deterministic and the crash-consistency checker can
explore different orders by varying the seed.

Group commit: the production drain paths (:meth:`flush_coalesced`, or
``pump_one(coalesce=True)``) merge runs of contiguous eligible records on
one extent into a single device IO, bounded by a tunable batch window
(``batch_pages``).  Crucially the *enqueue* granularity never changes --
records are always page-sized, so the crash-state space the checker
explores (torn appends included) is identical whether or not the
production path batches.  Coalescing only collapses bookkeeping and device
IOs at writeback time, which is exactly the paper's Fig. 2 optimisation.

Crash semantics: pending records that were never pumped are simply dropped
(:meth:`drop_pending`); whatever subset writeback already applied *is* the
crash state.  The checker in :mod:`repro.core.crash_checker` drives this by
pumping a chosen number of records before crashing, or -- in block-level
mode -- by enumerating every reachable pump prefix via
:meth:`snapshot`/:meth:`restore`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .dependency import Dependency, DurabilityTracker, RecordInfo
from .disk import InMemoryDisk
from .errors import ExtentError, IoError
from .observability import NULL_RECORDER, Recorder

Buffer = Union[bytes, bytearray, memoryview]

#: Default batch window: max page records merged into one device IO by the
#: coalescing drain paths.  Tunable via :attr:`IoScheduler.batch_pages`
#: (wired to ``StoreConfig.io_batch_pages``).
DEFAULT_BATCH_PAGES = 64


class _PendingRecord:
    """One page-granular IO awaiting writeback."""

    __slots__ = ("record_id", "extent", "offset", "data", "dep", "kind", "label")

    def __init__(
        self,
        record_id: int,
        extent: int,
        offset: int,  # meaningless for resets
        data: Buffer,  # empty for resets; may be a memoryview (zero-copy)
        dep: Dependency,
        kind: str,  # "write" or "reset"
        label: str,
    ) -> None:
        self.record_id = record_id
        self.extent = extent
        self.offset = offset
        self.data = data
        self.dep = dep
        self.kind = kind
        self.label = label


@dataclass
class SchedulerStats:
    records_enqueued: int = 0
    records_written: int = 0
    resets_applied: int = 0
    ios_issued: int = 0  # contiguous same-extent runs merged at drain time
    writeback_requeues: int = 0  # failed writebacks put back for retry


class IoScheduler:
    """Orders writebacks to an :class:`InMemoryDisk` per dependency contract."""

    def __init__(
        self,
        disk: InMemoryDisk,
        tracker: DurabilityTracker,
        rng: Optional[random.Random] = None,
        recorder: Recorder = NULL_RECORDER,
        batch_pages: int = DEFAULT_BATCH_PAGES,
    ) -> None:
        self.disk = disk
        self.tracker = tracker
        self.rng = rng or random.Random(0)
        self.recorder = recorder
        self.batch_pages = batch_pages
        self.stats = SchedulerStats()
        # Per-extent FIFO queues of pending records.
        self._queues: Dict[int, List[_PendingRecord]] = {}
        # Incremental tallies so the hot queries (admission-control backlog
        # estimates, per-read reset checks, drain loops) are O(1) instead of
        # rescanning every queue.
        self._pending_total = 0
        self._pending_per_extent: Dict[int, int] = {}
        self._pending_resets: Dict[int, int] = {}
        # Soft write pointers and shadow of appended-but-not-durable bytes.
        self._soft_pointer: List[int] = [
            disk.write_pointer(e) for e in range(disk.geometry.num_extents)
        ]
        self._shadow: List[bytearray] = [
            bytearray(disk.geometry.extent_size)
            for _ in range(disk.geometry.num_extents)
        ]
        for extent in range(disk.geometry.num_extents):
            hard = disk.write_pointer(extent)
            if hard:
                self._shadow[extent][:hard] = disk.read(extent, 0, hard)

    # ------------------------------------------------------------------
    # client API

    def soft_pointer(self, extent: int) -> int:
        return self._soft_pointer[extent]

    def free_bytes(self, extent: int) -> int:
        return self.disk.geometry.extent_size - self._soft_pointer[extent]

    def append(
        self, extent: int, data: Buffer, dep: Dependency, label: str = ""
    ) -> Tuple[int, Dependency]:
        """Queue an append; returns (offset, dependency for this append).

        The returned dependency covers every page of the append; it becomes
        persistent only once all pages are durable on the medium.  ``data``
        may be any buffer (bytes, bytearray, memoryview); multi-page appends
        are segmented with memoryview slices, so no payload bytes are copied
        between here and the device write.
        """
        length = len(data)
        if not length:
            raise ExtentError("empty append")
        offset = self._soft_pointer[extent]
        if offset + length > self.disk.geometry.extent_size:
            raise ExtentError(
                f"append of {length} bytes overruns extent {extent} "
                f"(soft pointer {offset})"
            )
        page = self.disk.geometry.page_size
        queue = self._queues.get(extent)
        if queue is None:
            queue = self._queues[extent] = []
        record_info = self.tracker.record_info
        info_label = label or f"append@{extent}"
        first_seg_end = min(length, (offset // page + 1) * page - offset)
        if first_seg_end == length:
            # Fast path: the whole append lands inside one page segment.
            record_id = self.tracker.allocate()
            queue.append(
                _PendingRecord(record_id, extent, offset, data, dep, "write", label)
            )
            record_info[record_id] = RecordInfo(
                record_id, info_label, extent, offset, length, dep
            )
            record_ids: List[int] = [record_id]
        else:
            # Page-granular segments as zero-copy memoryview slices; one
            # contiguous id range per logical append (group commit keeps
            # dependency bookkeeping amortised across the batch).
            view = memoryview(data)
            bounds: List[Tuple[int, int]] = []
            cursor = 0
            seg_end = first_seg_end
            while cursor < length:
                bounds.append((cursor, seg_end))
                cursor = seg_end
                seg_end = min(length, seg_end + page)
            id_range = self.tracker.allocate_range(len(bounds))
            record_ids = list(id_range)
            for record_id, (start, end) in zip(id_range, bounds):
                queue.append(
                    _PendingRecord(
                        record_id,
                        extent,
                        offset + start,
                        view[start:end],
                        dep,
                        "write",
                        label,
                    )
                )
                record_info[record_id] = RecordInfo(
                    record_id, info_label, extent, offset + start, end - start, dep
                )
        count = len(record_ids)
        self.stats.records_enqueued += count
        self._pending_total += count
        self._pending_per_extent[extent] = (
            self._pending_per_extent.get(extent, 0) + count
        )
        self._shadow[extent][offset : offset + length] = data
        self._soft_pointer[extent] = offset + length
        if self.recorder.enabled:
            self.recorder.count("scheduler.records_enqueued", count)
            self.recorder.gauge("scheduler.queue_depth", self._pending_total)
        return offset, Dependency.on_records(self.tracker, record_ids)

    def reset(self, extent: int, dep: Dependency, label: str = "") -> Dependency:
        """Queue an extent reset ordered after ``dep`` persists.

        The soft pointer drops to zero immediately (new appends reuse the
        extent); the durable medium is reset only at writeback time, after
        the input dependency -- typically "all live chunks evacuated and
        re-indexed" -- has persisted.
        """
        record_id = self.tracker.allocate()
        record = _PendingRecord(record_id, extent, 0, b"", dep, "reset", label)
        self.tracker.record_info[record_id] = RecordInfo(
            record_id=record_id,
            label=label or f"reset@{extent}",
            extent=extent,
            offset=0,
            length=0,
            dep=dep,
            kind="reset",
        )
        self._queues.setdefault(extent, []).append(record)
        self.stats.records_enqueued += 1
        self._pending_total += 1
        self._pending_per_extent[extent] = self._pending_per_extent.get(extent, 0) + 1
        self._pending_resets[extent] = self._pending_resets.get(extent, 0) + 1
        self._soft_pointer[extent] = 0
        self._shadow[extent] = bytearray(self.disk.geometry.extent_size)
        if self.recorder.enabled:
            self.recorder.count("scheduler.records_enqueued")
            self.recorder.gauge("scheduler.queue_depth", self._pending_total)
            self.recorder.event("scheduler.reset_queued", extent=extent)
        return Dependency.on_records(self.tracker, [record_id])

    def read(self, extent: int, offset: int, length: int) -> bytes:
        """Read below the soft pointer, overlaying pending data on durable.

        Durable bytes are read through the disk (so injected read faults
        fire); pending bytes are served from the in-memory shadow, as they
        would be from a real write-back cache.
        """
        if length < 0 or offset < 0:
            raise ExtentError("negative read bounds")
        soft = self._soft_pointer[extent]
        if offset + length > soft:
            raise ExtentError(
                f"read beyond soft write pointer on extent {extent}: "
                f"[{offset}, {offset + length}) > {soft}"
            )
        hard = self.disk.write_pointer(extent)
        if offset >= hard or self._has_pending_reset(extent):
            # The durable image is stale (reset pending) or entirely behind
            # the requested range; serve purely from the shadow.
            return bytes(self._shadow[extent][offset : offset + length])
        durable_end = min(offset + length, hard)
        out = self.disk.read(extent, offset, durable_end - offset)
        if durable_end < offset + length:
            out += bytes(self._shadow[extent][durable_end : offset + length])
        return out

    def _has_pending_reset(self, extent: int) -> bool:
        return self._pending_resets.get(extent, 0) > 0

    # ------------------------------------------------------------------
    # writeback

    @property
    def pending_count(self) -> int:
        return self._pending_total

    def pending_count_for(self, extent: int) -> int:
        return self._pending_per_extent.get(extent, 0)

    def pending_cost_units(self) -> int:
        """Estimated op-clock units to write back everything pending.

        Each pending record costs one device IO at the disk's current
        ``latency_units``.  The request plane folds this into its admission
        backlog estimate so queued writebacks on a slow disk count against
        new requests' deadlines.
        """
        return self._pending_total * self.disk.latency_units

    def pending_record_ids(self) -> List[int]:
        return [r.record_id for q in self._queues.values() for r in q]

    def eligible_extents(self) -> List[int]:
        """Extents whose head-of-queue record may be issued right now."""
        out = []
        for extent, queue in self._queues.items():
            if queue and queue[0].dep.is_persistent():
                out.append(extent)
        return sorted(out)

    def pump_one(
        self,
        extent: Optional[int] = None,
        *,
        coalesce: bool = False,
        max_batch: Optional[int] = None,
    ) -> bool:
        """Write back one eligible record; returns False if none eligible.

        ``extent`` pins the choice (used by the block-level enumerator);
        otherwise the seeded RNG picks among eligible extents.

        With ``coalesce=True``, contiguous eligible write records on the
        chosen extent are merged into one device IO (the paper's Fig. 2:
        "their writebacks can be coalesced into one IO by the scheduler"),
        up to ``max_batch`` records (default: the scheduler's
        ``batch_pages`` window).  Crash-state exploration keeps this off --
        coalescing makes the merged pages atomic, coarsening the reachable
        crash states -- while the production drain path uses it.
        """
        if self.recorder.timing:
            with self.recorder.timed("scheduler.pump_one"):
                return self._pump_one(extent, coalesce=coalesce, max_batch=max_batch)
        return self._pump_one(extent, coalesce=coalesce, max_batch=max_batch)

    def _pump_one(
        self,
        extent: Optional[int] = None,
        *,
        coalesce: bool = False,
        max_batch: Optional[int] = None,
    ) -> bool:
        eligible = self.eligible_extents()
        if not eligible:
            return False
        if extent is None:
            extent = self.rng.choice(eligible)
        elif extent not in eligible:
            raise ExtentError(f"extent {extent} has no eligible record")
        queue = self._queues[extent]
        record = queue.pop(0)
        self._note_removed(record)
        if coalesce and record.kind == "write":
            window = self.batch_pages if max_batch is None else max_batch
            batch = [record]
            while (
                len(batch) < window
                and queue
                and queue[0].kind == "write"
                and queue[0].offset == batch[-1].offset + len(batch[-1].data)
                and queue[0].dep.is_persistent()
            ):
                next_record = queue.pop(0)
                self._note_removed(next_record)
                batch.append(next_record)
            if not queue:
                del self._queues[extent]
            if len(batch) > 1:
                merged = b"".join(r.data for r in batch)
                try:
                    self.disk.write(extent, batch[0].offset, merged)
                except IoError:
                    self._requeue_failed(extent, batch)
                    raise
                self.tracker.mark_durable_many(r.record_id for r in batch)
                self.stats.records_written += len(batch)
                self.stats.ios_issued += 1
                if self.recorder.enabled:
                    self.recorder.count("scheduler.records_written", len(batch))
                    self.recorder.count("scheduler.ios_issued")
                    self.recorder.gauge(
                        "scheduler.queue_depth", self._pending_total
                    )
                return True
            self._apply_or_requeue(extent, batch[0])
            return True
        if not queue:
            del self._queues[extent]
        self._apply_or_requeue(extent, record)
        return True

    def _note_removed(self, record: _PendingRecord) -> None:
        self._pending_total -= 1
        extent = record.extent
        self._pending_per_extent[extent] -= 1
        if record.kind == "reset":
            self._pending_resets[extent] -= 1

    def _apply_or_requeue(self, extent: int, record: _PendingRecord) -> None:
        try:
            self._apply(record)
        except IoError:
            self._requeue_failed(extent, [record])
            raise

    def _requeue_failed(self, extent: int, records: List[_PendingRecord]) -> None:
        """Put back records whose writeback failed, trimming any torn prefix.

        A failed IO must not lose the logical append: the record returns to
        the head of its extent queue so a later pump (after the transient
        fault clears, or after a node-level retry) can complete it.  A torn
        write may have durably landed a prefix; the surviving portion of each
        record is trimmed to start at the new hard pointer, and records the
        tear fully absorbed are marked durable after all.
        """
        hard = self.disk.write_pointer(extent)
        survivors: List[_PendingRecord] = []
        for record in records:
            if record.kind == "write":
                end = record.offset + len(record.data)
                if end <= hard:
                    # The medium absorbed this record before the fault fired
                    # (a torn batch): it is durable after all.
                    self.tracker.mark_durable(record.record_id)
                    self.stats.records_written += 1
                    continue
                if record.offset < hard:
                    record.data = record.data[hard - record.offset :]
                    record.offset = hard
                    info = self.tracker.record_info.get(record.record_id)
                    if info is not None:
                        info.offset = record.offset
                        info.length = len(record.data)
            survivors.append(record)
        if survivors:
            self._queues.setdefault(extent, [])[:0] = survivors
            self._pending_total += len(survivors)
            self._pending_per_extent[extent] = (
                self._pending_per_extent.get(extent, 0) + len(survivors)
            )
            resets = sum(1 for r in survivors if r.kind == "reset")
            if resets:
                self._pending_resets[extent] = (
                    self._pending_resets.get(extent, 0) + resets
                )
        self.stats.writeback_requeues += 1
        if self.recorder.enabled:
            self.recorder.count("scheduler.writeback_requeues")
            self.recorder.event(
                "scheduler.writeback_requeued", extent=extent, records=len(survivors)
            )

    def _apply(self, record: _PendingRecord) -> None:
        if record.kind == "reset":
            self.disk.reset(record.extent)
            self.stats.resets_applied += 1
            if self.recorder.enabled:
                self.recorder.count("scheduler.resets_applied")
        else:
            self.disk.write(record.extent, record.offset, record.data)
            self.stats.records_written += 1
            if self.recorder.enabled:
                self.recorder.count("scheduler.records_written")
        self.stats.ios_issued += 1
        self.tracker.mark_durable(record.record_id)
        if self.recorder.enabled:
            self.recorder.count("scheduler.ios_issued")
            self.recorder.gauge("scheduler.queue_depth", self._pending_total)

    def pump(self, n: int) -> int:
        """Write back up to ``n`` eligible records; returns how many."""
        if not self.recorder.enabled:
            done = 0
            while done < n and self.pump_one():
                done += 1
            return done
        with self.recorder.span("scheduler.pump", budget=n):
            done = 0
            while done < n and self.pump_one():
                done += 1
            return done

    def drain(self) -> None:
        """Write back everything pending.

        Raises :class:`IoError` if pending records remain but none are
        eligible -- a dependency that can never be satisfied, i.e. a
        forward-progress violation (section 5).
        """
        while self._pending_total:
            if not self.pump_one():
                self._raise_stuck()
            # Keep pumping.

    def flush_coalesced(self, batch_pages: Optional[int] = None) -> None:
        """Drain everything pending with group-commit batching.

        The production flush path: identical final disk state to
        :meth:`drain` (same records, same FIFO order per extent), but runs
        of contiguous eligible records are issued as single device IOs,
        bounded by the ``batch_pages`` window (default: the scheduler's
        ``batch_pages``).  Raises :class:`IoError` when stuck, exactly like
        :meth:`drain`.
        """
        while self._pending_total:
            if not self.pump_one(coalesce=True, max_batch=batch_pages):
                self._raise_stuck()

    def _raise_stuck(self) -> None:
        stuck = [
            (r.label or r.kind, r.extent) for q in self._queues.values() for r in q
        ]
        raise IoError(
            f"writeback stuck: {len(stuck)} pending records with "
            f"unsatisfiable dependencies: {stuck[:5]}",
            transient=False,
        )

    def settle_extent(self, extent: int) -> bool:
        """Write back until ``extent`` has no pending records.

        Used by the allocator before reusing a freed extent: claiming an
        extent whose reset is still pending would queue new appends behind
        it, and cross-extent evacuation dependencies could then form a
        writeback cycle.  Pumps any eligible record (progress elsewhere can
        unblock this extent); returns False if writeback gets stuck.
        """
        while self._pending_per_extent.get(extent, 0):
            if not self.pump_one():
                return False
        return True

    def drop_pending(self) -> int:
        """Crash: discard all pending records; returns how many were lost.

        Soft state is resynchronised to the durable medium.  The caller
        (recovery) then overrides pointers from the superblock.
        """
        lost = self._pending_total
        self._queues.clear()
        self._pending_total = 0
        self._pending_per_extent.clear()
        self._pending_resets.clear()
        for extent in range(self.disk.geometry.num_extents):
            hard = self.disk.write_pointer(extent)
            self._soft_pointer[extent] = hard
            self._shadow[extent] = bytearray(self.disk.geometry.extent_size)
            if hard:
                self._shadow[extent][:hard] = self.disk.read(extent, 0, hard)
        return lost

    def sync_soft_pointer(self, extent: int, pointer: int) -> None:
        """Recovery adopts a superblock-recovered soft pointer."""
        self.disk.set_write_pointer(extent, pointer)
        self._soft_pointer[extent] = pointer
        self._shadow[extent] = bytearray(self.disk.geometry.extent_size)
        if pointer:
            self._shadow[extent][:pointer] = self.disk.read(extent, 0, pointer)

    # ------------------------------------------------------------------
    # snapshot / restore (block-level crash-state enumeration)

    def snapshot(self) -> dict:
        return {
            "queues": {e: list(q) for e, q in self._queues.items()},
            "soft": list(self._soft_pointer),
            "shadow": [bytes(s) for s in self._shadow],
            "rng": self.rng.getstate(),
        }

    def restore(self, snap: dict) -> None:
        self._queues = {e: list(q) for e, q in snap["queues"].items()}
        self._soft_pointer = list(snap["soft"])
        self._shadow = [bytearray(s) for s in snap["shadow"]]
        self.rng.setstate(snap["rng"])
        self._recount_pending()

    def _recount_pending(self) -> None:
        self._pending_total = 0
        self._pending_per_extent = {}
        self._pending_resets = {}
        for extent, queue in self._queues.items():
            self._pending_per_extent[extent] = len(queue)
            self._pending_total += len(queue)
            resets = sum(1 for r in queue if r.kind == "reset")
            if resets:
                self._pending_resets[extent] = resets
