"""The IO scheduler: soft-updates writeback honouring dependency order.

ShardStore's only path to disk is ``append`` (section 2.2).  Components hand
appends to this scheduler together with an input :class:`Dependency`; the
scheduler's contract is that **an append is not issued to the durable medium
until its input dependency has persisted**.  Between the component and the
medium, every extent therefore has two write pointers:

* the *soft* write pointer -- where the next append will land, tracked here
  in memory and advanced immediately;
* the *hard* write pointer -- how far the durable medium has actually been
  written, advanced only by writeback.

Appends are split into page-sized IO records, so a crash can persist any
*prefix of pages* of a logical append (a torn append -- the enabling
mechanism of the paper's bug #10).  Records for one extent are written back
strictly in FIFO order (extent writes are sequential); across extents the
writeback order is any order consistent with dependencies, chosen by a
seeded RNG so tests are deterministic and the crash-consistency checker can
explore different orders by varying the seed.

Crash semantics: pending records that were never pumped are simply dropped
(:meth:`drop_pending`); whatever subset writeback already applied *is* the
crash state.  The checker in :mod:`repro.core.crash_checker` drives this by
pumping a chosen number of records before crashing, or -- in block-level
mode -- by enumerating every reachable pump prefix via
:meth:`snapshot`/:meth:`restore`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .dependency import Dependency, DurabilityTracker, RecordInfo
from .disk import InMemoryDisk
from .errors import ExtentError, IoError
from .observability import NULL_RECORDER, Recorder


@dataclass
class _PendingRecord:
    """One page-granular IO awaiting writeback."""

    record_id: int
    extent: int
    offset: int  # meaningless for resets
    data: bytes  # empty for resets
    dep: Dependency
    kind: str  # "write" or "reset"
    label: str


@dataclass
class SchedulerStats:
    records_enqueued: int = 0
    records_written: int = 0
    resets_applied: int = 0
    ios_issued: int = 0  # contiguous same-extent runs merged at drain time
    writeback_requeues: int = 0  # failed writebacks put back for retry


class IoScheduler:
    """Orders writebacks to an :class:`InMemoryDisk` per dependency contract."""

    def __init__(
        self,
        disk: InMemoryDisk,
        tracker: DurabilityTracker,
        rng: Optional[random.Random] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.disk = disk
        self.tracker = tracker
        self.rng = rng or random.Random(0)
        self.recorder = recorder
        self.stats = SchedulerStats()
        # Per-extent FIFO queues of pending records.
        self._queues: Dict[int, List[_PendingRecord]] = {}
        # Soft write pointers and shadow of appended-but-not-durable bytes.
        self._soft_pointer: List[int] = [
            disk.write_pointer(e) for e in range(disk.geometry.num_extents)
        ]
        self._shadow: List[bytearray] = [
            bytearray(disk.geometry.extent_size)
            for _ in range(disk.geometry.num_extents)
        ]
        for extent in range(disk.geometry.num_extents):
            hard = disk.write_pointer(extent)
            if hard:
                self._shadow[extent][:hard] = disk.read(extent, 0, hard)

    # ------------------------------------------------------------------
    # client API

    def soft_pointer(self, extent: int) -> int:
        return self._soft_pointer[extent]

    def free_bytes(self, extent: int) -> int:
        return self.disk.geometry.extent_size - self._soft_pointer[extent]

    def append(
        self, extent: int, data: bytes, dep: Dependency, label: str = ""
    ) -> Tuple[int, Dependency]:
        """Queue an append; returns (offset, dependency for this append).

        The returned dependency covers every page of the append; it becomes
        persistent only once all pages are durable on the medium.
        """
        if not data:
            raise ExtentError("empty append")
        offset = self._soft_pointer[extent]
        if offset + len(data) > self.disk.geometry.extent_size:
            raise ExtentError(
                f"append of {len(data)} bytes overruns extent {extent} "
                f"(soft pointer {offset})"
            )
        page = self.disk.geometry.page_size
        queue = self._queues.setdefault(extent, [])
        record_ids: List[int] = []
        cursor = 0
        while cursor < len(data):
            # Segment ends at the next page boundary (torn-write granularity).
            boundary = ((offset + cursor) // page + 1) * page
            seg_end = min(len(data), boundary - offset)
            segment = data[cursor:seg_end]
            record_id = self.tracker.allocate()
            record = _PendingRecord(
                record_id=record_id,
                extent=extent,
                offset=offset + cursor,
                data=segment,
                dep=dep,
                kind="write",
                label=label,
            )
            self.tracker.record_info[record_id] = RecordInfo(
                record_id=record_id,
                label=label or f"append@{extent}",
                extent=extent,
                offset=offset + cursor,
                length=len(segment),
                dep=dep,
            )
            queue.append(record)
            record_ids.append(record_id)
            self.stats.records_enqueued += 1
            cursor = seg_end
        self._shadow[extent][offset : offset + len(data)] = data
        self._soft_pointer[extent] = offset + len(data)
        if self.recorder.enabled:
            self.recorder.count("scheduler.records_enqueued", len(record_ids))
            self.recorder.gauge("scheduler.queue_depth", self.pending_count)
        return offset, Dependency.on_records(self.tracker, record_ids)

    def reset(self, extent: int, dep: Dependency, label: str = "") -> Dependency:
        """Queue an extent reset ordered after ``dep`` persists.

        The soft pointer drops to zero immediately (new appends reuse the
        extent); the durable medium is reset only at writeback time, after
        the input dependency -- typically "all live chunks evacuated and
        re-indexed" -- has persisted.
        """
        record_id = self.tracker.allocate()
        record = _PendingRecord(
            record_id=record_id,
            extent=extent,
            offset=0,
            data=b"",
            dep=dep,
            kind="reset",
            label=label,
        )
        self.tracker.record_info[record_id] = RecordInfo(
            record_id=record_id,
            label=label or f"reset@{extent}",
            extent=extent,
            offset=0,
            length=0,
            dep=dep,
            kind="reset",
        )
        self._queues.setdefault(extent, []).append(record)
        self.stats.records_enqueued += 1
        self._soft_pointer[extent] = 0
        self._shadow[extent] = bytearray(self.disk.geometry.extent_size)
        if self.recorder.enabled:
            self.recorder.count("scheduler.records_enqueued")
            self.recorder.gauge("scheduler.queue_depth", self.pending_count)
            self.recorder.event("scheduler.reset_queued", extent=extent)
        return Dependency.on_records(self.tracker, [record_id])

    def read(self, extent: int, offset: int, length: int) -> bytes:
        """Read below the soft pointer, overlaying pending data on durable.

        Durable bytes are read through the disk (so injected read faults
        fire); pending bytes are served from the in-memory shadow, as they
        would be from a real write-back cache.
        """
        if length < 0 or offset < 0:
            raise ExtentError("negative read bounds")
        soft = self._soft_pointer[extent]
        if offset + length > soft:
            raise ExtentError(
                f"read beyond soft write pointer on extent {extent}: "
                f"[{offset}, {offset + length}) > {soft}"
            )
        hard = self.disk.write_pointer(extent)
        if self._has_pending_reset(extent) or offset >= hard:
            # The durable image is stale (reset pending) or entirely behind
            # the requested range; serve purely from the shadow.
            if offset < hard and not self._has_pending_reset(extent):
                pass  # unreachable; kept for clarity
            return bytes(self._shadow[extent][offset : offset + length])
        durable_end = min(offset + length, hard)
        out = self.disk.read(extent, offset, durable_end - offset)
        if durable_end < offset + length:
            out += bytes(self._shadow[extent][durable_end : offset + length])
        return out

    def _has_pending_reset(self, extent: int) -> bool:
        return any(r.kind == "reset" for r in self._queues.get(extent, ()))

    # ------------------------------------------------------------------
    # writeback

    @property
    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending_cost_units(self) -> int:
        """Estimated op-clock units to write back everything pending.

        Each pending record costs one device IO at the disk's current
        ``latency_units``.  The request plane folds this into its admission
        backlog estimate so queued writebacks on a slow disk count against
        new requests' deadlines.
        """
        return self.pending_count * self.disk.latency_units

    def pending_record_ids(self) -> List[int]:
        return [r.record_id for q in self._queues.values() for r in q]

    def eligible_extents(self) -> List[int]:
        """Extents whose head-of-queue record may be issued right now."""
        out = []
        for extent, queue in self._queues.items():
            if queue and queue[0].dep.is_persistent():
                out.append(extent)
        return sorted(out)

    def pump_one(self, extent: Optional[int] = None, *, coalesce: bool = False) -> bool:
        """Write back one eligible record; returns False if none eligible.

        ``extent`` pins the choice (used by the block-level enumerator);
        otherwise the seeded RNG picks among eligible extents.

        With ``coalesce=True``, contiguous eligible write records on the
        chosen extent are merged into one device IO (the paper's Fig. 2:
        "their writebacks can be coalesced into one IO by the scheduler").
        Crash-state exploration keeps this off -- coalescing makes the
        merged pages atomic, coarsening the reachable crash states --
        while the production drain path uses it.
        """
        if self.recorder.timing:
            with self.recorder.timed("scheduler.pump_one"):
                return self._pump_one(extent, coalesce=coalesce)
        return self._pump_one(extent, coalesce=coalesce)

    def _pump_one(
        self, extent: Optional[int] = None, *, coalesce: bool = False
    ) -> bool:
        eligible = self.eligible_extents()
        if not eligible:
            return False
        if extent is None:
            extent = self.rng.choice(eligible)
        elif extent not in eligible:
            raise ExtentError(f"extent {extent} has no eligible record")
        queue = self._queues[extent]
        record = queue.pop(0)
        if coalesce and record.kind == "write":
            batch = [record]
            while (
                queue
                and queue[0].kind == "write"
                and queue[0].offset == batch[-1].offset + len(batch[-1].data)
                and queue[0].dep.is_persistent()
            ):
                batch.append(queue.pop(0))
            if not queue:
                del self._queues[extent]
            if len(batch) > 1:
                merged = b"".join(r.data for r in batch)
                try:
                    self.disk.write(extent, batch[0].offset, merged)
                except IoError:
                    self._requeue_failed(extent, batch)
                    raise
                for merged_record in batch:
                    self.tracker.mark_durable(merged_record.record_id)
                self.stats.records_written += len(batch)
                self.stats.ios_issued += 1
                if self.recorder.enabled:
                    self.recorder.count("scheduler.records_written", len(batch))
                    self.recorder.count("scheduler.ios_issued")
                    self.recorder.gauge(
                        "scheduler.queue_depth", self.pending_count
                    )
                return True
            self._apply_or_requeue(extent, batch[0])
            return True
        if not queue:
            del self._queues[extent]
        self._apply_or_requeue(extent, record)
        return True

    def _apply_or_requeue(self, extent: int, record: _PendingRecord) -> None:
        try:
            self._apply(record)
        except IoError:
            self._requeue_failed(extent, [record])
            raise

    def _requeue_failed(self, extent: int, records: List[_PendingRecord]) -> None:
        """Put back records whose writeback failed, trimming any torn prefix.

        A failed IO must not lose the logical append: the record returns to
        the head of its extent queue so a later pump (after the transient
        fault clears, or after a node-level retry) can complete it.  A torn
        write may have durably landed a prefix; the surviving portion of each
        record is trimmed to start at the new hard pointer, and records the
        tear fully absorbed are marked durable after all.
        """
        hard = self.disk.write_pointer(extent)
        survivors: List[_PendingRecord] = []
        for record in records:
            if record.kind == "write":
                end = record.offset + len(record.data)
                if end <= hard:
                    # The medium absorbed this record before the fault fired
                    # (a torn batch): it is durable after all.
                    self.tracker.mark_durable(record.record_id)
                    self.stats.records_written += 1
                    continue
                if record.offset < hard:
                    record.data = record.data[hard - record.offset :]
                    record.offset = hard
                    info = self.tracker.record_info.get(record.record_id)
                    if info is not None:
                        info.offset = record.offset
                        info.length = len(record.data)
            survivors.append(record)
        if survivors:
            self._queues.setdefault(extent, [])[:0] = survivors
        self.stats.writeback_requeues += 1
        if self.recorder.enabled:
            self.recorder.count("scheduler.writeback_requeues")
            self.recorder.event(
                "scheduler.writeback_requeued", extent=extent, records=len(survivors)
            )

    def _apply(self, record: _PendingRecord) -> None:
        if record.kind == "reset":
            self.disk.reset(record.extent)
            self.stats.resets_applied += 1
            if self.recorder.enabled:
                self.recorder.count("scheduler.resets_applied")
        else:
            self.disk.write(record.extent, record.offset, record.data)
            self.stats.records_written += 1
            if self.recorder.enabled:
                self.recorder.count("scheduler.records_written")
        self.stats.ios_issued += 1
        self.tracker.mark_durable(record.record_id)
        if self.recorder.enabled:
            self.recorder.count("scheduler.ios_issued")
            self.recorder.gauge("scheduler.queue_depth", self.pending_count)

    def pump(self, n: int) -> int:
        """Write back up to ``n`` eligible records; returns how many."""
        if not self.recorder.enabled:
            done = 0
            while done < n and self.pump_one():
                done += 1
            return done
        with self.recorder.span("scheduler.pump", budget=n):
            done = 0
            while done < n and self.pump_one():
                done += 1
            return done

    def drain(self) -> None:
        """Write back everything pending.

        Raises :class:`IoError` if pending records remain but none are
        eligible -- a dependency that can never be satisfied, i.e. a
        forward-progress violation (section 5).
        """
        while self.pending_count:
            if not self.pump_one():
                stuck = [
                    (r.label or r.kind, r.extent)
                    for q in self._queues.values()
                    for r in q
                ]
                raise IoError(
                    f"writeback stuck: {len(stuck)} pending records with "
                    f"unsatisfiable dependencies: {stuck[:5]}",
                    transient=False,
                )
            # Keep pumping.

    def settle_extent(self, extent: int) -> bool:
        """Write back until ``extent`` has no pending records.

        Used by the allocator before reusing a freed extent: claiming an
        extent whose reset is still pending would queue new appends behind
        it, and cross-extent evacuation dependencies could then form a
        writeback cycle.  Pumps any eligible record (progress elsewhere can
        unblock this extent); returns False if writeback gets stuck.
        """
        while any(r.extent == extent for q in self._queues.values() for r in q):
            if not self.pump_one():
                return False
        return True

    def drop_pending(self) -> int:
        """Crash: discard all pending records; returns how many were lost.

        Soft state is resynchronised to the durable medium.  The caller
        (recovery) then overrides pointers from the superblock.
        """
        lost = self.pending_count
        self._queues.clear()
        for extent in range(self.disk.geometry.num_extents):
            hard = self.disk.write_pointer(extent)
            self._soft_pointer[extent] = hard
            self._shadow[extent] = bytearray(self.disk.geometry.extent_size)
            if hard:
                self._shadow[extent][:hard] = self.disk.read(extent, 0, hard)
        return lost

    def sync_soft_pointer(self, extent: int, pointer: int) -> None:
        """Recovery adopts a superblock-recovered soft pointer."""
        self.disk.set_write_pointer(extent, pointer)
        self._soft_pointer[extent] = pointer
        self._shadow[extent] = bytearray(self.disk.geometry.extent_size)
        if pointer:
            self._shadow[extent][:pointer] = self.disk.read(extent, 0, pointer)

    # ------------------------------------------------------------------
    # snapshot / restore (block-level crash-state enumeration)

    def snapshot(self) -> dict:
        return {
            "queues": {e: list(q) for e, q in self._queues.items()},
            "soft": list(self._soft_pointer),
            "shadow": [bytes(s) for s in self._shadow],
            "rng": self.rng.getstate(),
        }

    def restore(self, snap: dict) -> None:
        self._queues = {e: list(q) for e, q in snap["queues"].items()}
        self._soft_pointer = list(snap["soft"])
        self._shadow = [bytearray(s) for s in snap["shadow"]]
        self.rng.setstate(snap["rng"])
