"""The paper's ``Dependency`` type: declarative crash-consistent ordering.

ShardStore specifies soft-updates write orderings *declaratively* (section
2.2): every append takes an input dependency and returns a new one, the IO
scheduler guarantees an append is not issued to disk until its input
dependency has persisted, and clients poll ``is_persistent()`` to learn when
an operation is durable.

A :class:`Dependency` here is a set of *parts*, each either

* a frozen set of IO record ids (writes already handed to the scheduler), or
* a :class:`FutureCell` -- a promise for writes that have not been created
  yet.  Future cells are how batched persistence is expressed: a ``put``
  returns immediately with a dependency containing a future cell that the
  LSM tree resolves at flush time with the run/metadata write records, and
  the superblock resolves pointer-update cells when its periodic flush
  actually writes a record.

``is_persistent()`` consults the :class:`DurabilityTracker`, the single
source of truth for which IO records have reached the durable medium.  The
tracker outlives crashes (durable writes stay durable; pending ones are
dropped and their ids simply never become durable), which is exactly what
lets the crash-consistency checker (section 5) evaluate each operation's
dependency *after* reboot and demand that persisted-before-crash data is
still readable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union


class RecordInfo:
    """Introspection metadata for one IO record (used by the Fig. 2 bench)."""

    __slots__ = ("record_id", "label", "extent", "offset", "length", "dep", "kind")

    def __init__(
        self,
        record_id: int,
        label: str,
        extent: int,
        offset: int,
        length: int,
        dep: "Dependency",
        kind: str = "write",  # "write" or "reset"
    ) -> None:
        self.record_id = record_id
        self.label = label
        self.extent = extent
        self.offset = offset
        self.length = length
        self.dep = dep
        self.kind = kind


class DurabilityTracker:
    """Tracks which IO record ids have reached the durable medium.

    One tracker exists per simulated system and survives reboots.  The IO
    scheduler allocates record ids from it and marks them durable as
    writebacks complete; dropped (crashed-away) records are never marked.
    """

    def __init__(self) -> None:
        self._next_id = 0
        self._durable: Set[int] = set()
        self.record_info: Dict[int, RecordInfo] = {}

    def allocate(self) -> int:
        record_id = self._next_id
        self._next_id += 1
        return record_id

    def allocate_range(self, count: int) -> range:
        """Allocate ``count`` consecutive record ids in one bump.

        Group commit allocates one id per page segment of a batched append;
        doing it in a single bump keeps the bookkeeping cost independent of
        the batch size.
        """
        start = self._next_id
        self._next_id += count
        return range(start, start + count)

    def mark_durable(self, record_id: int) -> None:
        self._durable.add(record_id)

    def mark_durable_many(self, record_ids: Iterable[int]) -> None:
        self._durable.update(record_ids)

    def is_durable(self, record_id: int) -> bool:
        return record_id in self._durable

    @property
    def durable_count(self) -> int:
        return len(self._durable)

    # -- snapshot/restore for block-level crash-state enumeration ------

    def snapshot(self) -> Tuple[int, FrozenSet[int]]:
        return self._next_id, frozenset(self._durable)

    def restore(self, snap: Tuple[int, FrozenSet[int]]) -> None:
        next_id, durable = snap
        self._next_id = next_id
        self._durable = set(durable)


class FutureCell:
    """A promise for a dependency whose writes do not exist yet."""

    __slots__ = ("label", "_resolved")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._resolved: Optional[Dependency] = None

    @property
    def resolved(self) -> Optional["Dependency"]:
        return self._resolved

    def resolve(self, dep: "Dependency") -> None:
        """Fill the promise.  Resolving twice keeps the *conjunction*.

        A memtable entry can be covered by more than one flush (e.g. a
        re-put before the first flush); requiring all resolutions keeps the
        cell conservative -- it never reports persistent early.
        """
        if self._resolved is None:
            self._resolved = dep
        else:
            self._resolved = self._resolved.and_(dep)


_Part = Union[FrozenSet[int], FutureCell]


class Dependency:
    """An immutable conjunction of write records and future promises.

    Mirrors the paper's API: combine with :meth:`and_`, poll with
    :meth:`is_persistent`.
    """

    __slots__ = ("_tracker", "_records", "_futures")

    def __init__(
        self,
        tracker: DurabilityTracker,
        records: FrozenSet[int] = frozenset(),
        futures: Tuple[FutureCell, ...] = (),
    ) -> None:
        self._tracker = tracker
        self._records = records
        self._futures = futures

    # -- constructors ---------------------------------------------------

    @classmethod
    def root(cls, tracker: DurabilityTracker) -> "Dependency":
        """The empty dependency: always persistent."""
        return cls(tracker)

    @classmethod
    def on_records(
        cls, tracker: DurabilityTracker, record_ids: Iterable[int]
    ) -> "Dependency":
        return cls(tracker, records=frozenset(record_ids))

    @classmethod
    def on_future(cls, tracker: DurabilityTracker, cell: FutureCell) -> "Dependency":
        return cls(tracker, futures=(cell,))

    # -- combinators ------------------------------------------------------

    def and_(self, other: "Dependency") -> "Dependency":
        """Conjunction: persistent only when both inputs are persistent."""
        if other._tracker is not self._tracker:
            raise ValueError("cannot combine dependencies across systems")
        futures = self._futures + tuple(
            f for f in other._futures if f not in self._futures
        )
        return Dependency(self._tracker, self._records | other._records, futures)

    @staticmethod
    def all_(deps: Iterable["Dependency"]) -> "Dependency":
        """Conjunction of many dependencies (empty iterable is an error)."""
        deps = list(deps)
        if not deps:
            raise ValueError("all_ of no dependencies; use Dependency.root")
        out = deps[0]
        for dep in deps[1:]:
            out = out.and_(dep)
        return out

    # -- queries ----------------------------------------------------------

    def is_persistent(self) -> bool:
        """True iff every write this operation depends on is durable."""
        resolved_records, unresolved = self._flatten()
        if unresolved:
            return False
        return all(self._tracker.is_durable(r) for r in resolved_records)

    def _flatten(self) -> Tuple[Set[int], List[FutureCell]]:
        """Chase future cells; return (all record ids, unresolved cells)."""
        records: Set[int] = set(self._records)
        unresolved: List[FutureCell] = []
        stack: List[FutureCell] = list(self._futures)
        seen: Set[int] = set()
        while stack:
            cell = stack.pop()
            if id(cell) in seen:
                continue
            seen.add(id(cell))
            resolved = cell.resolved
            if resolved is None:
                unresolved.append(cell)
            else:
                records |= resolved._records
                stack.extend(resolved._futures)
        return records, unresolved

    def record_ids(self) -> FrozenSet[int]:
        """All record ids currently reachable (unresolved futures excluded)."""
        records, _ = self._flatten()
        return frozenset(records)

    def unresolved_futures(self) -> List[FutureCell]:
        _, unresolved = self._flatten()
        return unresolved

    @property
    def tracker(self) -> DurabilityTracker:
        return self._tracker

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        records, unresolved = self._flatten()
        return (
            f"Dependency(records={sorted(records)}, "
            f"unresolved={[c.label for c in unresolved]})"
        )


def dependency_graph_edges(
    tracker: DurabilityTracker, record_ids: Iterable[int]
) -> List[Tuple[int, int]]:
    """Edges (prerequisite -> dependent) of the write-ordering DAG.

    Walks :attr:`DurabilityTracker.record_info` transitively from the given
    records; used by the Fig. 2 benchmark to render put dependency graphs.
    """
    edges: List[Tuple[int, int]] = []
    seen: Set[int] = set()
    stack = list(record_ids)
    while stack:
        rid = stack.pop()
        if rid in seen:
            continue
        seen.add(rid)
        info = tracker.record_info.get(rid)
        if info is None:
            continue
        for dep_id in sorted(info.dep.record_ids()):
            edges.append((dep_id, rid))
            stack.append(dep_id)
    return edges
