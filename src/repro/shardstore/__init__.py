"""The ShardStore substrate: a key-value storage node over append-only
extents with soft-updates crash consistency (sections 2 and 5 of the paper).
"""

from .buffer_cache import BufferCache
from .chunk import (
    KIND_DATA,
    KIND_RUN,
    DecodedChunk,
    Locator,
    decode_chunk,
    encode_chunk,
    frame_size,
    scan_chunks,
)
from .chunk_store import ChunkStore
from .config import (
    FIRST_DATA_EXTENT,
    METADATA_EXTENTS,
    SUPERBLOCK_EXTENTS,
    StoreConfig,
)
from .dependency import Dependency, DurabilityTracker, FutureCell
from .disk import DiskGeometry, FailureMode, FaultKind, InMemoryDisk
from .errors import (
    MAX_KEY_LEN,
    CorruptionError,
    DeadlineExceededError,
    ExtentError,
    InvalidRequestError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    RetryableError,
    ShardStoreError,
    validate_key,
)
from .faults import FAULT_CATALOG, Fault, FaultSet, component_of, detector_for
from .lsm import LsmIndex, Run
from .observability import (
    NULL_RECORDER,
    Metrics,
    NullRecorder,
    Recorder,
    RingRecorder,
    TimingRecorder,
    merge_metrics,
    render_prometheus,
    render_snapshot,
)
from .reclamation import Reclaimer, ReclaimResult
from .protocol import KVNode, Request, Response, decode_request, decode_response, dispatch, encode_request, encode_response
from .resilience import (
    AdmissionConfig,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DiskAdmission,
    DiskHealth,
    LatencyEwma,
    RetryBudget,
    RetryPolicy,
)
from .injection import FaultPlan, FaultInjector, PlannedFault
from .rpc import NodeDependency, StorageNode
from .scrub import RepairReport, ScrubReport, Scrubber
from .scheduler import IoScheduler
from .store import RebootType, ShardStore, StoreSystem
from .superblock import Superblock, SuperblockState

__all__ = [
    "AdmissionConfig",
    "BreakerConfig",
    "BreakerState",
    "BufferCache",
    "ChunkStore",
    "CircuitBreaker",
    "CorruptionError",
    "DeadlineExceededError",
    "DecodedChunk",
    "Dependency",
    "DiskAdmission",
    "DiskGeometry",
    "DurabilityTracker",
    "ExtentError",
    "DiskHealth",
    "LatencyEwma",
    "OverloadedError",
    "RetryBudget",
    "FAULT_CATALOG",
    "FIRST_DATA_EXTENT",
    "FailureMode",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSet",
    "FutureCell",
    "InMemoryDisk",
    "InvalidRequestError",
    "IoError",
    "IoScheduler",
    "KIND_DATA",
    "KIND_RUN",
    "KVNode",
    "KeyNotFoundError",
    "Locator",
    "LsmIndex",
    "MAX_KEY_LEN",
    "METADATA_EXTENTS",
    "Metrics",
    "NULL_RECORDER",
    "NodeDependency",
    "NotFoundError",
    "NullRecorder",
    "PlannedFault",
    "RebootType",
    "Recorder",
    "RepairReport",
    "RingRecorder",
    "Request",
    "Response",
    "ReclaimResult",
    "Reclaimer",
    "RetryPolicy",
    "RetryableError",
    "Run",
    "ScrubReport",
    "Scrubber",
    "SUPERBLOCK_EXTENTS",
    "ShardStore",
    "ShardStoreError",
    "StorageNode",
    "StoreConfig",
    "StoreSystem",
    "Superblock",
    "SuperblockState",
    "TimingRecorder",
    "component_of",
    "decode_chunk",
    "decode_request",
    "decode_response",
    "detector_for",
    "dispatch",
    "encode_chunk",
    "encode_request",
    "encode_response",
    "frame_size",
    "merge_metrics",
    "render_prometheus",
    "render_snapshot",
    "scan_chunks",
    "validate_key",
]
