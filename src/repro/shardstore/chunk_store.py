"""The chunk store: PUT(data) -> locator, GET(locator) -> data.

Arranges the mapping of chunks onto extents (section 2.1).  Shard payloads
larger than the configured chunk size span several chunks; the LSM tree's
runs are stored through the same interface (``KIND_RUN``), which is why
chunk reclamation can garbage-collect both kinds with one mechanism.

Allocation policy: one *open* extent receives all appends; when it cannot
fit the next frame, a free extent is claimed from the superblock's
ownership map.  Reclamation (in :mod:`repro.shardstore.reclamation`) gives
extents back.  Extents can be *pinned* to keep reclamation away while a
writer (LSM compaction) has written chunks that are not yet referenced by
metadata -- the fix for the paper's issue #14.

Fault #11 lives in :meth:`ChunkStore.put_chunk`: the buggy path samples the
write offset for the returned locator *before* performing the append, so a
concurrent writer racing in between leaves the locator pointing at the
wrong bytes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.concurrency.primitives import Mutex, yield_point

from .buffer_cache import BufferCache
from .chunk import (
    CHUNK_MAGIC,
    KIND_DATA,
    KIND_RUN,
    DecodedChunk,
    Locator,
    decode_chunk,
    encode_chunk,
)
from .config import StoreConfig
from .dependency import Dependency
from .errors import CorruptionError, ExtentError
from .faults import Fault
from .superblock import OWNER_DATA, OWNER_FREE, Superblock


class ChunkStore:
    """Chunk placement, framing, and retrieval over the buffer cache."""

    def __init__(
        self,
        cache: BufferCache,
        superblock: Superblock,
        config: StoreConfig,
        rng: random.Random,
    ) -> None:
        self.cache = cache
        self.superblock = superblock
        self.config = config
        self.faults = config.faults
        self.recorder = config.recorder
        self.rng = rng
        self._open_extent: Optional[int] = None
        self._pinned: Set[int] = set()
        self._alloc_lock = Mutex(None, name="chunk-allocator")
        #: Called (once) when allocation finds no free extent; wired by the
        #: store to run garbage collection under space pressure.  Returns
        #: True if it freed anything.
        self.on_out_of_space = None
        self._in_space_recovery = False
        #: Depth of in-progress reclamation passes; their writes (and the
        #: index/superblock flushes they trigger) get headroom priority.
        self._reclaim_depth = 0
        # Rediscover the open extent from recovered ownership: reuse the
        # owned extent with the most free space, if any.
        owned = [
            e
            for e, owner in superblock.ownership().items()
            if owner == OWNER_DATA
        ]
        if owned:
            self._open_extent = max(
                owned, key=lambda e: (cache.scheduler.free_bytes(e), -e)
            )

    # ------------------------------------------------------------------
    # allocation

    @property
    def open_extent(self) -> Optional[int]:
        return self._open_extent

    def pin_extent(self, extent: int) -> None:
        """Keep reclamation away from ``extent`` until unpinned."""
        self._pinned.add(extent)

    def unpin_extent(self, extent: int) -> None:
        self._pinned.discard(extent)

    def is_pinned(self, extent: int) -> bool:
        return extent in self._pinned

    def owned_extents(self) -> List[int]:
        return sorted(
            e
            for e, owner in self.superblock.ownership().items()
            if owner == OWNER_DATA
        )

    def release_extent(self, extent: int) -> None:
        """Reclamation finished with ``extent``; return it to the free pool."""
        self.superblock.note_ownership(extent, OWNER_FREE)
        if self._open_extent == extent:
            self._open_extent = None

    def _extent_for(self, frame_len: int, *, priority: bool = False) -> int:
        """The extent the next frame goes to, claiming a free one if needed.

        Normal allocation keeps free extents in reserve as headroom:
        reclamation must always have somewhere to evacuate live chunks to,
        and LSM flushes must always be able to persist the index, or a
        fragmented disk can never recover space or shut down cleanly.
        Priority writes may dip into the reserve.
        """
        if frame_len > self.config.geometry.extent_size:
            raise ExtentError("chunk frame larger than an extent")
        open_extent = self._open_extent
        if (
            open_extent is not None
            and self.cache.scheduler.free_bytes(open_extent) >= frame_len
        ):
            return open_extent
        free = [
            e
            for e in self.config.data_extents
            if self.superblock.owner_of(e) == OWNER_FREE
        ]
        privileged = priority or self._reclaim_depth > 0 or self._in_space_recovery
        if not privileged and len(free) <= 2:
            # Keep two extents in reserve: one so reclamation always has an
            # evacuation target, one so LSM flushes (run + metadata writes,
            # required for clean shutdown) can always complete.
            raise ExtentError("out of space: free-extent reserve reached")
        claimed = self._claim_free_extent()
        if claimed is None:
            raise ExtentError("out of space: no free extent for chunk")
        return claimed

    def _run_space_recovery(self) -> bool:
        """GC under allocation pressure.  Called with NO locks held:
        reclamation re-enters the allocator (evacuation writes, ownership
        changes), so invoking it under the allocator lock would deadlock."""
        if self.on_out_of_space is None or self._in_space_recovery:
            return False
        self._in_space_recovery = True
        try:
            return bool(self.on_out_of_space())
        finally:
            self._in_space_recovery = False

    def _claim_free_extent(self) -> Optional[int]:
        for extent in self.config.data_extents:
            if self.superblock.owner_of(extent) != OWNER_FREE:
                continue
            # Never reuse an extent whose reset (or other IO) is still
            # pending: new appends would queue behind the reset, and
            # cross-extent evacuation dependencies could deadlock
            # writeback.  Settling forces the reset to the medium first.
            if not self.cache.scheduler.settle_extent(extent):
                continue
            self.superblock.note_ownership(extent, OWNER_DATA)
            self._open_extent = extent
            return extent
        return None

    # ------------------------------------------------------------------
    # chunk IO

    def _fresh_uuid(self) -> bytes:
        """A random frame UUID.

        With ``uuid_magic_bias`` set, the tail two bytes sometimes equal the
        chunk magic -- the argument bias (section 4.2) that makes the
        paper's bug #10 UUID/magic collision reachable in test budgets.
        """
        bias = self.config.uuid_magic_bias
        if not bias:
            # Hot path: one RNG call for all 16 bytes.  The biased path below
            # keeps the original per-byte draw sequence so seeded fault
            # campaigns (which all set a bias) see an unchanged RNG stream.
            return self.rng.getrandbits(128).to_bytes(16, "little")
        uuid = bytes(self.rng.getrandbits(8) for _ in range(16))
        if self.rng.random() < bias:
            uuid = uuid[:14] + CHUNK_MAGIC
        return uuid

    def put_chunk(
        self,
        kind: int,
        key: bytes,
        payload: "bytes | bytearray | memoryview",
        dep: Optional[Dependency] = None,
        *,
        pin: bool = False,
        priority: bool = False,
    ) -> Tuple[Locator, Dependency]:
        """Frame and append one chunk; returns its locator and dependency.

        With ``pin=True`` the extent that received the chunk is left pinned
        (reclamation will skip it) -- the caller unpins once the chunk is
        referenced by metadata.  The pin is taken under the allocator lock,
        before the append, so reclamation can never observe the chunk on an
        unpinned extent.  ``priority`` marks writes that keep the store healthy --
        reclamation evacuations and LSM run/metadata structure -- which
        may dip into the free-extent reserve.
        """
        tracker = self.cache.scheduler.tracker
        dep = dep or Dependency.root(tracker)
        frame = encode_chunk(kind, key, payload, self._fresh_uuid())
        for attempt in (0, 1):
            try:
                return self._append_frame(
                    kind, frame, dep, pin=pin, priority=priority
                )
            except ExtentError:
                # Out of space: garbage-collect (outside any lock) once.
                if attempt == 1 or not self._run_space_recovery():
                    raise
        raise AssertionError("unreachable")

    def _append_frame(
        self, kind: int, frame: bytes, dep: Dependency, *, pin: bool, priority: bool
    ) -> Tuple[Locator, Dependency]:
        if self.recorder.enabled:
            self.recorder.count("chunks.put")
            if kind == KIND_RUN:
                self.recorder.count("chunks.run_writes")
        if self.faults.enabled(Fault.LOCATOR_RACE_WRITE_FLUSH):
            # Fault #11: sample the offset for the locator before appending.
            # A concurrent writer can append in between, leaving the locator
            # pointing at the other writer's bytes.
            extent = self._extent_for(len(frame), priority=priority)
            predicted = self.cache.scheduler.soft_pointer(extent)
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.LOCATOR_RACE_WRITE_FLUSH,
                    "Chunk store",
                    f"locator offset {predicted} sampled before the append "
                    f"to extent {extent}",
                )
            yield_point("locator sampled before append")
            offset, write_dep = self.cache.append(
                extent, frame, dep, label=f"chunk@{extent}"
            )
            if pin:
                self._pinned.add(extent)
            return Locator(extent, predicted, len(frame)), write_dep
        with self._alloc_lock:
            extent = self._extent_for(len(frame), priority=priority)
            if pin:
                self._pinned.add(extent)
            offset, write_dep = self.cache.append(
                extent, frame, dep, label=f"chunk@{extent}"
            )
        return Locator(extent, offset, len(frame)), write_dep

    # ------------------------------------------------------------------
    # reclamation coordination

    def begin_reclaim(self, extent: int) -> bool:
        """Claim ``extent`` for reclamation; False if it must be skipped.

        An extent is reclaimable only if it holds chunk data, is not the
        open extent (writers are appending there), is not pinned (a writer
        has unreferenced chunks on it), and is not already being reclaimed.
        """
        with self._alloc_lock:
            if self.superblock.owner_of(extent) != OWNER_DATA:
                return False
            if extent == self._open_extent or extent in self._pinned:
                return False
            self._pinned.add(extent)  # blocks concurrent reclaimers and pins
            self._reclaim_depth += 1
            return True

    def end_reclaim(self, extent: int) -> None:
        self._pinned.discard(extent)
        self._reclaim_depth -= 1

    def rotate_open(self) -> Optional[int]:
        """Force allocation to move off the current open extent.

        Exposed for concurrency harnesses: the paper's issue #14 needs the
        open extent to stop being open between a compaction's chunk write
        and its metadata update.
        """
        with self._alloc_lock:
            previous = self._open_extent
            self._open_extent = None
            return previous

    def get_chunk(
        self, locator: Locator, *, expected_key: Optional[bytes] = None
    ) -> DecodedChunk:
        """Read and validate the chunk at ``locator``.

        Stale locators (reset extents, garbage regions) surface as
        :class:`CorruptionError`; a key mismatch means the locator points at
        someone else's chunk, also corruption.
        """
        try:
            frame = self.cache.read(locator.extent, locator.offset, locator.length)
        except ExtentError as exc:
            raise CorruptionError(f"stale locator {locator}: {exc}") from exc
        chunk = decode_chunk(frame, 0)
        if chunk.frame_length != locator.length:
            raise CorruptionError(f"frame length mismatch at {locator}")
        if expected_key is not None and chunk.key != expected_key:
            raise CorruptionError(f"key mismatch at {locator}")
        if self.recorder.enabled:
            self.recorder.count("chunks.get")
            if chunk.kind == KIND_RUN:
                self.recorder.count("lsm.run_reads")
        return chunk

    # ------------------------------------------------------------------
    # shard-sized helpers

    def put_shard(
        self, key: bytes, value: bytes
    ) -> Tuple[List[Locator], Dependency]:
        """Split a shard across chunks; returns locators + combined dep."""
        step = self.config.max_chunk_payload
        if len(value) <= step:
            # Single-chunk fast path (no slicing, no dependency conjunction).
            locator, dep = self.put_chunk(KIND_DATA, key, value)
            return [locator], dep
        # Zero-copy: chunk payloads are memoryview slices of the shard value;
        # the bytes are only copied once, into the encoded frame.
        view = memoryview(value)
        pieces = [view[i : i + step] for i in range(0, len(value), step)]
        locators: List[Locator] = []
        deps: List[Dependency] = []
        for piece in pieces:
            locator, dep = self.put_chunk(KIND_DATA, key, piece)
            locators.append(locator)
            deps.append(dep)
        return locators, Dependency.all_(deps)

    def get_shard(self, key: bytes, locators: List[Locator]) -> bytes:
        if len(locators) == 1:
            return self.get_chunk(locators[0], expected_key=key).payload
        return b"".join(
            self.get_chunk(loc, expected_key=key).payload for loc in locators
        )
