"""In-memory user-space disk with extents, append-only writes, and faults.

The paper's conformance tests run ShardStore against "an in-memory user-space
disk" for determinism and speed (section 4.1); this module is that disk.  It
models exactly the durable medium:

* a fixed number of *extents*, each a contiguous fixed-size region;
* writes within an extent are sequential, tracked by a *hard write pointer*
  (the next valid write position on the durable medium);
* a ``reset`` operation returns an extent's write pointer to zero, making all
  data on it unreadable even though the bytes are not physically erased;
* reads beyond an extent's write pointer are forbidden;
* page-granular persistence: the IO scheduler issues writes one page at a
  time, so a crash can tear a logical append along page boundaries (the
  mechanism behind the paper's bug #10).

Failure injection (section 4.4) lives here too: tests can arm one-shot or
permanent read/write failures per extent, which surface as
:class:`~repro.shardstore.errors.IoError`.

The disk itself never loses data on a crash -- crash semantics are the IO
scheduler's job (pending writebacks are dropped; the durable bytes here
survive).  ``snapshot``/``restore`` support the block-level crash-state
enumerator, which needs to rewind the medium while exploring crash states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .errors import ExtentError, IoError
from .observability import NULL_RECORDER, Recorder


class FailureMode(enum.Enum):
    """How an armed fault behaves."""

    ONCE = "once"  # the next matching IO fails, then the fault disarms
    PERMANENT = "permanent"  # every matching IO fails until cleared


class FaultKind(enum.Enum):
    """What an armed fault does to the matching IO."""

    IO_ERROR = "io-error"  # the IO fails outright, no medium change
    TORN_WRITE = "torn-write"  # a write lands a prefix, then fails


@dataclass
class _ArmedFault:
    mode: FailureMode
    reads: bool
    writes: bool
    kind: FaultKind = FaultKind.IO_ERROR
    delay: int = 0  # matching IOs to let through before firing


@dataclass(frozen=True)
class DiskGeometry:
    """Shape of the simulated disk.

    Sizes are in bytes.  ``extent_size`` must be a multiple of ``page_size``.
    Extent 0 is conventionally reserved for the superblock and the
    ``metadata_extent`` for LSM-tree metadata, but the disk itself does not
    enforce that convention.
    """

    num_extents: int = 16
    extent_size: int = 4096
    page_size: int = 128

    def __post_init__(self) -> None:
        if self.num_extents < 3:
            raise ValueError("need at least 3 extents (superblock, metadata, data)")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.extent_size % self.page_size != 0:
            raise ValueError("extent_size must be a multiple of page_size")

    @property
    def pages_per_extent(self) -> int:
        return self.extent_size // self.page_size


@dataclass
class ExtentState:
    """Durable state of one extent."""

    data: bytearray
    write_pointer: int = 0  # hard write pointer: bytes durably appended
    reset_count: int = 0  # generation counter, bumped on every reset


@dataclass
class DiskStats:
    """Counters for observing IO behaviour (used by the Fig. 2 bench)."""

    writes: int = 0
    reads: int = 0
    resets: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    injected_failures: int = 0
    injected_corruptions: int = 0
    #: Logical service time accrued by completed IOs, in op-clock units
    #: (`latency_units` per IO).  The request plane's latency EWMA is fed
    #: from deltas of this counter, so brownout detection is deterministic.
    busy_units: int = 0


class InMemoryDisk:
    """The durable medium: append-only extents with page-granular writes."""

    def __init__(
        self,
        geometry: Optional[DiskGeometry] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.geometry = geometry or DiskGeometry()
        self._extents: List[ExtentState] = [
            ExtentState(data=bytearray(self.geometry.extent_size))
            for _ in range(self.geometry.num_extents)
        ]
        self._faults: Dict[int, _ArmedFault] = {}
        self.stats = DiskStats()
        self.recorder = recorder
        #: Logical service time per IO, in op-clock units.  1 is a healthy
        #: disk; a brownout storm ramps this up (and heals it back down)
        #: via :meth:`set_latency`.  Purely virtual: no wall time anywhere.
        self.latency_units: int = 1

    def set_latency(self, units: int) -> None:
        """Set the logical per-IO service time (brownout injection knob)."""
        if units < 1:
            raise ValueError("latency_units must be >= 1")
        self.latency_units = units
        if self.recorder.enabled:
            self.recorder.event("disk.latency", units=units)

    # ------------------------------------------------------------------
    # basic geometry helpers

    def _check_extent(self, extent: int) -> ExtentState:
        if not 0 <= extent < self.geometry.num_extents:
            raise ExtentError(f"extent {extent} out of range")
        return self._extents[extent]

    def write_pointer(self, extent: int) -> int:
        """The hard write pointer: next durable write offset on ``extent``."""
        return self._check_extent(extent).write_pointer

    def reset_count(self, extent: int) -> int:
        """Generation counter for ``extent`` (bumped by :meth:`reset`)."""
        return self._check_extent(extent).reset_count

    def free_bytes(self, extent: int) -> int:
        state = self._check_extent(extent)
        return self.geometry.extent_size - state.write_pointer

    # ------------------------------------------------------------------
    # failure injection (section 4.4)

    def arm_fault(
        self,
        extent: int,
        mode: FailureMode = FailureMode.ONCE,
        *,
        reads: bool = True,
        writes: bool = True,
        kind: FaultKind = FaultKind.IO_ERROR,
        delay: int = 0,
    ) -> None:
        """Arm an IO fault on ``extent``.

        With :attr:`FailureMode.ONCE` the next matching IO fails and the
        fault disarms (a transient failure); with
        :attr:`FailureMode.PERMANENT` every matching IO fails until
        :meth:`clear_faults` (a dead region / failed head).

        ``kind`` selects the failure mechanics: :attr:`FaultKind.IO_ERROR`
        fails the IO without touching the medium, while
        :attr:`FaultKind.TORN_WRITE` durably lands a prefix of the write
        before failing (a power-loss-mid-IO tear; reads are unaffected).
        ``delay`` lets that many matching IOs through before the fault
        fires, so a fault plan can schedule failures ahead of time.
        """
        self._check_extent(extent)
        self._faults[extent] = _ArmedFault(
            mode=mode, reads=reads, writes=writes, kind=kind, delay=delay
        )

    def clear_faults(self, extent: Optional[int] = None) -> None:
        """Clear armed faults on ``extent``, or all faults if ``None``."""
        if extent is None:
            self._faults.clear()
        else:
            self._faults.pop(extent, None)

    def has_armed_fault(self, extent: int) -> bool:
        return extent in self._faults

    def _fire(self, extent: int, *, is_read: bool) -> Optional[_ArmedFault]:
        """Consume an armed fault for a matching IO, or return None.

        Handles delay countdown, ONCE disarming, stats and recorder
        bookkeeping; the caller raises (or tears the write) as appropriate.
        """
        fault = self._faults.get(extent)
        if fault is None:
            return None
        if is_read and not fault.reads:
            return None
        if not is_read and not fault.writes:
            return None
        if fault.delay > 0:
            fault.delay -= 1
            return None
        if fault.mode is FailureMode.ONCE:
            del self._faults[extent]
        self.stats.injected_failures += 1
        io = "read" if is_read else "write"
        if self.recorder.enabled:
            self.recorder.count("disk.injected_failures")
            self.recorder.event(
                "disk.injected_failure", extent=extent, kind=io, fault=fault.kind.value
            )
        return fault

    def _maybe_fail(self, extent: int, *, is_read: bool) -> None:
        fault = self._fire(extent, is_read=is_read)
        if fault is None:
            return
        io = "read" if is_read else "write"
        raise IoError(
            f"injected {io} failure on extent {extent}",
            transient=fault.mode is FailureMode.ONCE,
        )

    def corrupt(self, extent: int, offset: Optional[int] = None, *, bit: int = 0) -> Optional[int]:
        """Flip one bit in the durable region of ``extent`` (silent corruption).

        ``offset`` defaults to the middle of the written region; out-of-range
        offsets are clamped below the write pointer.  Returns the corrupted
        offset, or None (no-op) when the extent has no durable data.  The
        damage is silent: only a CRC check downstream (get/scrub) notices.
        """
        state = self._check_extent(extent)
        if state.write_pointer == 0:
            return None
        if offset is None:
            offset = state.write_pointer // 2
        offset = max(0, min(offset, state.write_pointer - 1))
        state.data[offset] ^= 1 << (bit % 8)
        self.stats.injected_corruptions += 1
        if self.recorder.enabled:
            self.recorder.count("disk.injected_corruptions")
            self.recorder.event("disk.corruption", extent=extent, offset=offset)
        return offset

    # ------------------------------------------------------------------
    # IO

    def write(self, extent: int, offset: int, data: bytes) -> None:
        """Durably write ``data`` at ``offset``; must land at the write pointer.

        Only the IO scheduler calls this, one page (or final partial page) at
        a time, which is what makes crash states page-granular.
        """
        if self.recorder.timing:
            with self.recorder.timed("disk.write"):
                return self._write(extent, offset, data)
        return self._write(extent, offset, data)

    def _write(self, extent: int, offset: int, data: bytes) -> None:
        state = self._check_extent(extent)
        if offset != state.write_pointer:
            raise ExtentError(
                f"non-sequential write to extent {extent}: offset {offset}, "
                f"write pointer {state.write_pointer}"
            )
        if offset + len(data) > self.geometry.extent_size:
            raise ExtentError(f"write overruns extent {extent}")
        fault = self._fire(extent, is_read=False)
        if fault is not None:
            transient = fault.mode is FailureMode.ONCE
            if fault.kind is FaultKind.TORN_WRITE:
                # Land a durable prefix before failing: the caller sees an
                # error, the medium sees a tear.
                prefix = len(data) // 2
                if prefix:
                    state.data[offset : offset + prefix] = data[:prefix]
                    state.write_pointer = offset + prefix
                    self.stats.bytes_written += prefix
                raise IoError(
                    f"injected torn write on extent {extent} "
                    f"({prefix}/{len(data)} bytes landed)",
                    transient=transient,
                )
            raise IoError(
                f"injected write failure on extent {extent}", transient=transient
            )
        state.data[offset : offset + len(data)] = data
        state.write_pointer = offset + len(data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        self.stats.busy_units += self.latency_units
        if self.recorder.enabled:
            self.recorder.count("disk.writes")
            self.recorder.count("disk.bytes_written", len(data))
            self.recorder.observe("disk.write_bytes", len(data))

    def read(self, extent: int, offset: int, length: int) -> bytes:
        """Read ``length`` durable bytes; reads beyond the pointer are forbidden."""
        if self.recorder.timing:
            with self.recorder.timed("disk.read"):
                return self._read(extent, offset, length)
        return self._read(extent, offset, length)

    def _read(self, extent: int, offset: int, length: int) -> bytes:
        state = self._check_extent(extent)
        if offset < 0 or length < 0:
            raise ExtentError("negative read bounds")
        if offset + length > state.write_pointer:
            raise ExtentError(
                f"read beyond write pointer on extent {extent}: "
                f"[{offset}, {offset + length}) > {state.write_pointer}"
            )
        self._maybe_fail(extent, is_read=True)
        self.stats.reads += 1
        self.stats.bytes_read += length
        self.stats.busy_units += self.latency_units
        if self.recorder.enabled:
            self.recorder.count("disk.reads")
            self.recorder.count("disk.bytes_read", length)
        return bytes(state.data[offset : offset + length])

    def reset(self, extent: int) -> None:
        """Return the extent's write pointer to zero, allowing overwrites.

        Data is not physically erased (matching real devices), but becomes
        unreadable because reads beyond the pointer are forbidden.
        """
        state = self._check_extent(extent)
        self._maybe_fail(extent, is_read=False)
        state.write_pointer = 0
        state.reset_count += 1
        self.stats.resets += 1
        self.stats.busy_units += self.latency_units
        if self.recorder.enabled:
            self.recorder.count("disk.resets")
            self.recorder.event("disk.reset", extent=extent)

    def set_write_pointer(self, extent: int, pointer: int) -> None:
        """Recovery-only escape hatch: adopt a recovered soft write pointer.

        After a crash the store trusts the superblock's persisted soft
        pointer, not the medium's hard pointer.  If the recovered pointer is
        *below* the hard pointer the tail is unacknowledged data and is
        discarded; if it is *above* (the paper's bug #7 scenario) the gap
        reads back as zeroes and downstream CRC checks will flag corruption.
        """
        state = self._check_extent(extent)
        if not 0 <= pointer <= self.geometry.extent_size:
            raise ExtentError(f"write pointer {pointer} out of range")
        if pointer < state.write_pointer:
            # Discard the unacknowledged tail so later appends re-cover it.
            state.data[pointer : state.write_pointer] = bytes(
                state.write_pointer - pointer
            )
        state.write_pointer = pointer

    # ------------------------------------------------------------------
    # snapshot / restore (block-level crash-state exploration)

    def snapshot(self) -> List[Tuple[bytes, int, int]]:
        """Capture durable state; pair with :meth:`restore` to rewind."""
        return [
            (bytes(s.data), s.write_pointer, s.reset_count) for s in self._extents
        ]

    def restore(self, snap: List[Tuple[bytes, int, int]]) -> None:
        if len(snap) != len(self._extents):
            raise ValueError("snapshot geometry mismatch")
        for state, (data, pointer, resets) in zip(self._extents, snap):
            state.data = bytearray(data)
            state.write_pointer = pointer
            state.reset_count = resets
