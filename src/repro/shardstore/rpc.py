"""The storage-node RPC layer: many disks, one request interface.

ShardStore hosts run several HDDs; each disk is an isolated failure domain
running an independent key-value store, and a shared RPC layer steers
requests to target disks by shard id (section 2.1).  This module implements
that layer plus the control-plane operations the paper's API-level issues
live in:

* ``remove_disk``/``return_disk`` -- taking a disk out of service migrates
  its shards to the remaining disks; fault #4 re-installs the removed
  disk's stale routing entries when it returns, resurrecting old data and
  losing writes made while it was away.
* ``keys`` (formerly ``list_shards``) -- fault #13 iterates the routing
  table without the node lock, racing concurrent removals.
* ``bulk_create``/``bulk_delete`` -- fault #16 releases the node lock
  between items, so concurrent bulk operations interleave non-atomically.

The request plane is also where the node's *self-healing* lives (the
tolerance side of the paper's section 4.4 failure injection):

* transient disk IO errors are retried under a bounded deterministic
  :class:`~repro.shardstore.resilience.RetryPolicy`; if they persist they
  surface as :class:`RetryableError` (never a raw transient ``IoError``);
* every final per-disk outcome feeds a per-disk
  :class:`~repro.shardstore.resilience.CircuitBreaker`; enough errors trip
  it, auto-demoting the disk via the same shard migration ``remove_disk``
  uses, and a cooldown-then-probe cycle re-admits it through probation;
* a disk whose shards cannot all be migrated (the disk is failing reads
  mid-migration) enters *degraded read-only* mode: stranded shards stay
  routed to it and are served best-effort, while writes re-steer away.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.concurrency.primitives import Mutex, yield_point

from .config import StoreConfig
from .dependency import Dependency
from .errors import (
    InvalidRequestError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    RetryableError,
    ShardStoreError,
    validate_key,
)
from .faults import Fault, FaultSet
from .resilience import BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy
from .scrub import RepairReport
from .store import ShardStore, StoreSystem

_T = TypeVar("_T")

#: Reserved shard id the breaker writes/reads/deletes to probe a disk.
PROBE_KEY = b"__breaker_probe__"


def _steer(key: bytes, num_disks: int) -> int:
    """Deterministic primary disk for a shard id."""
    return zlib.crc32(key) % num_disks


class NodeDependency:
    """Conjunction of per-disk dependencies.

    Each disk is an isolated failure domain with its own
    :class:`~repro.shardstore.dependency.DurabilityTracker`, so node-wide
    operations cannot use :meth:`Dependency.and_` (it rejects cross-system
    combination by design).  This wrapper provides the same
    ``is_persistent()`` observable over the conjunction.
    """

    __slots__ = ("deps",)

    def __init__(self, deps: List[Dependency]) -> None:
        self.deps = tuple(deps)

    def is_persistent(self) -> bool:
        return all(dep.is_persistent() for dep in self.deps)


@dataclass
class NodeStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    migrations: int = 0
    retries: int = 0
    wrapped_transients: int = 0  # transient IoErrors surfaced as RetryableError
    breaker_trips: int = 0
    breaker_probes: int = 0
    readmissions: int = 0
    demotions: int = 0
    shards_stranded: int = 0
    repaired: int = 0
    quarantined: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Request-plane totals, named for metrics exposition."""
        return {
            "node.puts": self.puts,
            "node.gets": self.gets,
            "node.deletes": self.deletes,
            "node.migrations": self.migrations,
            "node.retries": self.retries,
            "node.wrapped_transients": self.wrapped_transients,
            "node.breaker_trips": self.breaker_trips,
            "node.breaker_probes": self.breaker_probes,
            "node.readmissions": self.readmissions,
            "node.demotions": self.demotions,
            "node.shards_stranded": self.shards_stranded,
            "node.scrub_repaired": self.repaired,
            "node.scrub_quarantined": self.quarantined,
        }


class StorageNode:
    """A multi-disk ShardStore storage node with a steering RPC layer."""

    def __init__(
        self,
        num_disks: int = 3,
        config: Optional[StoreConfig] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
    ) -> None:
        if num_disks < 1:
            raise InvalidRequestError("a storage node needs at least one disk")
        base = config or StoreConfig()
        self.config = base
        self.faults: FaultSet = base.faults
        self.recorder = base.recorder
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        self.systems: List[StoreSystem] = []
        for disk_id in range(num_disks):
            cfg = StoreConfig(
                geometry=base.geometry,
                faults=base.faults,
                max_chunk_payload=base.max_chunk_payload,
                memtable_flush_threshold=base.memtable_flush_threshold,
                superblock_flush_cadence=base.superblock_flush_cadence,
                buffer_cache_pages=base.buffer_cache_pages,
                seed=base.seed + disk_id + 1,
                uuid_magic_bias=base.uuid_magic_bias,
                recorder=base.recorder,
            )
            self.systems.append(StoreSystem(cfg))
        self._in_service: List[bool] = [True] * num_disks
        self._degraded: List[bool] = [False] * num_disks
        self._shard_map: Dict[bytes, int] = {}
        # Fault #4's stale state: routing entries saved at removal time.
        self._removed_routing: Dict[int, Dict[bytes, int]] = {}
        self._lock = Mutex(None, name="storage-node")
        self.stats = NodeStats()
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(self.breaker_config) for _ in range(num_disks)
        ]
        self._op_count = 0

    # ------------------------------------------------------------------
    # request plane

    def _store(self, disk_id: int) -> ShardStore:
        return self.systems[disk_id].store

    # -- resilience plumbing -------------------------------------------

    def _tick(self) -> None:
        """Advance the node's logical op clock and probe cooled-down disks.

        The breaker is clocked by this counter, not wall time, so the whole
        trip/cooldown/probe/probation cycle is deterministic under the
        validation harnesses.
        """
        self._op_count += 1
        if not self.breaker_config.enabled:
            return
        for disk_id, breaker in enumerate(self._breakers):
            if breaker.should_probe(self._op_count):
                self._probe_disk(disk_id)

    def _retry(self, disk_id: int, fn: Callable[[], _T]) -> _T:
        def note(failures: int, backoff: int, exc: IoError) -> None:
            self.stats.retries += 1
            if self.recorder.enabled:
                self.recorder.count("node.retries")
                self.recorder.event(
                    "node.retry",
                    disk=disk_id,
                    attempt=failures,
                    backoff=backoff,
                    error=str(exc),
                )

        return self.retry_policy.call(fn, on_retry=note)

    def _disk_io(self, disk_id: int, fn: Callable[[], _T]) -> _T:
        """Run a per-disk store operation with retries and health tracking.

        The error contract (see :mod:`repro.errors`): a transient
        :class:`IoError` that survives the retry budget surfaces as
        :class:`RetryableError`; a non-transient one propagates as-is.
        Every *final* outcome (not individual retry attempts) feeds the
        disk's circuit breaker.
        """
        try:
            result = self._retry(disk_id, fn)
        except IoError as exc:
            self._record_failure(disk_id)
            if exc.transient:
                self.stats.wrapped_transients += 1
                if self.recorder.enabled:
                    self.recorder.count("node.wrapped_transients")
                raise RetryableError(
                    f"disk {disk_id}: transient IO failure persisted past "
                    f"{self.retry_policy.max_attempts} attempts: {exc}"
                ) from exc
            raise
        self._record_success(disk_id)
        return result

    def _record_success(self, disk_id: int) -> None:
        self._breakers[disk_id].record_success(self._op_count)

    def _record_failure(self, disk_id: int) -> None:
        breaker = self._breakers[disk_id]
        tripped = breaker.record_failure(self._op_count)
        if self.recorder.enabled:
            self.recorder.gauge(
                f"node.disk{disk_id}.error_rate",
                breaker.health.error_rate(),
            )
        if tripped:
            self.stats.breaker_trips += 1
            if self.recorder.enabled:
                self.recorder.count("node.breaker_trips")
                self.recorder.event(
                    "node.breaker_trip", disk=disk_id, op=self._op_count
                )
            self._demote(disk_id)

    def put(self, key: bytes, value: bytes) -> Dependency:
        # Request validation belongs at the RPC boundary: an invalid key
        # must be rejected identically by every operation, not only by the
        # ones whose routing happens to reach a per-disk store.
        validate_key(key)
        self.stats.puts += 1
        self._tick()
        with self._lock:
            target = self._shard_map.get(key)
            if target is None or not self._in_service[target]:
                target = self._pick_target(key)
            self._shard_map[key] = target
        if not self.recorder.enabled:
            return self._disk_io(target, lambda: self._store(target).put(key, value))
        with self.recorder.span("node.put", key=repr(key), disk=target):
            return self._disk_io(target, lambda: self._store(target).put(key, value))

    def get(self, key: bytes) -> bytes:
        validate_key(key)
        self.stats.gets += 1
        self._tick()
        with self._lock:
            target = self._shard_map.get(key)
        if target is None:
            raise NotFoundError(f"no shard for key {key!r}")
        if not self._in_service[target] and not self._degraded[target]:
            raise RetryableError(f"disk {target} is out of service")
        # A degraded disk is out of service for writes but still serves
        # best-effort reads of its stranded shards.
        if not self.recorder.enabled:
            return self._disk_io(target, lambda: self._store(target).get(key))
        with self.recorder.span("node.get", key=repr(key), disk=target):
            return self._disk_io(target, lambda: self._store(target).get(key))

    def delete(self, key: bytes) -> Dependency:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent.

        Out-of-service routing targets surface as :class:`RetryableError`
        *without* dropping the routing entry, so a retry after
        ``return_disk`` still finds the shard.  A failed tombstone write
        restores the routing entry for the same reason.
        """
        validate_key(key)
        self.stats.deletes += 1
        self._tick()
        with self._lock:
            target = self._shard_map.get(key)
            if target is None:
                raise KeyNotFoundError(f"no shard for key {key!r}")
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
            del self._shard_map[key]
        try:
            if not self.recorder.enabled:
                return self._disk_io(
                    target, lambda: self._store(target).delete(key)
                )
            with self.recorder.span("node.delete", key=repr(key), disk=target):
                return self._disk_io(
                    target, lambda: self._store(target).delete(key)
                )
        except (RetryableError, IoError):
            with self._lock:
                self._shard_map.setdefault(key, target)
            raise

    def _pick_target(self, key: bytes) -> int:
        primary = _steer(key, len(self.systems))
        for probe in range(len(self.systems)):
            disk_id = (primary + probe) % len(self.systems)
            if self._in_service[disk_id]:
                return disk_id
        raise RetryableError("no disk in service")

    # ------------------------------------------------------------------
    # control plane

    def keys(self) -> List[bytes]:
        """Every shard id this node currently routes.

        The correct implementation snapshots under the node lock; fault #13
        iterates the live routing table with preemption points, racing
        concurrent removals.
        """
        if self.faults.enabled(Fault.LIST_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.LIST_REMOVE_RACE,
                    "API",
                    "listing iterates the routing table without the node lock",
                )
            out: List[bytes] = []
            for key in self._shard_map:  # no lock: mutations race with us
                yield_point("keys: unlocked iteration")
                out.append(key)
            return sorted(out)
        with self._lock:
            return sorted(self._shard_map)

    def list_shards(self) -> List[bytes]:
        """Deprecated alias of :meth:`keys` (the unified KVNode spelling)."""
        warnings.warn(
            "StorageNode.list_shards() is deprecated; use keys()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.keys()

    def remove_disk(self, disk_id: int) -> int:
        """Take a disk out of service, migrating its shards; returns the
        number of shards migrated."""
        self._check_disk(disk_id)
        with self._lock:
            if not self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} already removed")
            if sum(self._in_service) == 1:
                raise InvalidRequestError("cannot remove the last disk")
            owned = sorted(
                key for key, d in self._shard_map.items() if d == disk_id
            )
            self._removed_routing[disk_id] = {key: disk_id for key in owned}
            self._in_service[disk_id] = False
            migrated = 0
            for key in owned:
                value = self._wrap_transient(
                    lambda k=key: self._store(disk_id).get(k)
                )
                target = self._pick_target(key)
                self._store(target).put(key, value)
                self._shard_map[key] = target
                migrated += 1
                self.stats.migrations += 1
        return migrated

    def return_disk(self, disk_id: int) -> None:
        """Bring a previously removed disk back into service.

        The disk's old shards were migrated away at removal; routing must
        not change when it returns.  Fault #4 merges the stale pre-removal
        routing back in, pointing reads at the returned disk's old data and
        losing every write made while it was away.
        """
        self._check_disk(disk_id)
        with self._lock:
            if self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} is in service")
            self._in_service[disk_id] = True
            # An operator returning a disk vouches for it: clear degraded
            # mode and start its breaker fresh.
            self._degraded[disk_id] = False
            self._breakers[disk_id] = CircuitBreaker(self.breaker_config)
            stale = self._removed_routing.pop(disk_id, {})
            if self.faults.enabled(Fault.DISK_RETURN_DROPS_SHARDS):
                if self.recorder.enabled:
                    self.recorder.fault_event(
                        Fault.DISK_RETURN_DROPS_SHARDS,
                        "API",
                        f"disk {disk_id} returned; merging {len(stale)} stale "
                        "routing entries",
                    )
                for key, old_disk in stale.items():
                    if key in self._shard_map:
                        self._shard_map[key] = old_disk

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < len(self.systems):
            raise InvalidRequestError(f"no disk {disk_id}")

    def migrate_shard(self, key: bytes, target: int) -> bool:
        """Move one shard to a specific disk (the paper's control-plane
        migration).  Returns False if the shard does not exist; no-op if
        it already lives on ``target``."""
        self._check_disk(target)
        validate_key(key)
        with self._lock:
            source = self._shard_map.get(key)
            if source is None:
                return False
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
            if source == target:
                return True
            value = self._wrap_transient(lambda: self._store(source).get(key))
            self._store(target).put(key, value)
            self._shard_map[key] = target
            self._store(source).delete(key)
            self.stats.migrations += 1
            return True

    def _wrap_transient(self, fn: Callable[[], _T]) -> _T:
        """The error contract for under-lock store IO (no breaker feed:
        demotion re-acquires the node lock, so locked paths only wrap)."""
        try:
            return fn()
        except IoError as exc:
            if exc.transient:
                self.stats.wrapped_transients += 1
                raise RetryableError(
                    f"transient IO failure during control-plane operation: {exc}"
                ) from exc
            raise

    def scrub_all(self):
        """Repair-oriented integrity pass over every in-service disk."""
        reports = {}
        for disk_id, system in enumerate(self.systems):
            if self._in_service[disk_id]:
                reports[disk_id] = system.store.scrub()
        return reports

    def scrub_repair_all(self) -> Dict[int, RepairReport]:
        """Scrub-and-heal every in-service disk (see
        :meth:`ShardStore.scrub_repair`); failures feed the disk breaker."""
        reports: Dict[int, RepairReport] = {}
        for disk_id, system in enumerate(self.systems):
            if not self._in_service[disk_id]:
                continue
            try:
                report = self._disk_io(disk_id, system.store.scrub_repair)
            except (RetryableError, IoError):
                continue  # the breaker saw the failure; heal what we can
            reports[disk_id] = report
            self.stats.repaired += len(report.repaired)
            self.stats.quarantined += len(report.quarantined)
        return reports

    # ------------------------------------------------------------------
    # self-healing: breaker-driven demotion, probe, re-admission

    def _demote(self, disk_id: int) -> None:
        """Take a tripped disk out of service, migrating what it will yield.

        Unlike :meth:`remove_disk` (an operator action that expects a
        healthy disk), demotion tolerates per-shard read failures: shards
        the dying disk refuses to yield stay routed to it and the disk
        enters *degraded read-only* mode -- stranded reads are attempted
        best-effort, writes re-steer to healthy disks.
        """
        with self._lock:
            if not self._in_service[disk_id]:
                return
            if sum(self._in_service) == 1:
                # Nowhere to migrate: the last disk limps along degraded.
                self._degraded[disk_id] = True
                return
            owned = sorted(
                key for key, d in self._shard_map.items() if d == disk_id
            )
            self._in_service[disk_id] = False
            migrated = 0
            stranded = 0
            for key in owned:
                try:
                    value = self._retry(
                        disk_id, lambda k=key: self._store(disk_id).get(k)
                    )
                except ShardStoreError:
                    stranded += 1
                    continue  # stays routed to the demoted disk
                target = self._pick_target(key)
                self._store(target).put(key, value)
                self._shard_map[key] = target
                migrated += 1
                self.stats.migrations += 1
            if stranded:
                self._degraded[disk_id] = True
            self.stats.demotions += 1
            self.stats.shards_stranded += stranded
            if self.recorder.enabled:
                self.recorder.event(
                    "node.disk_demoted",
                    disk=disk_id,
                    migrated=migrated,
                    stranded=stranded,
                )

    def _probe_disk(self, disk_id: int) -> None:
        """Health-check a tripped disk end to end; re-admit on success.

        The probe exercises the whole medium path -- write, drain to disk,
        read back, delete, scrub -- because a disk with no shards left
        would otherwise pass a scrub-only probe vacuously.
        """
        breaker = self._breakers[disk_id]
        breaker.begin_probe()
        self.stats.breaker_probes += 1
        if self.recorder.enabled:
            self.recorder.count("node.breaker_probes")
        store = self._store(disk_id)
        try:
            store.put(PROBE_KEY, b"probe")
            store.drain()
            ok = store.get(PROBE_KEY) == b"probe"
            store.delete(PROBE_KEY)
            store.drain()
            report = store.scrub()
            ok = ok and report.io_errors == 0 and report.clean
        except ShardStoreError:
            ok = False
        breaker.on_probe(ok, self._op_count)
        if self.recorder.enabled:
            self.recorder.event("node.breaker_probe", disk=disk_id, ok=ok)
        if breaker.state is BreakerState.PROBATION:
            self._readmit(disk_id)

    def _readmit(self, disk_id: int) -> None:
        """Bring a probed-healthy disk back into service on probation.

        Routing is untouched: shards migrated away at demotion stay where
        they are, and stranded shards become fully servable again.
        """
        with self._lock:
            self._in_service[disk_id] = True
            self._degraded[disk_id] = False
        self.stats.readmissions += 1
        if self.recorder.enabled:
            self.recorder.count("node.readmissions")
            self.recorder.event("node.disk_readmitted", disk=disk_id)

    def degraded(self, disk_id: int) -> bool:
        """Whether ``disk_id`` is in degraded read-only mode."""
        self._check_disk(disk_id)
        return self._degraded[disk_id]

    def route_of(self, key: bytes) -> Optional[int]:
        """The disk ``key`` currently routes to (None when unrouted).

        Checkers use this to decide whether a failed read is honest
        unavailability (the shard is stranded on a demoted/degraded disk)
        or a conformance violation on a healthy one.
        """
        validate_key(key)
        with self._lock:
            return self._shard_map.get(key)

    def breaker_state(self, disk_id: int) -> BreakerState:
        self._check_disk(disk_id)
        return self._breakers[disk_id].state

    def health_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-disk breaker/health view for metrics exposition.

        Returns ``{"counters": {...}, "gauges": {...}}``; the gauges carry
        breaker state codes (0=closed 1=open 2=half-open 3=probation),
        sliding-window error rates, and service/degraded flags per disk.
        """
        counters: Dict[str, float] = {
            "node.breaker_trips": self.stats.breaker_trips,
            "node.breaker_probes": self.stats.breaker_probes,
            "node.readmissions": self.stats.readmissions,
            "node.retries": self.stats.retries,
            "node.wrapped_transients": self.stats.wrapped_transients,
            "node.demotions": self.stats.demotions,
            "node.shards_stranded": self.stats.shards_stranded,
            "node.scrub_repaired": self.stats.repaired,
            "node.scrub_quarantined": self.stats.quarantined,
        }
        gauges: Dict[str, float] = {}
        for disk_id, breaker in enumerate(self._breakers):
            prefix = f"node.disk{disk_id}"
            gauges[f"{prefix}.breaker_state"] = breaker.state.code
            gauges[f"{prefix}.error_rate"] = breaker.health.error_rate()
            gauges[f"{prefix}.in_service"] = float(self._in_service[disk_id])
            gauges[f"{prefix}.degraded"] = float(self._degraded[disk_id])
        return {"counters": counters, "gauges": gauges}

    # ------------------------------------------------------------------
    # bulk control-plane operations

    def bulk_create(self, pairs: List[Tuple[bytes, bytes]]) -> int:
        """Create many shards as one atomic control-plane operation.

        Fault #16 releases the node lock between items, so a concurrent
        bulk operation observes (and produces) partial states.
        """
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BULK_CREATE_REMOVE_RACE,
                    "API",
                    f"bulk_create of {len(pairs)} shards releases the node "
                    "lock between items",
                )
            created = 0
            for key, value in pairs:
                yield_point("bulk_create: between items")
                self.put(key, value)
                created += 1
            return created
        with self._lock:
            created = 0
            for key, value in pairs:
                target = self._shard_map.get(key)
                if target is None or not self._in_service[target]:
                    target = self._pick_target(key)
                self._shard_map[key] = target
                self._wrap_transient(
                    lambda t=target, k=key, v=value: self._store(t).put(k, v)
                )
                created += 1
            return created

    def bulk_delete(self, keys: List[bytes]) -> int:
        """Delete many shards as one atomic control-plane operation."""
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BULK_CREATE_REMOVE_RACE,
                    "API",
                    f"bulk_delete of {len(keys)} shards releases the node "
                    "lock between items",
                )
            deleted = 0
            for key in keys:
                yield_point("bulk_delete: between items")
                try:
                    self.delete(key)
                except KeyNotFoundError:
                    continue
                deleted += 1
            return deleted
        with self._lock:
            deleted = 0
            for key in keys:
                target = self._shard_map.pop(key, None)
                if target is not None and self._in_service[target]:
                    self._wrap_transient(
                        lambda t=target, k=key: self._store(t).delete(k)
                    )
                    deleted += 1
            return deleted

    # ------------------------------------------------------------------
    # maintenance passthrough

    @property
    def num_disks(self) -> int:
        return len(self.systems)

    def in_service(self, disk_id: int) -> bool:
        self._check_disk(disk_id)
        return self._in_service[disk_id]

    def contains(self, key: bytes) -> bool:
        """Whether this node currently routes ``key``."""
        validate_key(key)
        with self._lock:
            return key in self._shard_map

    def flush(self) -> NodeDependency:
        """Flush every in-service disk; the combined durability dependency."""
        self._tick()
        if not self.recorder.enabled:
            return self._flush()
        with self.recorder.span("node.flush"):
            return self._flush()

    def _flush(self) -> NodeDependency:
        deps, errors = self._each_in_service(lambda store: store.flush())
        self._raise_if_still_failing(errors, "flush")
        return NodeDependency([dep for dep in deps if dep is not None])

    def drain(self) -> None:
        """Write back everything pending on every in-service disk.

        Per-disk failures feed the circuit breaker; a failure only
        propagates if its disk is *still* in service afterwards -- a disk
        the breaker demoted mid-drain had its shards migrated, so the node
        as a whole made forward progress.
        """
        self._tick()
        _, errors = self._each_in_service(lambda store: store.drain())
        self._raise_if_still_failing(errors, "drain")

    def _each_in_service(
        self, fn: Callable[[ShardStore], _T]
    ) -> Tuple[List[Optional[_T]], List[Tuple[int, IoError]]]:
        results: List[Optional[_T]] = []
        errors: List[Tuple[int, IoError]] = []
        for disk_id, system in enumerate(self.systems):
            if not self._in_service[disk_id]:
                continue
            try:
                results.append(self._retry(disk_id, lambda s=system: fn(s.store)))
            except IoError as exc:
                self._record_failure(disk_id)
                errors.append((disk_id, exc))
                results.append(None)
                continue
            self._record_success(disk_id)
        return results, errors

    def _raise_if_still_failing(
        self, errors: List[Tuple[int, IoError]], op: str
    ) -> None:
        for disk_id, exc in errors:
            if not self._in_service[disk_id]:
                continue
            if exc.transient:
                self.stats.wrapped_transients += 1
                raise RetryableError(
                    f"disk {disk_id}: {op} failed past retries: {exc}"
                ) from exc
            raise exc

    def drain_all(self) -> None:
        self.drain()
