"""The storage-node RPC layer: many disks, one request interface.

ShardStore hosts run several HDDs; each disk is an isolated failure domain
running an independent key-value store, and a shared RPC layer steers
requests to target disks by shard id (section 2.1).  This module implements
that layer plus the control-plane operations the paper's API-level issues
live in:

* ``remove_disk``/``return_disk`` -- taking a disk out of service migrates
  its shards to the remaining disks; fault #4 re-installs the removed
  disk's stale routing entries when it returns, resurrecting old data and
  losing writes made while it was away.
* ``keys`` (formerly ``list_shards``) -- fault #13 iterates the routing
  table without the node lock, racing concurrent removals.
* ``bulk_create``/``bulk_delete`` -- fault #16 releases the node lock
  between items, so concurrent bulk operations interleave non-atomically.

The request plane is also where the node's *self-healing* lives (the
tolerance side of the paper's section 4.4 failure injection):

* transient disk IO errors are retried under a bounded deterministic
  :class:`~repro.shardstore.resilience.RetryPolicy`; if they persist they
  surface as :class:`RetryableError` (never a raw transient ``IoError``);
* every final per-disk outcome feeds a per-disk
  :class:`~repro.shardstore.resilience.CircuitBreaker`; enough errors trip
  it, auto-demoting the disk via the same shard migration ``remove_disk``
  uses, and a cooldown-then-probe cycle re-admits it through probation;
* a disk whose shards cannot all be migrated (the disk is failing reads
  mid-migration) enters *degraded read-only* mode: stranded shards stay
  routed to it and are served best-effort, while writes re-steer away.

With an :class:`~repro.shardstore.resilience.AdmissionConfig` the node also
runs a *deadline-aware request plane* (brownout/overload tolerance): every
``put``/``get``/``delete`` carries a logical deadline against a per-disk
bounded admission queue; requests that cannot meet it are shed **before any
substrate IO** with typed ``OverloadedError``/``DeadlineExceededError``; a
per-disk latency EWMA (fed by the disk's op-clocked ``busy_units``, never
wall time) trips the breaker into its SLOW state, demoting browned-out
disks exactly like error trips; shed reads are hedged against a best-effort
replica shard on a healthy disk; and retries draw from an op-clocked
:class:`~repro.shardstore.resilience.RetryBudget` so shedding never turns
into a retry storm.  All of it is clocked by the node's virtual unit clock
(``arrival_interval_units`` per op), so campaigns stay byte-identical.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.concurrency.primitives import Mutex, yield_point

from .config import StoreConfig
from .dependency import Dependency
from .errors import (
    DeadlineExceededError,
    InvalidRequestError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    RetryableError,
    ShardStoreError,
    validate_key,
)
from .faults import Fault, FaultSet
from .observability.journal import digest_bytes, digest_keys
from .resilience import (
    AdmissionConfig,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DiskAdmission,
    RetryBudget,
    RetryPolicy,
)
from .scrub import RepairReport
from .store import ShardStore, StoreSystem

_T = TypeVar("_T")

#: Reserved shard id the breaker writes/reads/deletes to probe a disk.
PROBE_KEY = b"__breaker_probe__"


def _steer(key: bytes, num_disks: int) -> int:
    """Deterministic primary disk for a shard id."""
    return zlib.crc32(key) % num_disks


class NodeDependency:
    """Conjunction of per-disk dependencies.

    Each disk is an isolated failure domain with its own
    :class:`~repro.shardstore.dependency.DurabilityTracker`, so node-wide
    operations cannot use :meth:`Dependency.and_` (it rejects cross-system
    combination by design).  This wrapper provides the same
    ``is_persistent()`` observable over the conjunction.
    """

    __slots__ = ("deps",)

    def __init__(self, deps: List[Dependency]) -> None:
        self.deps = tuple(deps)

    def is_persistent(self) -> bool:
        return all(dep.is_persistent() for dep in self.deps)


@dataclass
class NodeStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    migrations: int = 0
    retries: int = 0
    wrapped_transients: int = 0  # transient IoErrors surfaced as RetryableError
    breaker_trips: int = 0
    breaker_probes: int = 0
    readmissions: int = 0
    demotions: int = 0
    shards_stranded: int = 0
    repaired: int = 0
    quarantined: int = 0
    # Deadline-aware request plane (admission control / brownouts).
    shed_overload: int = 0  # requests shed with OverloadedError
    shed_deadline: int = 0  # requests shed with DeadlineExceededError
    hedges: int = 0  # shed gets served from a replica shard
    slow_trips: int = 0  # breaker trips into SLOW (brownout detection)
    deadline_violations: int = 0  # admitted past an already-blown deadline
    replica_writes: int = 0  # best-effort replica shards written
    replica_failures: int = 0  # replica writes/reads dropped on error
    retry_budget_exhausted: int = 0  # retries abandoned by the token bucket

    def snapshot(self) -> Dict[str, int]:
        """Request-plane totals, named for metrics exposition."""
        return {
            "node.puts": self.puts,
            "node.gets": self.gets,
            "node.deletes": self.deletes,
            "node.migrations": self.migrations,
            "node.retries": self.retries,
            "node.wrapped_transients": self.wrapped_transients,
            "node.breaker_trips": self.breaker_trips,
            "node.breaker_probes": self.breaker_probes,
            "node.readmissions": self.readmissions,
            "node.demotions": self.demotions,
            "node.shards_stranded": self.shards_stranded,
            "node.scrub_repaired": self.repaired,
            "node.scrub_quarantined": self.quarantined,
            "node.shed_overload": self.shed_overload,
            "node.shed_deadline": self.shed_deadline,
            "node.hedges": self.hedges,
            "node.slow_trips": self.slow_trips,
            "node.deadline_violations": self.deadline_violations,
            "node.replica_writes": self.replica_writes,
            "node.replica_failures": self.replica_failures,
            "node.retry_budget_exhausted": self.retry_budget_exhausted,
        }


class StorageNode:
    """A multi-disk ShardStore storage node with a steering RPC layer."""

    def __init__(
        self,
        num_disks: int = 3,
        config: Optional[StoreConfig] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        if num_disks < 1:
            raise InvalidRequestError("a storage node needs at least one disk")
        base = config or StoreConfig()
        self.config = base
        self.faults: FaultSet = base.faults
        self.recorder = base.recorder
        # The evidence journal is shared with every per-disk store (the
        # journal's nesting guard makes the delegated store ops invisible,
        # so each client-visible node op emits exactly one record).
        self.journal = base.journal
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        self.systems: List[StoreSystem] = []
        for disk_id in range(num_disks):
            cfg = StoreConfig(
                geometry=base.geometry,
                faults=base.faults,
                max_chunk_payload=base.max_chunk_payload,
                memtable_flush_threshold=base.memtable_flush_threshold,
                superblock_flush_cadence=base.superblock_flush_cadence,
                buffer_cache_pages=base.buffer_cache_pages,
                seed=base.seed + disk_id + 1,
                uuid_magic_bias=base.uuid_magic_bias,
                recorder=base.recorder,
                journal=base.journal,
            )
            self.systems.append(StoreSystem(cfg))
        self._in_service: List[bool] = [True] * num_disks
        self._degraded: List[bool] = [False] * num_disks
        self._shard_map: Dict[bytes, int] = {}
        # Fault #4's stale state: routing entries saved at removal time.
        self._removed_routing: Dict[int, Dict[bytes, int]] = {}
        self._lock = Mutex(None, name="storage-node")
        self.stats = NodeStats()
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(self.breaker_config) for _ in range(num_disks)
        ]
        if self.journal is not None:
            for disk_id, brk in enumerate(self._breakers):
                brk.on_transition = self._journal_breaker_hook(disk_id)
        self._op_count = 0
        # Deadline-aware request plane: None keeps the historical
        # no-deadline behaviour (and zero overhead on the hot path).
        self.admission = admission
        self._admissions: List[DiskAdmission] = (
            [DiskAdmission(admission) for _ in range(num_disks)]
            if admission is not None
            else []
        )
        self._retry_budget: Optional[RetryBudget] = (
            RetryBudget(admission.retry_budget, admission.retry_refill_units)
            if admission is not None
            else None
        )
        # Virtual unit clock for admission math; advances
        # arrival_interval_units per request-plane op unless arrivals are
        # held (an injected overload burst).
        self._clock = 0
        self._held_arrivals = 0
        # Best-effort replica shards backing hedged reads: key -> disk id.
        # An entry is dropped on *any* replica-side failure so a hedge can
        # never serve stale bytes.
        self._replica_map: Dict[bytes, int] = {}

    # ------------------------------------------------------------------
    # request plane

    def _store(self, disk_id: int) -> ShardStore:
        return self.systems[disk_id].store

    # -- evidence-plane plumbing ---------------------------------------

    def _journal_breaker_hook(
        self, disk_id: int
    ) -> Callable[[BreakerState, BreakerState], None]:
        """Journal every breaker transition as a standalone record.

        Written in transition order, so the invariant miner can check the
        breaker state machine's legality per disk from the journal alone.
        """

        def hook(old: BreakerState, new: BreakerState) -> None:
            assert self.journal is not None
            self.journal.record_op(
                "breaker",
                disk=disk_id,
                **{"from": old.value, "to": new.value},
            )

        return hook

    # -- resilience plumbing -------------------------------------------

    def _tick(self) -> None:
        """Advance the node's logical op clock and probe cooled-down disks.

        The breaker is clocked by this counter, not wall time, so the whole
        trip/cooldown/probe/probation cycle is deterministic under the
        validation harnesses.  The admission clock advances in lockstep
        (``arrival_interval_units`` per op) unless arrivals are held by an
        injected overload burst, in which case completed work outpaces the
        frozen clock and the backlog builds exactly as a real burst would.
        """
        self._op_count += 1
        if self.admission is not None:
            if self._held_arrivals > 0:
                self._held_arrivals -= 1
            else:
                self._clock += self.admission.arrival_interval_units
        if not self.breaker_config.enabled:
            return
        for disk_id, breaker in enumerate(self._breakers):
            if breaker.should_probe(self._op_count):
                self._probe_disk(disk_id)

    def hold_arrivals(self, count: int) -> None:
        """Freeze the admission clock for the next ``count`` ops (burst).

        The overload-storm injector models a burst of arrivals faster than
        the disks can serve: the virtual clock stands still while admitted
        work still charges its cost, so backlog accumulates and the
        admission queue sheds once its bound or the deadline is breached.
        """
        if count < 0:
            raise InvalidRequestError("hold_arrivals count must be >= 0")
        self._held_arrivals += count

    def advance_clock(self, units: int) -> None:
        """Advance the admission clock (post-storm settlement cool-down)."""
        if units < 0:
            raise InvalidRequestError("advance_clock units must be >= 0")
        self._clock += units
        self._held_arrivals = 0

    def _retry(self, disk_id: int, fn: Callable[[], _T]) -> _T:
        def note(failures: int, backoff: int, exc: IoError) -> None:
            self.stats.retries += 1
            if self.journal is not None:
                self.journal.note_retry()
            if self.recorder.enabled:
                self.recorder.count("node.retries")
                self.recorder.event(
                    "node.retry",
                    disk=disk_id,
                    attempt=failures,
                    backoff=backoff,
                    error=str(exc),
                )

        return self.retry_policy.call(
            fn, on_retry=note, should_retry=self._acquire_retry_token
        )

    def _acquire_retry_token(self) -> bool:
        """Retry-storm control: spend one op-clocked retry-budget token."""
        if self._retry_budget is None:
            return True
        if self._retry_budget.acquire(self._clock):
            return True
        self.stats.retry_budget_exhausted += 1
        if self.recorder.enabled:
            self.recorder.count("node.retry_budget_exhausted")
        return False

    def _disk_io(self, disk_id: int, fn: Callable[[], _T]) -> _T:
        """Run a per-disk store operation with retries and health tracking.

        The error contract (see :mod:`repro.errors`): a transient
        :class:`IoError` that survives the retry budget surfaces as
        :class:`RetryableError`; a non-transient one propagates as-is.
        Every *final* outcome (not individual retry attempts) feeds the
        disk's circuit breaker.
        """
        try:
            result = self._retry(disk_id, fn)
        except IoError as exc:
            self._record_failure(disk_id)
            if exc.transient:
                self.stats.wrapped_transients += 1
                if self.recorder.enabled:
                    self.recorder.count("node.wrapped_transients")
                raise RetryableError(
                    f"disk {disk_id}: transient IO failure persisted past "
                    f"{self.retry_policy.max_attempts} attempts: {exc}"
                ) from exc
            raise
        self._record_success(disk_id)
        return result

    def _record_success(self, disk_id: int) -> None:
        self._breakers[disk_id].record_success(self._op_count)

    def _record_failure(self, disk_id: int) -> None:
        breaker = self._breakers[disk_id]
        tripped = breaker.record_failure(self._op_count)
        if self.recorder.enabled:
            self.recorder.gauge(
                f"node.disk{disk_id}.error_rate",
                breaker.health.error_rate(),
            )
        if tripped:
            self.stats.breaker_trips += 1
            if self.recorder.enabled:
                self.recorder.count("node.breaker_trips")
                self.recorder.event(
                    "node.breaker_trip", disk=disk_id, op=self._op_count
                )
            self._demote(disk_id)

    # -- deadline-aware admission plumbing -----------------------------

    def _pending_cost(self, disk_id: int) -> int:
        """Writeback cost already queued ahead of a new request, in units.

        Discounted by ``background_weight_shift``: queued records are
        background throughput work, overlapped with foreground requests.
        """
        cost = self._store(disk_id).scheduler.pending_cost_units()
        if self.admission is None:
            return cost
        return cost >> self.admission.background_weight_shift

    def _admit(self, disk_id: int, deadline: Optional[int]) -> None:
        """Admit or shed a request against ``disk_id``'s virtual queue.

        Sheds raise typed errors **before any substrate IO**, so a shed
        request provably left the store unchanged.  With shedding disabled
        (the campaign's negative control) everything is admitted, but a
        request whose backlog already exceeds its deadline is counted as a
        deadline violation -- the monotonic counter the brownout gate
        checks.
        """
        if self.admission is None:
            return
        limit = deadline if deadline is not None else self.admission.deadline_units
        if limit <= 0:
            raise InvalidRequestError("deadline must be positive")
        queue = self._admissions[disk_id]
        try:
            backlog = queue.admit(self._clock, limit, self._pending_cost(disk_id))
        except OverloadedError:
            self.stats.shed_overload += 1
            if self.recorder.enabled:
                self.recorder.count("node.shed_overload")
                self.recorder.event("node.shed", disk=disk_id, kind="overload")
            raise
        except DeadlineExceededError:
            self.stats.shed_deadline += 1
            if self.recorder.enabled:
                self.recorder.count("node.shed_deadline")
                self.recorder.event("node.shed", disk=disk_id, kind="deadline")
            raise
        if backlog > limit:
            # Only reachable with shedding off: the queue model knew this
            # request could not meet its deadline, yet it ran anyway.
            self.stats.deadline_violations += 1
            if self.recorder.enabled:
                self.recorder.count("node.deadline_violations")

    def _charge_units(self, disk_id: int, busy_delta: int, read_delta: int) -> int:
        """Virtual-queue charge for a measured IO burst.

        Reads are foreground data-path work and bill at full cost; writes
        and resets are writeback/GC throughput the device overlaps with
        foreground requests, billed at ``1/2**background_weight_shift``.
        Without the split, one healthy reclaim churn (hundreds of queued
        writes pumped inline) would look like a brownout.
        """
        assert self.admission is not None
        read_cost = min(
            busy_delta, read_delta * self._store(disk_id).disk.latency_units
        )
        write_cost = busy_delta - read_cost
        return read_cost + (write_cost >> self.admission.background_weight_shift)

    def _measured_io(self, disk_id: int, fn: Callable[[], _T]) -> _T:
        """Run ``fn`` under :meth:`_disk_io`, charging measured cost.

        The disk's ``busy_units``/IO-count deltas across the call feed the
        admission queue (``busy_until``) and the per-IO latency EWMA; a
        sustained-slow EWMA trips the breaker into SLOW, demoting the disk
        like an error trip would.
        """
        if self.admission is None:
            return self._disk_io(disk_id, fn)
        stats = self._store(disk_id).disk.stats
        busy_before = stats.busy_units
        reads_before = stats.reads
        ios_before = stats.reads + stats.writes + stats.resets
        queue = self._admissions[disk_id]
        queue.inflight += 1
        try:
            return self._disk_io(disk_id, fn)
        finally:
            queue.inflight -= 1
            busy_delta = stats.busy_units - busy_before
            io_delta = stats.reads + stats.writes + stats.resets - ios_before
            charge = self._charge_units(
                disk_id, busy_delta, stats.reads - reads_before
            )
            if queue.complete(
                self._clock, busy_delta, io_delta, charge_units=charge
            ):
                self._trip_slow(disk_id)

    def _trip_slow(self, disk_id: int) -> None:
        """Brownout detected: trip the breaker SLOW and demote the disk."""
        breaker = self._breakers[disk_id]
        if not self.breaker_config.enabled:
            return
        if breaker.state is not BreakerState.CLOSED:
            return
        breaker.trip_slow(self._op_count)
        self.stats.breaker_trips += 1
        self.stats.slow_trips += 1
        if self.recorder.enabled:
            self.recorder.count("node.breaker_trips")
            self.recorder.count("node.slow_trips")
            self.recorder.event(
                "node.breaker_trip_slow",
                disk=disk_id,
                op=self._op_count,
                ewma_milli=self._admissions[disk_id].ewma.milli,
            )
        self._demote(disk_id)

    # -- best-effort replication / hedged reads ------------------------

    def _replica_target(self, key: bytes, primary: int) -> Optional[int]:
        """A healthy disk (never ``primary``) to hold ``key``'s replica."""
        for probe in range(1, len(self.systems)):
            disk_id = (primary + probe) % len(self.systems)
            if self._in_service[disk_id]:
                return disk_id
        return None

    def _replicate(self, key: bytes, value: bytes, primary: int) -> None:
        """Best-effort replica write backing hedged reads.

        Failure is absorbed (the primary write already succeeded) but the
        replica entry is dropped, so a stale replica is never hedged to.
        """
        if self.admission is None or not self.admission.hedge_reads:
            return
        replica = self._replica_target(key, primary)
        if replica is None:
            self._replica_map.pop(key, None)
            return
        try:
            self._store(replica).put(key, value)
        except ShardStoreError:
            self._replica_map.pop(key, None)
            self.stats.replica_failures += 1
            if self.recorder.enabled:
                self.recorder.count("node.replica_failures")
            return
        self._replica_map[key] = replica
        self.stats.replica_writes += 1
        if self.recorder.enabled:
            self.recorder.count("node.replica_writes")

    def _drop_replica(self, key: bytes, primary: int) -> None:
        """Forget ``key``'s replica and best-effort erase the copy.

        A demotion may have *migrated* the shard onto the very disk that
        held its replica, aliasing the two; erasing then would destroy the
        only live copy, so an aliased entry is only forgotten.
        """
        replica = self._replica_map.pop(key, None)
        if replica is None or replica == primary:
            return
        try:
            self._store(replica).delete(key)
        except ShardStoreError:
            # The routing entry is gone either way; a dangling copy is
            # unreachable garbage, not a correctness hazard.
            self.stats.replica_failures += 1
            if self.recorder.enabled:
                self.recorder.count("node.replica_failures")

    def _try_hedge(self, key: bytes, primary: int, deadline: Optional[int]):
        """Serve a shed ``get`` from the key's replica shard, if viable.

        Returns the value, or None when no healthy replica can answer --
        in which case the original shed error propagates.  The hedge goes
        through the replica disk's *own* admission queue: a hedge must not
        itself overload another browned-out disk.
        """
        if self.admission is None or not self.admission.hedge_reads:
            return None
        replica = self._replica_map.get(key)
        if replica is None or replica == primary:
            return None
        if not self._in_service[replica] and not self._degraded[replica]:
            return None
        try:
            self._admit(replica, deadline)
        except (OverloadedError, DeadlineExceededError):
            return None
        try:
            value = self._measured_io(
                replica, lambda: self._store(replica).get(key)
            )
        except ShardStoreError:
            self._replica_map.pop(key, None)
            self.stats.replica_failures += 1
            if self.recorder.enabled:
                self.recorder.count("node.replica_failures")
            return None
        self.stats.hedges += 1
        if self.recorder.enabled:
            self.recorder.count("node.hedges")
            self.recorder.event("node.hedged_read", disk=replica, primary=primary)
        return value

    def put(
        self, key: bytes, value: bytes, *, deadline: Optional[int] = None
    ) -> Dependency:
        # Request validation belongs at the RPC boundary: an invalid key
        # must be rejected identically by every operation, not only by the
        # ones whose routing happens to reach a per-disk store.
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "put",
                lambda: self._put_rpc(key, value, deadline),
                key=key,
                value=value,
            )
        return self._put_rpc(key, value, deadline)

    def _put_rpc(
        self, key: bytes, value: bytes, deadline: Optional[int]
    ) -> Dependency:
        self.stats.puts += 1
        self._tick()
        with self._lock:
            target = self._shard_map.get(key)
            if target is None or not self._in_service[target]:
                target = self._pick_target(key)
        # Admission precedes the routing write: a shed put must not leave
        # a dangling route to a shard that was never stored (``contains``
        # would otherwise report a key the store never accepted).
        self._admit(target, deadline)
        with self._lock:
            self._shard_map[key] = target
        try:
            if not self.recorder.enabled:
                dep = self._measured_io(
                    target, lambda: self._store(target).put(key, value)
                )
            else:
                with self.recorder.span("node.put", key=repr(key), disk=target):
                    dep = self._measured_io(
                        target, lambda: self._store(target).put(key, value)
                    )
        except ShardStoreError:
            # The primary outcome is uncertain; a replica from an earlier
            # put could now be stale, and a hedge must never serve it.
            self._replica_map.pop(key, None)
            raise
        self._replicate(key, value, target)
        return dep

    def get(self, key: bytes, *, deadline: Optional[int] = None) -> bytes:
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "get",
                lambda: self._get_rpc(key, deadline),
                key=key,
                classify=lambda value: {"value": digest_bytes(value)},
            )
        return self._get_rpc(key, deadline)

    def _get_rpc(self, key: bytes, deadline: Optional[int]) -> bytes:
        self.stats.gets += 1
        self._tick()
        with self._lock:
            target = self._shard_map.get(key)
        if target is None:
            raise NotFoundError(f"no shard for key {key!r}")
        if not self._in_service[target] and not self._degraded[target]:
            raise RetryableError(f"disk {target} is out of service")
        # A degraded disk is out of service for writes but still serves
        # best-effort reads of its stranded shards.
        try:
            self._admit(target, deadline)
        except (OverloadedError, DeadlineExceededError):
            # The primary queue cannot meet the deadline; hedge against
            # the key's replica shard on a healthy disk before giving up.
            hedged = self._try_hedge(key, target, deadline)
            if hedged is not None:
                return hedged
            raise
        if not self.recorder.enabled:
            return self._measured_io(target, lambda: self._store(target).get(key))
        with self.recorder.span("node.get", key=repr(key), disk=target):
            return self._measured_io(target, lambda: self._store(target).get(key))

    def delete(self, key: bytes, *, deadline: Optional[int] = None) -> Dependency:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent.

        Out-of-service routing targets surface as :class:`RetryableError`
        *without* dropping the routing entry, so a retry after
        ``return_disk`` still finds the shard.  A failed tombstone write
        restores the routing entry for the same reason.
        """
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "delete", lambda: self._delete_rpc(key, deadline), key=key
            )
        return self._delete_rpc(key, deadline)

    def _delete_rpc(self, key: bytes, deadline: Optional[int]) -> Dependency:
        self.stats.deletes += 1
        self._tick()
        with self._lock:
            target = self._shard_map.get(key)
            if target is None:
                raise KeyNotFoundError(f"no shard for key {key!r}")
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
        # Admission runs before the routing entry is dropped: a shed
        # delete leaves the shard fully routed and untouched.
        self._admit(target, deadline)
        with self._lock:
            if self._shard_map.get(key) != target:
                raise KeyNotFoundError(f"no shard for key {key!r}")
            del self._shard_map[key]
        # The replica copy dies with the routing entry, never after it:
        # a hedge must not resurrect a deleted key.
        self._drop_replica(key, target)
        try:
            if not self.recorder.enabled:
                return self._measured_io(
                    target, lambda: self._store(target).delete(key)
                )
            with self.recorder.span("node.delete", key=repr(key), disk=target):
                return self._measured_io(
                    target, lambda: self._store(target).delete(key)
                )
        except (RetryableError, IoError):
            with self._lock:
                self._shard_map.setdefault(key, target)
            raise

    def _pick_target(self, key: bytes) -> int:
        primary = _steer(key, len(self.systems))
        for probe in range(len(self.systems)):
            disk_id = (primary + probe) % len(self.systems)
            if self._in_service[disk_id]:
                return disk_id
        raise RetryableError("no disk in service")

    # ------------------------------------------------------------------
    # control plane

    def keys(self) -> List[bytes]:
        """Every shard id this node currently routes.

        The correct implementation snapshots under the node lock; fault #13
        iterates the live routing table with preemption points, racing
        concurrent removals.
        """
        if self.journal is not None:
            return self.journal.call(
                "keys",
                self._keys_rpc,
                classify=lambda ks: {"n": len(ks), "keys_digest": digest_keys(ks)},
            )
        return self._keys_rpc()

    def _keys_rpc(self) -> List[bytes]:
        if self.faults.enabled(Fault.LIST_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.LIST_REMOVE_RACE,
                    "API",
                    "listing iterates the routing table without the node lock",
                )
            out: List[bytes] = []
            for key in self._shard_map:  # no lock: mutations race with us
                yield_point("keys: unlocked iteration")
                out.append(key)
            return sorted(out)
        with self._lock:
            return sorted(self._shard_map)

    def list_shards(self) -> List[bytes]:
        """Deprecated alias of :meth:`keys` (the unified KVNode spelling)."""
        warnings.warn(
            "StorageNode.list_shards() is deprecated; use keys()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.keys()

    def remove_disk(self, disk_id: int) -> int:
        """Take a disk out of service, migrating its shards; returns the
        number of shards migrated."""
        self._check_disk(disk_id)
        if self.journal is not None:
            # Journaled as a control-plane op: the migration's store-level
            # get/put traffic is nested (invisible) and the key-value
            # mapping is unchanged, matching the reference model.
            return self.journal.call(
                "remove_disk",
                lambda: self._remove_disk_rpc(disk_id),
                fields={"disk": disk_id},
                classify=lambda migrated: {"migrated": migrated},
            )
        return self._remove_disk_rpc(disk_id)

    def _remove_disk_rpc(self, disk_id: int) -> int:
        with self._lock:
            if not self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} already removed")
            if sum(self._in_service) == 1:
                raise InvalidRequestError("cannot remove the last disk")
            owned = sorted(
                key for key, d in self._shard_map.items() if d == disk_id
            )
            self._removed_routing[disk_id] = {key: disk_id for key in owned}
            self._in_service[disk_id] = False
            migrated = 0
            for key in owned:
                value = self._wrap_transient(
                    lambda k=key: self._store(disk_id).get(k)
                )
                target = self._pick_target(key)
                self._store(target).put(key, value)
                self._shard_map[key] = target
                migrated += 1
                self.stats.migrations += 1
        return migrated

    def return_disk(self, disk_id: int) -> None:
        """Bring a previously removed disk back into service.

        The disk's old shards were migrated away at removal; routing must
        not change when it returns.  Fault #4 merges the stale pre-removal
        routing back in, pointing reads at the returned disk's old data and
        losing every write made while it was away.
        """
        self._check_disk(disk_id)
        if self.journal is not None:
            self.journal.call(
                "return_disk",
                lambda: self._return_disk_rpc(disk_id),
                fields={"disk": disk_id},
            )
            return
        self._return_disk_rpc(disk_id)

    def _return_disk_rpc(self, disk_id: int) -> None:
        with self._lock:
            if self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} is in service")
            self._in_service[disk_id] = True
            # An operator returning a disk vouches for it: clear degraded
            # mode and start its breaker (and admission queue) fresh.
            self._degraded[disk_id] = False
            old_state = self._breakers[disk_id].state
            self._breakers[disk_id] = CircuitBreaker(self.breaker_config)
            if self.journal is not None:
                self._breakers[disk_id].on_transition = (
                    self._journal_breaker_hook(disk_id)
                )
                if old_state is not BreakerState.CLOSED:
                    # The fresh breaker starts CLOSED by operator fiat, not
                    # through the state machine; mark the reset so the
                    # mined legality invariant treats it as an edge reset.
                    self.journal.record_op(
                        "breaker",
                        disk=disk_id,
                        reset=True,
                        **{"from": old_state.value, "to": "closed"},
                    )
            if self._admissions:
                self._admissions[disk_id].reset(self._clock)
            stale = self._removed_routing.pop(disk_id, {})
            if self.faults.enabled(Fault.DISK_RETURN_DROPS_SHARDS):
                if self.recorder.enabled:
                    self.recorder.fault_event(
                        Fault.DISK_RETURN_DROPS_SHARDS,
                        "API",
                        f"disk {disk_id} returned; merging {len(stale)} stale "
                        "routing entries",
                    )
                for key, old_disk in stale.items():
                    if key in self._shard_map:
                        self._shard_map[key] = old_disk

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < len(self.systems):
            raise InvalidRequestError(f"no disk {disk_id}")

    def migrate_shard(self, key: bytes, target: int) -> bool:
        """Move one shard to a specific disk (the paper's control-plane
        migration).  Returns False if the shard does not exist; no-op if
        it already lives on ``target``."""
        self._check_disk(target)
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "migrate",
                lambda: self._migrate_shard_rpc(key, target),
                key=key,
                fields={"disk": target},
                classify=lambda moved: {"result": bool(moved)},
            )
        return self._migrate_shard_rpc(key, target)

    def _migrate_shard_rpc(self, key: bytes, target: int) -> bool:
        with self._lock:
            source = self._shard_map.get(key)
            if source is None:
                return False
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
            if source == target:
                return True
            value = self._wrap_transient(lambda: self._store(source).get(key))
            self._store(target).put(key, value)
            self._shard_map[key] = target
            self._store(source).delete(key)
            self.stats.migrations += 1
            return True

    def _wrap_transient(self, fn: Callable[[], _T]) -> _T:
        """The error contract for under-lock store IO (no breaker feed:
        demotion re-acquires the node lock, so locked paths only wrap)."""
        try:
            return fn()
        except IoError as exc:
            if exc.transient:
                self.stats.wrapped_transients += 1
                raise RetryableError(
                    f"transient IO failure during control-plane operation: {exc}"
                ) from exc
            raise

    def scrub_all(self):
        """Repair-oriented integrity pass over every in-service disk."""
        reports = {}
        for disk_id, system in enumerate(self.systems):
            if self._in_service[disk_id]:
                reports[disk_id] = system.store.scrub()
        return reports

    def scrub_repair_all(self) -> Dict[int, RepairReport]:
        """Scrub-and-heal every in-service disk (see
        :meth:`ShardStore.scrub_repair`); failures feed the disk breaker."""
        if self.journal is not None:
            return self.journal.call(
                "scrub_repair",
                self._scrub_repair_all_rpc,
                classify=lambda reports: {
                    "repaired": sorted(
                        digest_bytes(k)
                        for report in reports.values()
                        for k in report.repaired
                    )
                    or None,
                    "quarantined": sorted(
                        digest_bytes(k)
                        for report in reports.values()
                        for k in report.quarantined
                    )
                    or None,
                },
            )
        return self._scrub_repair_all_rpc()

    def _scrub_repair_all_rpc(self) -> Dict[int, RepairReport]:
        reports: Dict[int, RepairReport] = {}
        for disk_id, system in enumerate(self.systems):
            if not self._in_service[disk_id]:
                continue
            try:
                report = self._disk_io(disk_id, system.store.scrub_repair)
            except (RetryableError, IoError):
                continue  # the breaker saw the failure; heal what we can
            reports[disk_id] = report
            self.stats.repaired += len(report.repaired)
            self.stats.quarantined += len(report.quarantined)
        return reports

    # ------------------------------------------------------------------
    # self-healing: breaker-driven demotion, probe, re-admission

    def _demote(self, disk_id: int) -> None:
        """Take a tripped disk out of service, migrating what it will yield.

        Unlike :meth:`remove_disk` (an operator action that expects a
        healthy disk), demotion tolerates per-shard read failures: shards
        the dying disk refuses to yield stay routed to it and the disk
        enters *degraded read-only* mode -- stranded reads are attempted
        best-effort, writes re-steer to healthy disks.
        """
        with self._lock:
            if not self._in_service[disk_id]:
                return
            if sum(self._in_service) == 1:
                # Nowhere to migrate: the last disk limps along degraded.
                self._degraded[disk_id] = True
                return
            owned = sorted(
                key for key, d in self._shard_map.items() if d == disk_id
            )
            self._in_service[disk_id] = False
            migrated = 0
            stranded = 0
            for key in owned:
                try:
                    value = self._retry(
                        disk_id, lambda k=key: self._store(disk_id).get(k)
                    )
                except ShardStoreError:
                    stranded += 1
                    continue  # stays routed to the demoted disk
                target = self._pick_target(key)
                self._store(target).put(key, value)
                self._shard_map[key] = target
                migrated += 1
                self.stats.migrations += 1
            if stranded:
                self._degraded[disk_id] = True
            self.stats.demotions += 1
            self.stats.shards_stranded += stranded
            if self.recorder.enabled:
                self.recorder.event(
                    "node.disk_demoted",
                    disk=disk_id,
                    migrated=migrated,
                    stranded=stranded,
                )

    def _probe_disk(self, disk_id: int) -> None:
        """Health-check a tripped disk end to end; re-admit on success.

        The probe exercises the whole medium path -- write, drain to disk,
        read back, delete, scrub -- because a disk with no shards left
        would otherwise pass a scrub-only probe vacuously.
        """
        breaker = self._breakers[disk_id]
        breaker.begin_probe()
        self.stats.breaker_probes += 1
        if self.recorder.enabled:
            self.recorder.count("node.breaker_probes")
        store = self._store(disk_id)
        disk_stats = store.disk.stats
        busy_before = disk_stats.busy_units
        ios_before = disk_stats.reads + disk_stats.writes + disk_stats.resets
        try:
            store.put(PROBE_KEY, b"probe")
            store.drain()
            ok = store.get(PROBE_KEY) == b"probe"
            store.delete(PROBE_KEY)
            store.drain()
            report = store.scrub()
            ok = ok and report.io_errors == 0 and report.clean
        except ShardStoreError:
            ok = False
        if ok and self.admission is not None:
            # A SLOW-tripped disk must also prove it is fast again: the
            # probe's measured per-IO cost stays within the budget or the
            # breaker falls back to SLOW and keeps cooling down.
            io_delta = (
                disk_stats.reads + disk_stats.writes + disk_stats.resets
            ) - ios_before
            busy_delta = disk_stats.busy_units - busy_before
            if io_delta > 0:
                per_io_milli = busy_delta * 1000 // io_delta
                ok = per_io_milli <= self.admission.probe_io_budget_milli
        breaker.on_probe(ok, self._op_count)
        if self.recorder.enabled:
            self.recorder.event("node.breaker_probe", disk=disk_id, ok=ok)
        if breaker.state is BreakerState.PROBATION:
            self._readmit(disk_id)

    def _readmit(self, disk_id: int) -> None:
        """Bring a probed-healthy disk back into service on probation.

        Routing is untouched: shards migrated away at demotion stay where
        they are, and stranded shards become fully servable again.
        """
        with self._lock:
            self._in_service[disk_id] = True
            self._degraded[disk_id] = False
            if self._admissions:
                self._admissions[disk_id].reset(self._clock)
        self.stats.readmissions += 1
        if self.recorder.enabled:
            self.recorder.count("node.readmissions")
            self.recorder.event("node.disk_readmitted", disk=disk_id)

    def degraded(self, disk_id: int) -> bool:
        """Whether ``disk_id`` is in degraded read-only mode."""
        self._check_disk(disk_id)
        return self._degraded[disk_id]

    def route_of(self, key: bytes) -> Optional[int]:
        """The disk ``key`` currently routes to (None when unrouted).

        Checkers use this to decide whether a failed read is honest
        unavailability (the shard is stranded on a demoted/degraded disk)
        or a conformance violation on a healthy one.
        """
        validate_key(key)
        with self._lock:
            return self._shard_map.get(key)

    def breaker_state(self, disk_id: int) -> BreakerState:
        self._check_disk(disk_id)
        return self._breakers[disk_id].state

    def health_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-disk breaker/health view for metrics exposition.

        Returns ``{"counters": {...}, "gauges": {...}}``; the gauges carry
        breaker state codes (0=closed 1=open 2=half-open 3=probation),
        sliding-window error rates, and service/degraded flags per disk.
        """
        counters: Dict[str, float] = {
            "node.breaker_trips": self.stats.breaker_trips,
            "node.breaker_probes": self.stats.breaker_probes,
            "node.readmissions": self.stats.readmissions,
            "node.retries": self.stats.retries,
            "node.wrapped_transients": self.stats.wrapped_transients,
            "node.demotions": self.stats.demotions,
            "node.shards_stranded": self.stats.shards_stranded,
            "node.scrub_repaired": self.stats.repaired,
            "node.scrub_quarantined": self.stats.quarantined,
            "node.shed_overload": self.stats.shed_overload,
            "node.shed_deadline": self.stats.shed_deadline,
            "node.hedges": self.stats.hedges,
            "node.slow_trips": self.stats.slow_trips,
            "node.deadline_violations": self.stats.deadline_violations,
            "node.retry_budget_exhausted": self.stats.retry_budget_exhausted,
        }
        gauges: Dict[str, float] = {}
        for disk_id, breaker in enumerate(self._breakers):
            prefix = f"node.disk{disk_id}"
            gauges[f"{prefix}.breaker_state"] = breaker.state.code
            gauges[f"{prefix}.error_rate"] = breaker.health.error_rate()
            gauges[f"{prefix}.in_service"] = float(self._in_service[disk_id])
            gauges[f"{prefix}.degraded"] = float(self._degraded[disk_id])
            if self._admissions:
                queue = self._admissions[disk_id]
                gauges[f"{prefix}.queue_backlog_units"] = float(
                    queue.backlog_units(self._clock, self._pending_cost(disk_id))
                )
                gauges[f"{prefix}.queue_depth"] = float(
                    self._store(disk_id).scheduler.pending_count
                )
                gauges[f"{prefix}.latency_ewma"] = queue.ewma.milli / 1000.0
                gauges[f"{prefix}.inflight"] = float(queue.inflight)
        if self._retry_budget is not None:
            gauges["node.retry_budget_tokens"] = float(self._retry_budget.tokens)
        return {"counters": counters, "gauges": gauges}

    # ------------------------------------------------------------------
    # bulk control-plane operations

    def bulk_create(self, pairs: List[Tuple[bytes, bytes]]) -> int:
        """Create many shards as one atomic control-plane operation.

        Fault #16 releases the node lock between items, so a concurrent
        bulk operation observes (and produces) partial states.
        """
        if self.journal is not None:
            return self.journal.call(
                "bulk_create",
                lambda: self._bulk_create_rpc(pairs),
                fields={
                    "items": [
                        [digest_bytes(k), digest_bytes(v)] for k, v in pairs
                    ]
                },
                classify=lambda created: {"n": created},
            )
        return self._bulk_create_rpc(pairs)

    def _bulk_create_rpc(self, pairs: List[Tuple[bytes, bytes]]) -> int:
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BULK_CREATE_REMOVE_RACE,
                    "API",
                    f"bulk_create of {len(pairs)} shards releases the node "
                    "lock between items",
                )
            created = 0
            for key, value in pairs:
                yield_point("bulk_create: between items")
                self.put(key, value)
                created += 1
            return created
        with self._lock:
            created = 0
            for key, value in pairs:
                target = self._shard_map.get(key)
                if target is None or not self._in_service[target]:
                    target = self._pick_target(key)
                self._shard_map[key] = target
                self._wrap_transient(
                    lambda t=target, k=key, v=value: self._store(t).put(k, v)
                )
                created += 1
            return created

    def bulk_delete(self, keys: List[bytes]) -> int:
        """Delete many shards as one atomic control-plane operation."""
        if self.journal is not None:
            return self.journal.call(
                "bulk_delete",
                lambda: self._bulk_delete_rpc(keys),
                fields={"items": [digest_bytes(k) for k in keys]},
                classify=lambda deleted: {"n": deleted},
            )
        return self._bulk_delete_rpc(keys)

    def _bulk_delete_rpc(self, keys: List[bytes]) -> int:
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BULK_CREATE_REMOVE_RACE,
                    "API",
                    f"bulk_delete of {len(keys)} shards releases the node "
                    "lock between items",
                )
            deleted = 0
            for key in keys:
                yield_point("bulk_delete: between items")
                try:
                    self.delete(key)
                except KeyNotFoundError:
                    continue
                deleted += 1
            return deleted
        with self._lock:
            deleted = 0
            for key in keys:
                target = self._shard_map.pop(key, None)
                if target is not None and self._in_service[target]:
                    self._wrap_transient(
                        lambda t=target, k=key: self._store(t).delete(k)
                    )
                    deleted += 1
            return deleted

    # ------------------------------------------------------------------
    # maintenance passthrough

    @property
    def num_disks(self) -> int:
        return len(self.systems)

    def in_service(self, disk_id: int) -> bool:
        self._check_disk(disk_id)
        return self._in_service[disk_id]

    def contains(self, key: bytes) -> bool:
        """Whether this node currently routes ``key``."""
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "contains",
                lambda: self._contains_rpc(key),
                key=key,
                classify=lambda present: {"result": bool(present)},
            )
        return self._contains_rpc(key)

    def _contains_rpc(self, key: bytes) -> bool:
        with self._lock:
            return key in self._shard_map

    def flush(self) -> NodeDependency:
        """Flush every in-service disk; the combined durability dependency."""
        if self.journal is not None:
            return self.journal.call("flush", self._flush_rpc)
        return self._flush_rpc()

    def _flush_rpc(self) -> NodeDependency:
        self._tick()
        if not self.recorder.enabled:
            return self._flush()
        with self.recorder.span("node.flush"):
            return self._flush()

    def _flush(self) -> NodeDependency:
        deps, errors = self._each_in_service(lambda store: store.flush())
        self._raise_if_still_failing(errors, "flush")
        return NodeDependency([dep for dep in deps if dep is not None])

    def drain(self) -> None:
        """Write back everything pending on every in-service disk.

        Per-disk failures feed the circuit breaker; a failure only
        propagates if its disk is *still* in service afterwards -- a disk
        the breaker demoted mid-drain had its shards migrated, so the node
        as a whole made forward progress.
        """
        if self.journal is not None:
            return self.journal.call("drain", self._drain_rpc)
        return self._drain_rpc()

    def _drain_rpc(self) -> None:
        self._tick()
        _, errors = self._each_in_service(lambda store: store.drain())
        self._raise_if_still_failing(errors, "drain")

    def _each_in_service(
        self, fn: Callable[[ShardStore], _T]
    ) -> Tuple[List[Optional[_T]], List[Tuple[int, IoError]]]:
        """Apply ``fn`` per in-service disk, feeding breaker and admission.

        Flush/drain are where queued writebacks actually hit the medium, so
        with admission enabled each disk's measured cost is charged to its
        virtual queue here -- this is the main brownout signal for
        write-heavy load, since ``put`` itself only queues records.
        """
        results: List[Optional[_T]] = []
        errors: List[Tuple[int, IoError]] = []
        for disk_id, system in enumerate(self.systems):
            if not self._in_service[disk_id]:
                continue
            disk_stats = system.store.disk.stats
            busy_before = disk_stats.busy_units
            reads_before = disk_stats.reads
            ios_before = (
                disk_stats.reads + disk_stats.writes + disk_stats.resets
            )
            try:
                results.append(self._retry(disk_id, lambda s=system: fn(s.store)))
            except IoError as exc:
                self._record_failure(disk_id)
                errors.append((disk_id, exc))
                results.append(None)
            else:
                self._record_success(disk_id)
            finally:
                if self._admissions and self._in_service[disk_id]:
                    busy_delta = disk_stats.busy_units - busy_before
                    io_delta = (
                        disk_stats.reads + disk_stats.writes + disk_stats.resets
                    ) - ios_before
                    queue = self._admissions[disk_id]
                    charge = self._charge_units(
                        disk_id, busy_delta, disk_stats.reads - reads_before
                    )
                    if queue.complete(
                        self._clock, busy_delta, io_delta, charge_units=charge
                    ):
                        self._trip_slow(disk_id)
        return results, errors

    def _raise_if_still_failing(
        self, errors: List[Tuple[int, IoError]], op: str
    ) -> None:
        for disk_id, exc in errors:
            if not self._in_service[disk_id]:
                continue
            if exc.transient:
                self.stats.wrapped_transients += 1
                raise RetryableError(
                    f"disk {disk_id}: {op} failed past retries: {exc}"
                ) from exc
            raise exc

    def drain_all(self) -> None:
        self.drain()
