"""The storage-node RPC layer: many disks, one request interface.

ShardStore hosts run several HDDs; each disk is an isolated failure domain
running an independent key-value store, and a shared RPC layer steers
requests to target disks by shard id (section 2.1).  This module implements
that layer plus the control-plane operations the paper's API-level issues
live in:

* ``remove_disk``/``return_disk`` -- taking a disk out of service migrates
  its shards to the remaining disks; fault #4 re-installs the removed
  disk's stale routing entries when it returns, resurrecting old data and
  losing writes made while it was away.
* ``keys`` (formerly ``list_shards``) -- fault #13 iterates the routing
  table without the node lock, racing concurrent removals.
* ``bulk_create``/``bulk_delete`` -- fault #16 releases the node lock
  between items, so concurrent bulk operations interleave non-atomically.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.concurrency.primitives import Mutex, yield_point

from .config import StoreConfig
from .dependency import Dependency
from .errors import (
    InvalidRequestError,
    KeyNotFoundError,
    NotFoundError,
    RetryableError,
    validate_key,
)
from .faults import Fault, FaultSet
from .store import ShardStore, StoreSystem


def _steer(key: bytes, num_disks: int) -> int:
    """Deterministic primary disk for a shard id."""
    return zlib.crc32(key) % num_disks


class NodeDependency:
    """Conjunction of per-disk dependencies.

    Each disk is an isolated failure domain with its own
    :class:`~repro.shardstore.dependency.DurabilityTracker`, so node-wide
    operations cannot use :meth:`Dependency.and_` (it rejects cross-system
    combination by design).  This wrapper provides the same
    ``is_persistent()`` observable over the conjunction.
    """

    __slots__ = ("deps",)

    def __init__(self, deps: List[Dependency]) -> None:
        self.deps = tuple(deps)

    def is_persistent(self) -> bool:
        return all(dep.is_persistent() for dep in self.deps)


@dataclass
class NodeStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    migrations: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Request-plane totals, named for metrics exposition."""
        return {
            "node.puts": self.puts,
            "node.gets": self.gets,
            "node.deletes": self.deletes,
            "node.migrations": self.migrations,
        }


class StorageNode:
    """A multi-disk ShardStore storage node with a steering RPC layer."""

    def __init__(
        self,
        num_disks: int = 3,
        config: Optional[StoreConfig] = None,
    ) -> None:
        if num_disks < 1:
            raise InvalidRequestError("a storage node needs at least one disk")
        base = config or StoreConfig()
        self.config = base
        self.faults: FaultSet = base.faults
        self.recorder = base.recorder
        self.systems: List[StoreSystem] = []
        for disk_id in range(num_disks):
            cfg = StoreConfig(
                geometry=base.geometry,
                faults=base.faults,
                max_chunk_payload=base.max_chunk_payload,
                memtable_flush_threshold=base.memtable_flush_threshold,
                superblock_flush_cadence=base.superblock_flush_cadence,
                buffer_cache_pages=base.buffer_cache_pages,
                seed=base.seed + disk_id + 1,
                uuid_magic_bias=base.uuid_magic_bias,
                recorder=base.recorder,
            )
            self.systems.append(StoreSystem(cfg))
        self._in_service: List[bool] = [True] * num_disks
        self._shard_map: Dict[bytes, int] = {}
        # Fault #4's stale state: routing entries saved at removal time.
        self._removed_routing: Dict[int, Dict[bytes, int]] = {}
        self._lock = Mutex(None, name="storage-node")
        self.stats = NodeStats()

    # ------------------------------------------------------------------
    # request plane

    def _store(self, disk_id: int) -> ShardStore:
        return self.systems[disk_id].store

    def put(self, key: bytes, value: bytes) -> Dependency:
        # Request validation belongs at the RPC boundary: an invalid key
        # must be rejected identically by every operation, not only by the
        # ones whose routing happens to reach a per-disk store.
        validate_key(key)
        self.stats.puts += 1
        with self._lock:
            target = self._shard_map.get(key)
            if target is None or not self._in_service[target]:
                target = self._pick_target(key)
            self._shard_map[key] = target
        if not self.recorder.enabled:
            return self._store(target).put(key, value)
        with self.recorder.span("node.put", key=repr(key), disk=target):
            return self._store(target).put(key, value)

    def get(self, key: bytes) -> bytes:
        validate_key(key)
        self.stats.gets += 1
        with self._lock:
            target = self._shard_map.get(key)
        if target is None:
            raise NotFoundError(f"no shard for key {key!r}")
        if not self._in_service[target]:
            raise RetryableError(f"disk {target} is out of service")
        if not self.recorder.enabled:
            return self._store(target).get(key)
        with self.recorder.span("node.get", key=repr(key), disk=target):
            return self._store(target).get(key)

    def delete(self, key: bytes) -> Dependency:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent.

        Out-of-service routing targets surface as :class:`RetryableError`
        *without* dropping the routing entry, so a retry after
        ``return_disk`` still finds the shard.
        """
        validate_key(key)
        self.stats.deletes += 1
        with self._lock:
            target = self._shard_map.get(key)
            if target is None:
                raise KeyNotFoundError(f"no shard for key {key!r}")
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
            del self._shard_map[key]
        if not self.recorder.enabled:
            return self._store(target).delete(key)
        with self.recorder.span("node.delete", key=repr(key), disk=target):
            return self._store(target).delete(key)

    def _pick_target(self, key: bytes) -> int:
        primary = _steer(key, len(self.systems))
        for probe in range(len(self.systems)):
            disk_id = (primary + probe) % len(self.systems)
            if self._in_service[disk_id]:
                return disk_id
        raise RetryableError("no disk in service")

    # ------------------------------------------------------------------
    # control plane

    def keys(self) -> List[bytes]:
        """Every shard id this node currently routes.

        The correct implementation snapshots under the node lock; fault #13
        iterates the live routing table with preemption points, racing
        concurrent removals.
        """
        if self.faults.enabled(Fault.LIST_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.LIST_REMOVE_RACE,
                    "API",
                    "listing iterates the routing table without the node lock",
                )
            out: List[bytes] = []
            for key in self._shard_map:  # no lock: mutations race with us
                yield_point("keys: unlocked iteration")
                out.append(key)
            return sorted(out)
        with self._lock:
            return sorted(self._shard_map)

    def list_shards(self) -> List[bytes]:
        """Deprecated alias of :meth:`keys` (the unified KVNode spelling)."""
        warnings.warn(
            "StorageNode.list_shards() is deprecated; use keys()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.keys()

    def remove_disk(self, disk_id: int) -> int:
        """Take a disk out of service, migrating its shards; returns the
        number of shards migrated."""
        self._check_disk(disk_id)
        with self._lock:
            if not self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} already removed")
            if sum(self._in_service) == 1:
                raise InvalidRequestError("cannot remove the last disk")
            owned = sorted(
                key for key, d in self._shard_map.items() if d == disk_id
            )
            self._removed_routing[disk_id] = {key: disk_id for key in owned}
            self._in_service[disk_id] = False
            migrated = 0
            for key in owned:
                value = self._store(disk_id).get(key)
                target = self._pick_target(key)
                self._store(target).put(key, value)
                self._shard_map[key] = target
                migrated += 1
                self.stats.migrations += 1
        return migrated

    def return_disk(self, disk_id: int) -> None:
        """Bring a previously removed disk back into service.

        The disk's old shards were migrated away at removal; routing must
        not change when it returns.  Fault #4 merges the stale pre-removal
        routing back in, pointing reads at the returned disk's old data and
        losing every write made while it was away.
        """
        self._check_disk(disk_id)
        with self._lock:
            if self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} is in service")
            self._in_service[disk_id] = True
            stale = self._removed_routing.pop(disk_id, {})
            if self.faults.enabled(Fault.DISK_RETURN_DROPS_SHARDS):
                if self.recorder.enabled:
                    self.recorder.fault_event(
                        Fault.DISK_RETURN_DROPS_SHARDS,
                        "API",
                        f"disk {disk_id} returned; merging {len(stale)} stale "
                        "routing entries",
                    )
                for key, old_disk in stale.items():
                    if key in self._shard_map:
                        self._shard_map[key] = old_disk

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < len(self.systems):
            raise InvalidRequestError(f"no disk {disk_id}")

    def migrate_shard(self, key: bytes, target: int) -> bool:
        """Move one shard to a specific disk (the paper's control-plane
        migration).  Returns False if the shard does not exist; no-op if
        it already lives on ``target``."""
        self._check_disk(target)
        validate_key(key)
        with self._lock:
            source = self._shard_map.get(key)
            if source is None:
                return False
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
            if source == target:
                return True
            value = self._store(source).get(key)
            self._store(target).put(key, value)
            self._shard_map[key] = target
            self._store(source).delete(key)
            self.stats.migrations += 1
            return True

    def scrub_all(self):
        """Repair-oriented integrity pass over every in-service disk."""
        reports = {}
        for disk_id, system in enumerate(self.systems):
            if self._in_service[disk_id]:
                reports[disk_id] = system.store.scrub()
        return reports

    # ------------------------------------------------------------------
    # bulk control-plane operations

    def bulk_create(self, pairs: List[Tuple[bytes, bytes]]) -> int:
        """Create many shards as one atomic control-plane operation.

        Fault #16 releases the node lock between items, so a concurrent
        bulk operation observes (and produces) partial states.
        """
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BULK_CREATE_REMOVE_RACE,
                    "API",
                    f"bulk_create of {len(pairs)} shards releases the node "
                    "lock between items",
                )
            created = 0
            for key, value in pairs:
                yield_point("bulk_create: between items")
                self.put(key, value)
                created += 1
            return created
        with self._lock:
            created = 0
            for key, value in pairs:
                target = self._shard_map.get(key)
                if target is None or not self._in_service[target]:
                    target = self._pick_target(key)
                self._shard_map[key] = target
                self._store(target).put(key, value)
                created += 1
            return created

    def bulk_delete(self, keys: List[bytes]) -> int:
        """Delete many shards as one atomic control-plane operation."""
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BULK_CREATE_REMOVE_RACE,
                    "API",
                    f"bulk_delete of {len(keys)} shards releases the node "
                    "lock between items",
                )
            deleted = 0
            for key in keys:
                yield_point("bulk_delete: between items")
                try:
                    self.delete(key)
                except KeyNotFoundError:
                    continue
                deleted += 1
            return deleted
        with self._lock:
            deleted = 0
            for key in keys:
                target = self._shard_map.pop(key, None)
                if target is not None and self._in_service[target]:
                    self._store(target).delete(key)
                    deleted += 1
            return deleted

    # ------------------------------------------------------------------
    # maintenance passthrough

    @property
    def num_disks(self) -> int:
        return len(self.systems)

    def in_service(self, disk_id: int) -> bool:
        self._check_disk(disk_id)
        return self._in_service[disk_id]

    def contains(self, key: bytes) -> bool:
        """Whether this node currently routes ``key``."""
        validate_key(key)
        with self._lock:
            return key in self._shard_map

    def flush(self) -> NodeDependency:
        """Flush every in-service disk; the combined durability dependency."""
        if not self.recorder.enabled:
            return self._flush()
        with self.recorder.span("node.flush"):
            return self._flush()

    def _flush(self) -> NodeDependency:
        return NodeDependency(
            [
                system.store.flush()
                for disk_id, system in enumerate(self.systems)
                if self._in_service[disk_id]
            ]
        )

    def drain(self) -> None:
        """Write back everything pending on every in-service disk."""
        for disk_id, system in enumerate(self.systems):
            if self._in_service[disk_id]:
                system.store.drain()

    def drain_all(self) -> None:
        self.drain()
