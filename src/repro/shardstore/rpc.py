"""The storage-node RPC layer: many disks, one request interface.

ShardStore hosts run several HDDs; each disk is an isolated failure domain
running an independent key-value store, and a shared RPC layer steers
requests to target disks by shard id (section 2.1).  This module implements
that layer plus the control-plane operations the paper's API-level issues
live in:

* ``remove_disk``/``return_disk`` -- taking a disk out of service migrates
  its shards to the remaining disks; fault #4 re-installs the removed
  disk's stale routing entries when it returns, resurrecting old data and
  losing writes made while it was away.
* ``list_shards`` -- fault #13 iterates the routing table without the node
  lock, racing concurrent removals.
* ``bulk_create``/``bulk_delete`` -- fault #16 releases the node lock
  between items, so concurrent bulk operations interleave non-atomically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.concurrency.primitives import Mutex, yield_point

from .config import StoreConfig
from .dependency import Dependency
from .errors import InvalidRequestError, NotFoundError, RetryableError
from .faults import Fault, FaultSet
from .store import MAX_KEY_LEN, ShardStore, StoreSystem


def _steer(key: bytes, num_disks: int) -> int:
    """Deterministic primary disk for a shard id."""
    return zlib.crc32(key) % num_disks


@dataclass
class NodeStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    migrations: int = 0


class StorageNode:
    """A multi-disk ShardStore storage node with a steering RPC layer."""

    def __init__(
        self,
        num_disks: int = 3,
        config: Optional[StoreConfig] = None,
    ) -> None:
        if num_disks < 1:
            raise InvalidRequestError("a storage node needs at least one disk")
        base = config or StoreConfig()
        self.config = base
        self.faults: FaultSet = base.faults
        self.systems: List[StoreSystem] = []
        for disk_id in range(num_disks):
            cfg = StoreConfig(
                geometry=base.geometry,
                faults=base.faults,
                max_chunk_payload=base.max_chunk_payload,
                memtable_flush_threshold=base.memtable_flush_threshold,
                superblock_flush_cadence=base.superblock_flush_cadence,
                buffer_cache_pages=base.buffer_cache_pages,
                seed=base.seed + disk_id + 1,
                uuid_magic_bias=base.uuid_magic_bias,
            )
            self.systems.append(StoreSystem(cfg))
        self._in_service: List[bool] = [True] * num_disks
        self._shard_map: Dict[bytes, int] = {}
        # Fault #4's stale state: routing entries saved at removal time.
        self._removed_routing: Dict[int, Dict[bytes, int]] = {}
        self._lock = Mutex(None, name="storage-node")
        self.stats = NodeStats()

    # ------------------------------------------------------------------
    # request plane

    def _store(self, disk_id: int) -> ShardStore:
        return self.systems[disk_id].store

    @staticmethod
    def _check_key(key: bytes) -> None:
        """Request validation belongs at the RPC boundary: an invalid key
        must be rejected identically by every operation, not only by the
        ones whose routing happens to reach a per-disk store."""
        if not isinstance(key, bytes) or not key:
            raise InvalidRequestError("key must be non-empty bytes")
        if len(key) > MAX_KEY_LEN:
            raise InvalidRequestError("key too long")

    def put(self, key: bytes, value: bytes) -> Dependency:
        self._check_key(key)
        self.stats.puts += 1
        with self._lock:
            target = self._shard_map.get(key)
            if target is None or not self._in_service[target]:
                target = self._pick_target(key)
            self._shard_map[key] = target
        return self._store(target).put(key, value)

    def get(self, key: bytes) -> bytes:
        self._check_key(key)
        self.stats.gets += 1
        with self._lock:
            target = self._shard_map.get(key)
        if target is None:
            raise NotFoundError(f"no shard for key {key!r}")
        if not self._in_service[target]:
            raise RetryableError(f"disk {target} is out of service")
        return self._store(target).get(key)

    def delete(self, key: bytes) -> Optional[Dependency]:
        self._check_key(key)
        self.stats.deletes += 1
        with self._lock:
            target = self._shard_map.pop(key, None)
        if target is None:
            return None
        if not self._in_service[target]:
            raise RetryableError(f"disk {target} is out of service")
        return self._store(target).delete(key)

    def _pick_target(self, key: bytes) -> int:
        primary = _steer(key, len(self.systems))
        for probe in range(len(self.systems)):
            disk_id = (primary + probe) % len(self.systems)
            if self._in_service[disk_id]:
                return disk_id
        raise RetryableError("no disk in service")

    # ------------------------------------------------------------------
    # control plane

    def list_shards(self) -> List[bytes]:
        """Every shard id this node currently routes.

        The correct implementation snapshots under the node lock; fault #13
        iterates the live routing table with preemption points, racing
        concurrent removals.
        """
        if self.faults.enabled(Fault.LIST_REMOVE_RACE):
            out: List[bytes] = []
            for key in self._shard_map:  # no lock: mutations race with us
                yield_point("list_shards: unlocked iteration")
                out.append(key)
            return sorted(out)
        with self._lock:
            return sorted(self._shard_map)

    def remove_disk(self, disk_id: int) -> int:
        """Take a disk out of service, migrating its shards; returns the
        number of shards migrated."""
        self._check_disk(disk_id)
        with self._lock:
            if not self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} already removed")
            if sum(self._in_service) == 1:
                raise InvalidRequestError("cannot remove the last disk")
            owned = sorted(
                key for key, d in self._shard_map.items() if d == disk_id
            )
            self._removed_routing[disk_id] = {key: disk_id for key in owned}
            self._in_service[disk_id] = False
            migrated = 0
            for key in owned:
                value = self._store(disk_id).get(key)
                target = self._pick_target(key)
                self._store(target).put(key, value)
                self._shard_map[key] = target
                migrated += 1
                self.stats.migrations += 1
        return migrated

    def return_disk(self, disk_id: int) -> None:
        """Bring a previously removed disk back into service.

        The disk's old shards were migrated away at removal; routing must
        not change when it returns.  Fault #4 merges the stale pre-removal
        routing back in, pointing reads at the returned disk's old data and
        losing every write made while it was away.
        """
        self._check_disk(disk_id)
        with self._lock:
            if self._in_service[disk_id]:
                raise InvalidRequestError(f"disk {disk_id} is in service")
            self._in_service[disk_id] = True
            stale = self._removed_routing.pop(disk_id, {})
            if self.faults.enabled(Fault.DISK_RETURN_DROPS_SHARDS):
                for key, old_disk in stale.items():
                    if key in self._shard_map:
                        self._shard_map[key] = old_disk

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < len(self.systems):
            raise InvalidRequestError(f"no disk {disk_id}")

    def migrate_shard(self, key: bytes, target: int) -> bool:
        """Move one shard to a specific disk (the paper's control-plane
        migration).  Returns False if the shard does not exist; no-op if
        it already lives on ``target``."""
        self._check_disk(target)
        self._check_key(key)
        with self._lock:
            source = self._shard_map.get(key)
            if source is None:
                return False
            if not self._in_service[target]:
                raise RetryableError(f"disk {target} is out of service")
            if source == target:
                return True
            value = self._store(source).get(key)
            self._store(target).put(key, value)
            self._shard_map[key] = target
            self._store(source).delete(key)
            self.stats.migrations += 1
            return True

    def scrub_all(self):
        """Repair-oriented integrity pass over every in-service disk."""
        reports = {}
        for disk_id, system in enumerate(self.systems):
            if self._in_service[disk_id]:
                reports[disk_id] = system.store.scrub()
        return reports

    # ------------------------------------------------------------------
    # bulk control-plane operations

    def bulk_create(self, pairs: List[Tuple[bytes, bytes]]) -> int:
        """Create many shards as one atomic control-plane operation.

        Fault #16 releases the node lock between items, so a concurrent
        bulk operation observes (and produces) partial states.
        """
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            created = 0
            for key, value in pairs:
                yield_point("bulk_create: between items")
                self.put(key, value)
                created += 1
            return created
        with self._lock:
            created = 0
            for key, value in pairs:
                target = self._shard_map.get(key)
                if target is None or not self._in_service[target]:
                    target = self._pick_target(key)
                self._shard_map[key] = target
                self._store(target).put(key, value)
                created += 1
            return created

    def bulk_delete(self, keys: List[bytes]) -> int:
        """Delete many shards as one atomic control-plane operation."""
        if self.faults.enabled(Fault.BULK_CREATE_REMOVE_RACE):
            deleted = 0
            for key in keys:
                yield_point("bulk_delete: between items")
                if self.delete(key) is not None:
                    deleted += 1
            return deleted
        with self._lock:
            deleted = 0
            for key in keys:
                target = self._shard_map.pop(key, None)
                if target is not None and self._in_service[target]:
                    self._store(target).delete(key)
                    deleted += 1
            return deleted

    # ------------------------------------------------------------------
    # maintenance passthrough

    @property
    def num_disks(self) -> int:
        return len(self.systems)

    def in_service(self, disk_id: int) -> bool:
        self._check_disk(disk_id)
        return self._in_service[disk_id]

    def drain_all(self) -> None:
        for disk_id, system in enumerate(self.systems):
            if self._in_service[disk_id]:
                system.store.drain()
