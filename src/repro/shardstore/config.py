"""Configuration for a single-disk ShardStore instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .disk import DiskGeometry
from .faults import FaultSet
from .observability import NULL_RECORDER, Recorder
from .observability.journal import Journal
from .resilience import RetryPolicy

#: Extents 0 and 1 alternate as the superblock log (section 2.1's extent 0).
SUPERBLOCK_EXTENTS: Tuple[int, int] = (0, 1)
#: Extents 2 and 3 alternate as the reserved LSM metadata extent.
METADATA_EXTENTS: Tuple[int, int] = (2, 3)
#: First extent available for chunk data.
FIRST_DATA_EXTENT = 4


@dataclass
class StoreConfig:
    """Tunables for one ShardStore key-value store (one disk).

    The defaults are sized for testing: small pages and extents make
    page-boundary corner cases (the paper's most frequent bug source,
    section 4.2) and extent-exhaustion/reclamation paths cheap to reach.
    """

    geometry: DiskGeometry = field(
        default_factory=lambda: DiskGeometry(
            num_extents=16, extent_size=4096, page_size=128
        )
    )
    faults: FaultSet = field(default_factory=FaultSet.none)
    #: Payload bytes per chunk; shards larger than this span several chunks.
    max_chunk_payload: int = 256
    #: Memtable entries that trigger an automatic LSM flush.
    memtable_flush_threshold: int = 8
    #: Appends between automatic superblock flushes ("regular cadence").
    superblock_flush_cadence: int = 6
    #: Page-cache capacity, in pages.
    buffer_cache_pages: int = 64
    #: Optional page-cache capacity in resident bytes.  When set, eviction is
    #: size-aware (partial pages cost what they actually hold) and
    #: ``buffer_cache_pages`` is ignored.
    buffer_cache_bytes: Optional[int] = None
    #: Group-commit batch window: max page records the coalescing drain paths
    #: (``IoScheduler.flush_coalesced`` / ``pump_one(coalesce=True)``) merge
    #: into one device IO.  Enqueue granularity stays page-sized regardless,
    #: so crash-state exploration is unaffected.
    io_batch_pages: int = 64
    #: Seed for the store's internal RNG (chunk UUIDs, writeback order).
    seed: int = 0
    #: Probability that a generated chunk UUID's tail bytes collide with the
    #: chunk magic -- an argument *bias* (section 4.2) that makes the paper's
    #: bug #10 scenario reachable in reasonable test budgets.  Zero disables.
    uuid_magic_bias: float = 0.0
    #: Trace/metrics sink threaded through every component.  The default
    #: :class:`NullRecorder` keeps hot paths allocation-free; pass a
    #: :class:`~repro.shardstore.observability.RingRecorder` to capture.
    recorder: Recorder = field(default=NULL_RECORDER)
    #: Request-plane retry policy for transient IO errors.  ``None`` (the
    #: default) keeps the historical fail-fast behaviour the Fig. 5 fault
    #: matrix detects against; the node layer and the injection campaign
    #: opt in explicitly.
    retry_policy: Optional[RetryPolicy] = None
    #: Evidence-plane op journal (see :mod:`repro.shardstore.observability.
    #: journal`).  ``None`` (the default) keeps the request plane free of
    #: journaling entirely; a :class:`StorageNode` propagates one shared
    #: instance into its per-disk stores, and the journal's nesting guard
    #: ensures each client-visible operation emits exactly one record.
    journal: Optional[Journal] = None

    def __post_init__(self) -> None:
        if self.geometry.num_extents < FIRST_DATA_EXTENT + 2:
            raise ValueError(
                f"need at least {FIRST_DATA_EXTENT + 2} extents "
                "(superblock pair, metadata pair, and two data extents)"
            )
        frame_overhead = 64  # generous bound; chunk.FRAME_OVERHEAD is exact
        if self.max_chunk_payload + frame_overhead > self.geometry.extent_size:
            raise ValueError("max_chunk_payload too large for extent size")

    @property
    def data_extents(self) -> range:
        return range(FIRST_DATA_EXTENT, self.geometry.num_extents)
