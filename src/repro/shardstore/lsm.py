"""The LSM-tree index: shard identifiers -> chunk locators.

ShardStore's index is a log-structured merge tree whose backing storage is
itself chunks (section 2.1, Fig. 1): the in-memory *memtable* absorbs
mutations; a *flush* serialises it into a sorted run stored as a
``KIND_RUN`` chunk and appends a metadata record -- the list of run
locators currently in use by the tree -- to a reserved metadata extent;
*compaction* merges runs into one and retires the old run chunks, which
chunk reclamation later collects.

Persistence promises: a ``put`` returns immediately with a dependency of
``shard-data AND index-entry-future``; the future is resolved at flush time
with the run chunk's dependency and the metadata record's dependency --
matching Fig. 2, where a put is durable only once the shard data, the index
entry, and the LSM metadata pointing at it are all durable.

Concurrency: the memtable/run-set is guarded by an instrumented
:class:`~repro.concurrency.primitives.Mutex`.  Compaction deliberately
releases the lock while writing the merged run chunk (holding a lock across
IO would serialise the store); the *pin* it takes on the extent it writes
into is what keeps reclamation from destroying the not-yet-referenced chunk
-- removing the pin is the paper's issue #14, its section 6 example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.concurrency.primitives import Mutex, yield_point
from repro.serialization.codec import encode_record, scan_records

from .chunk import KIND_RUN, Locator
from .chunk_store import ChunkStore
from .config import METADATA_EXTENTS, StoreConfig
from .dependency import Dependency, DurabilityTracker, FutureCell
from .errors import CorruptionError, ShardStoreError
from .faults import Fault
from .scheduler import IoScheduler


@dataclass
class _MemEntry:
    """One memtable entry: locators (or tombstone) plus its promises."""

    locators: Optional[List[Locator]]  # None is a tombstone
    data_dep: Dependency
    cell: FutureCell


@dataclass
class Run:
    """One on-disk sorted run."""

    run_id: int
    locator: Locator
    entries: Dict[bytes, Optional[List[Locator]]]
    dep: Dependency


def _run_key(run_id: int) -> bytes:
    return b"run:%d" % run_id


class LsmIndex:
    """The persistent index, with its reference-model-checkable interface."""

    def __init__(
        self,
        chunk_store: ChunkStore,
        scheduler: IoScheduler,
        config: StoreConfig,
        *,
        runs: Optional[List[Run]] = None,
        next_run_id: int = 0,
        meta_slot: int = 0,
    ) -> None:
        self.chunk_store = chunk_store
        self.scheduler = scheduler
        self.tracker: DurabilityTracker = scheduler.tracker
        self.config = config
        self.faults = config.faults
        self.recorder = config.recorder
        self._memtable: Dict[bytes, _MemEntry] = {}
        self._runs: List[Run] = list(runs or [])  # oldest first
        self._next_run_id = next_run_id
        self._meta_slot = meta_slot
        self._meta_switched = False
        self._lock = Mutex(None, name="lsm-index")
        # Cumulative shard-data dependency per live key, so relocations can
        # keep persistence reporting conservative across multi-chunk shards.
        self._data_deps: Dict[bytes, Dependency] = {}
        self._last_meta_dep: Dependency = Dependency.root(self.tracker)

    # ------------------------------------------------------------------
    # key-value interface

    def put(self, key: bytes, locators: List[Locator], data_dep: Dependency) -> Dependency:
        """Insert/overwrite ``key``; returns the put's durability dependency."""
        with self._lock:
            return self._put_locked(key, locators, data_dep)

    def _put_locked(
        self, key: bytes, locators: List[Locator], data_dep: Dependency
    ) -> Dependency:
        dep, _ = self._insert_locked(key, locators, data_dep)
        return dep

    def _insert_locked(
        self, key: bytes, locators: List[Locator], data_dep: Dependency
    ) -> Tuple[Dependency, FutureCell]:
        cell = FutureCell(label=f"index-entry:{key!r}")
        dep = data_dep.and_(Dependency.on_future(self.tracker, cell))
        self._supersede(key, dep)
        self._memtable[key] = _MemEntry(list(locators), data_dep, cell)
        self._data_deps[key] = data_dep
        if len(self._memtable) >= self.config.memtable_flush_threshold:
            self._flush_locked()
        return dep, cell

    def _supersede(self, key: bytes, new_dep: Dependency) -> None:
        """Resolve an overwritten unflushed entry's promise to its superseder.

        The persistence property (section 5) reads "... unless superseded by
        a later persisted operation", so chaining the old promise to the new
        entry's dependency is exactly the right semantics -- and it keeps
        every dependency eventually resolvable (forward progress).
        """
        old = self._memtable.get(key)
        if old is not None and old.cell.resolved is None:
            old.cell.resolve(new_dep)

    def delete(self, key: bytes) -> Dependency:
        """Tombstone ``key``; returns the delete's durability dependency."""
        with self._lock:
            cell = FutureCell(label=f"index-tombstone:{key!r}")
            dep = Dependency.on_future(self.tracker, cell)
            self._supersede(key, dep)
            self._memtable[key] = _MemEntry(None, Dependency.root(self.tracker), cell)
            self._data_deps.pop(key, None)
            if len(self._memtable) >= self.config.memtable_flush_threshold:
                self._flush_locked()
            return dep

    def get(self, key: bytes) -> Optional[List[Locator]]:
        """Locators for ``key``, or None if absent (tombstoned or never put)."""
        with self._lock:
            return self._get_locked(key)

    def _get_locked(self, key: bytes) -> Optional[List[Locator]]:
        entry = self._memtable.get(key)
        if entry is not None:
            return list(entry.locators) if entry.locators is not None else None
        for run in reversed(self._runs):
            if key in run.entries:
                locs = run.entries[key]
                return list(locs) if locs is not None else None
        return None

    def keys(self) -> List[bytes]:
        """All live keys (tombstones resolved)."""
        with self._lock:
            # Newest-first with a seen-set: each key is decided by its most
            # recent writer and older occurrences are skipped outright.
            seen: set = set()
            live: List[bytes] = []
            for key, entry in self._memtable.items():
                seen.add(key)
                if entry.locators is not None:
                    live.append(key)
            for run in reversed(self._runs):
                for key, locs in run.entries.items():
                    if key not in seen:
                        seen.add(key)
                        if locs is not None:
                            live.append(key)
            return sorted(live)

    def data_dep(self, key: bytes) -> Dependency:
        return self._data_deps.get(key, Dependency.root(self.tracker))

    # ------------------------------------------------------------------
    # flush

    def flush(self) -> Dependency:
        """Persist the memtable as a new run + metadata record."""
        if self.recorder.timing:
            with self.recorder.timed("lsm.flush"):
                with self._lock:
                    return self._flush_locked()
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self, *, write_meta: bool = True) -> Dependency:
        if not self._memtable:
            return self._last_meta_dep
        # The run takes ownership of the memtable's locator lists (the
        # memtable is cleared below, and readers always get defensive
        # copies), so no per-entry list copy is needed.
        entries = {key: e.locators for key, e in self._memtable.items()}
        run_id = self._next_run_id
        self._next_run_id += 1
        payload = _encode_run(entries)
        locator, run_dep = self.chunk_store.put_chunk(
            KIND_RUN, _run_key(run_id), payload, priority=True
        )
        run = Run(run_id=run_id, locator=locator, entries=entries, dep=run_dep)
        self._runs.append(run)
        if self.recorder.enabled:
            self.recorder.count("lsm.flushes")
            self.recorder.observe("lsm.flush_entries", len(entries))
        if write_meta:
            meta_dep = self._write_meta_locked(run_dep)
            resolve_dep = run_dep.and_(meta_dep)
        else:
            # Fault #3's shutdown path: the run chunk exists but no metadata
            # record references it, so a clean reboot cannot find it.
            resolve_dep = run_dep
        for entry in self._memtable.values():
            entry.cell.resolve(resolve_dep)
        self._memtable.clear()
        return resolve_dep

    def shutdown_flush(self) -> Dependency:
        """The clean-shutdown flush.

        Fault #3: if a metadata-extent switch (reset) happened during this
        run of the process, the buggy shutdown skips the metadata record,
        losing every index entry in the final memtable across the reboot.
        """
        with self._lock:
            skip_meta = (
                self.faults.enabled(Fault.SHUTDOWN_SKIPS_METADATA_AFTER_RESET)
                and self._meta_switched
            )
            if skip_meta and self.recorder.enabled and self._memtable:
                self.recorder.fault_event(
                    Fault.SHUTDOWN_SKIPS_METADATA_AFTER_RESET,
                    "Index",
                    "shutdown flush skipped the metadata record after a "
                    "metadata-extent switch",
                )
            return self._flush_locked(write_meta=not skip_meta)

    # ------------------------------------------------------------------
    # compaction

    def compact(self) -> Optional[Dependency]:
        """Merge all runs into one; returns the new metadata dependency.

        Runs while other operations proceed: the run-set lock is *released*
        during the merged-run chunk write.  The extent receiving the chunk
        is pinned first so reclamation cannot scan-and-reset it before the
        metadata update below publishes the new chunk (issue #14); the
        fault drops the pin.
        """
        with self._lock:
            if len(self._runs) < 1:
                return None
            snapshot = list(self._runs)
            run_id = self._next_run_id
            self._next_run_id += 1
        # Sorted-run merge, newest first with a seen-set: each key is taken
        # from its most recent run and tombstones simply shadow older
        # entries.  The oldest run(s) holding only tombstones shadow nothing
        # -- there is nothing older to hide -- so they are skipped without
        # contributing any keys at all.
        start = 0
        while start < len(snapshot) and all(
            locs is None for locs in snapshot[start].entries.values()
        ):
            start += 1
        merged: Dict[bytes, Optional[List[Locator]]] = {}
        seen: set = set()
        for run in reversed(snapshot[start:]):  # newest first
            for key, locs in run.entries.items():
                if key not in seen:
                    seen.add(key)
                    if locs is not None:
                        merged[key] = locs
        payload = _encode_run(merged)
        yield_point("compaction: writing merged run")
        pin = not self.faults.enabled(Fault.COMPACTION_RECLAIM_RACE)
        if self.recorder.enabled:
            self.recorder.count("lsm.compactions")
            if not pin:
                self.recorder.fault_event(
                    Fault.COMPACTION_RECLAIM_RACE,
                    "Index",
                    "compaction writing the merged run without pinning its "
                    "extent",
                )
        locator, run_dep = self.chunk_store.put_chunk(
            KIND_RUN, _run_key(run_id), payload, pin=pin, priority=True
        )
        yield_point("compaction: merged run written, metadata not yet updated")
        try:
            with self._lock:
                new_run = Run(
                    run_id=run_id, locator=locator, entries=merged, dep=run_dep
                )
                # Keep any runs flushed after our snapshot (they are newer).
                newer = [r for r in self._runs if r not in snapshot]
                self._runs = [new_run] + newer
                meta_dep = self._write_meta_locked(run_dep)
        finally:
            if pin:
                self.chunk_store.unpin_extent(locator.extent)
        return meta_dep

    # ------------------------------------------------------------------
    # metadata records

    def _write_meta_locked(self, change_dep: Optional[Dependency] = None) -> Dependency:
        value = {
            "epoch": self._next_meta_epoch(),
            "next_run_id": self._next_run_id,
            "runs": [[run.run_id, run.locator.to_value()] for run in self._runs],
        }
        record = encode_record(value, self.config.geometry.page_size)
        extent = METADATA_EXTENTS[self._meta_slot]
        if self.scheduler.free_bytes(extent) < len(record):
            # Rotate to the other metadata extent (holds only strictly older
            # epochs, so resetting it is always crash-safe).
            self._meta_slot = 1 - self._meta_slot
            self._meta_switched = True
            extent = METADATA_EXTENTS[self._meta_slot]
            self.scheduler.reset(
                extent, Dependency.root(self.tracker), label="lsm-meta-rotate"
            )
        # The record depends on the runs *changed by this write* (the fresh
        # flush/compaction/relocation output): a metadata record that
        # supersedes the previous run list must never persist before its
        # replacement runs are readable, or a crash between the two loses
        # entries that older, still-durable runs were holding.  Unchanged
        # runs are already anchored by their own earlier records, and
        # deliberately excluded -- carrying their accumulated dependencies
        # forward can create cycles through extent-pointer promises during
        # reclamation.
        base = change_dep or Dependency.root(self.tracker)
        _, append_dep = self.scheduler.append(
            extent, record, base, label="lsm-metadata"
        )
        self._last_meta_dep = append_dep
        self._meta_epoch = value["epoch"]
        return append_dep

    def _next_meta_epoch(self) -> int:
        return getattr(self, "_meta_epoch", 0) + 1

    # ------------------------------------------------------------------
    # reclamation support (reverse lookups and relocation)

    def is_run_live(self, locator: Locator) -> bool:
        with self._lock:
            return any(run.locator == locator for run in self._runs)

    def relocate_run(self, old: Locator, new: Locator, new_dep: Dependency) -> Dependency:
        """Reclamation moved a run chunk; repoint metadata at the copy."""
        with self._lock:
            for run in self._runs:
                if run.locator == old:
                    run.locator = new
                    run.dep = run.dep.and_(new_dep)
                    return self._write_meta_locked(new_dep)
        raise ShardStoreError(f"relocate_run: no run at {old}")

    def data_locators(self, key: bytes) -> Optional[List[Locator]]:
        return self.get(key)

    def replace_data_locator(
        self, key: bytes, old: Locator, new: Locator, new_dep: Dependency
    ) -> Optional[Dependency]:
        """Reclamation moved a shard-data chunk; repoint the index entry.

        Returns None if the entry no longer references ``old`` (the shard
        was deleted or overwritten mid-reclaim) -- the copy just becomes
        garbage for a later reclamation.

        The returned dependency is what the extent reset must be ordered
        after: the *copy's* write plus the updated entry's index promise.
        Deliberately not the key's full cumulative data dependency -- the
        key's other chunks live on other extents and do not gate this
        reset (including them can create a dependency cycle through this
        very extent's pointer promises).
        """
        with self._lock:
            locators = self._get_locked(key)
            if locators is None or old not in locators:
                return None
            updated = [new if loc == old else loc for loc in locators]
            data_dep = self._data_deps.get(
                key, Dependency.root(self.tracker)
            ).and_(new_dep)
            _, cell = self._insert_locked(key, updated, data_dep)
            return new_dep.and_(Dependency.on_future(self.tracker, cell))

    # ------------------------------------------------------------------
    # introspection / recovery

    def busy(self) -> bool:
        """Whether the index lock is currently held (reentrancy guard)."""
        return self._lock.locked()

    @property
    def run_count(self) -> int:
        with self._lock:
            return len(self._runs)

    @property
    def memtable_len(self) -> int:
        return len(self._memtable)

    @property
    def meta_switched(self) -> bool:
        return self._meta_switched

    def run_locators(self) -> List[Locator]:
        with self._lock:
            return [run.locator for run in self._runs]

    @classmethod
    def recover(
        cls,
        chunk_store: ChunkStore,
        scheduler: IoScheduler,
        config: StoreConfig,
    ) -> Tuple["LsmIndex", List[int]]:
        """Rebuild the index from the durable metadata + run chunks.

        Returns the index and the ids of runs that could not be loaded
        (corrupt or unreadable) -- recovery is tolerant, and the
        crash-consistency checker decides whether the resulting data loss
        was allowed.
        """
        best: Optional[dict] = None
        best_slot = 0
        for slot, extent in enumerate(METADATA_EXTENTS):
            hard = scheduler.disk.write_pointer(extent)
            if not hard:
                continue
            data = scheduler.disk.read(extent, 0, hard)
            for _, value in scan_records(data, config.geometry.page_size):
                if not isinstance(value, dict):
                    continue
                epoch = value.get("epoch")
                if isinstance(epoch, int) and (best is None or epoch > best["epoch"]):
                    best = value
                    best_slot = slot
        runs: List[Run] = []
        lost: List[int] = []
        next_run_id = 0
        meta_epoch = 0
        if best is not None:
            next_run_id = best.get("next_run_id", 0)
            meta_epoch = best["epoch"]
            if not isinstance(next_run_id, int):
                next_run_id = 0
            raw_runs = best.get("runs")
            if isinstance(raw_runs, list):
                for item in raw_runs:
                    run = _load_run(chunk_store, scheduler.tracker, item)
                    if isinstance(run, Run):
                        runs.append(run)
                    elif run is not None:
                        lost.append(run)
        index = cls(
            chunk_store,
            scheduler,
            config,
            runs=runs,
            next_run_id=next_run_id,
            meta_slot=best_slot,
        )
        index._meta_epoch = meta_epoch
        return index, lost


def _load_run(chunk_store: ChunkStore, tracker: DurabilityTracker, item: object):
    """Load one run from a metadata entry; returns Run, run id, or None."""
    if not isinstance(item, list) or len(item) != 2:
        return None
    run_id, raw_loc = item
    if not isinstance(run_id, int):
        return None
    try:
        locator = Locator.from_value(raw_loc)
        chunk = chunk_store.get_chunk(locator, expected_key=_run_key(run_id))
        entries = _decode_run(chunk.payload)
    except CorruptionError:
        return run_id
    return Run(
        run_id=run_id,
        locator=locator,
        entries=entries,
        dep=Dependency.root(tracker),
    )


def _encode_run(entries: Dict[bytes, Optional[List[Locator]]]) -> bytes:
    from repro.serialization.codec import encode_value

    value = {
        key: (None if locs is None else [loc.to_value() for loc in locs])
        for key, locs in entries.items()
    }
    return encode_value(value)


def _decode_run(payload: bytes) -> Dict[bytes, Optional[List[Locator]]]:
    from repro.serialization.codec import decode_value

    value = decode_value(payload)
    if not isinstance(value, dict):
        raise CorruptionError("run payload is not a mapping")
    out: Dict[bytes, Optional[List[Locator]]] = {}
    for key, raw in value.items():
        if not isinstance(key, bytes):
            raise CorruptionError("run key is not bytes")
        if raw is None:
            out[key] = None
        elif isinstance(raw, list):
            out[key] = [Locator.from_value(item) for item in raw]
        else:
            raise CorruptionError("run entry is not a locator list")
    return out
