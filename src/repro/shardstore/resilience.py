"""Deterministic resilience primitives: retry policy and disk circuit breaker.

The paper's failure-injection dimension (section 4.4) requires that "any IO
may fail" while the node still either completes each request or fails it
with a typed retryable error.  This module supplies the *tolerance* side of
that contract:

* :class:`RetryPolicy` -- a bounded retry-with-backoff policy for transient
  :class:`~repro.shardstore.errors.IoError`\\ s.  Backoff is expressed in
  *logical units* so checkers never sleep; a wall-clock unit can be
  configured for production-style use.
* :class:`DiskHealth` -- a sliding window of per-disk IO outcomes with an
  error rate derived from it.
* :class:`CircuitBreaker` -- a per-disk breaker driven purely by the node's
  operation counter (no wall clock, so campaigns stay deterministic):

  ``CLOSED`` --(error threshold within the window)--> ``OPEN``
  --(cooldown ops elapse, probe scrub succeeds)--> ``PROBATION``
  --(clean ops)--> ``CLOSED``; a failed probe re-opens, an error during
  probation trips immediately.

Everything here is pure bookkeeping: the :class:`~repro.shardstore.rpc.
StorageNode` owns the actions (demoting a disk via shard migration, probing
via scrub, re-admitting into service).
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional, TypeVar

from .errors import IoError

__all__ = [
    "RetryPolicy",
    "BreakerConfig",
    "BreakerState",
    "DiskHealth",
    "CircuitBreaker",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient IO errors.

    ``max_attempts`` counts the initial try: 3 means one try plus two
    retries.  Backoff between attempts is ``min(cap, start * multiplier **
    (failures - 1))`` logical units; the policy only sleeps when
    ``sleep_unit_seconds`` is nonzero, so checkers and tests run at full
    speed while a production configuration can map units to wall time.
    Non-transient errors are never retried.
    """

    max_attempts: int = 3
    backoff_start: int = 1
    backoff_multiplier: int = 2
    backoff_cap: int = 8
    sleep_unit_seconds: float = 0.0

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """A policy that never retries (the pre-resilience behaviour)."""
        return cls(max_attempts=1)

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def backoff_units(self, failures: int) -> int:
        """Logical backoff before the next attempt after ``failures`` errors."""
        if failures <= 0:
            return 0
        return min(
            self.backoff_cap,
            self.backoff_start * self.backoff_multiplier ** (failures - 1),
        )

    def call(
        self,
        fn: Callable[[], T],
        *,
        on_retry: Optional[Callable[[int, int, IoError], None]] = None,
    ) -> T:
        """Run ``fn``, retrying transient :class:`IoError` up to the budget.

        ``on_retry(attempt, backoff_units, exc)`` fires before each retry so
        callers can count retries and emit events.  The final error (or any
        non-transient one) propagates unchanged.
        """
        failures = 0
        while True:
            try:
                return fn()
            except IoError as exc:
                if not exc.transient:
                    raise
                failures += 1
                if failures >= self.max_attempts:
                    raise
                units = self.backoff_units(failures)
                if on_retry is not None:
                    on_retry(failures, units, exc)
                if self.sleep_unit_seconds > 0.0:
                    time.sleep(units * self.sleep_unit_seconds)


class BreakerState(enum.Enum):
    """Lifecycle of one disk's circuit breaker."""

    CLOSED = "closed"  # healthy, in service
    OPEN = "open"  # tripped: demoted out of service, cooling down
    HALF_OPEN = "half-open"  # cooldown elapsed, awaiting a probe result
    PROBATION = "probation"  # re-admitted, watched for clean operation

    @property
    def code(self) -> int:
        """Stable numeric encoding for metrics export."""
        return _STATE_CODES[self]


_STATE_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
    BreakerState.PROBATION: 3,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for :class:`CircuitBreaker` (all thresholds in node ops)."""

    enabled: bool = True
    window: int = 16  # IO outcomes remembered per disk
    trip_failures: int = 3  # errors within the window that trip the breaker
    cooldown_ops: int = 16  # node ops a tripped disk waits before a probe
    probation_ops: int = 12  # clean node ops to close from probation

    @classmethod
    def disabled(cls) -> "BreakerConfig":
        return cls(enabled=False)


@dataclass
class DiskHealth:
    """Sliding-window health view of one disk's request-plane IO."""

    window: int = 16
    outcomes: Deque[bool] = field(default_factory=deque)  # True = ok
    total_errors: int = 0
    total_successes: int = 0

    def record(self, ok: bool) -> None:
        self.outcomes.append(ok)
        while len(self.outcomes) > self.window:
            self.outcomes.popleft()
        if ok:
            self.total_successes += 1
        else:
            self.total_errors += 1

    def recent_failures(self) -> int:
        return sum(1 for ok in self.outcomes if not ok)

    def error_rate(self) -> float:
        """Fraction of recent IO outcomes that failed (0.0 when idle)."""
        if not self.outcomes:
            return 0.0
        return self.recent_failures() / len(self.outcomes)

    def reset_window(self) -> None:
        self.outcomes.clear()


class CircuitBreaker:
    """Error-rate breaker for one disk, clocked by the node op counter."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self.health = DiskHealth(window=config.window)
        self.tripped_at_op = 0
        self.probation_clean = 0
        self.trips = 0
        self.probes = 0
        self.readmissions = 0

    # ------------------------------------------------------------------
    # outcome feed

    def record_success(self, now_op: int) -> None:
        self.health.record(True)
        if self.state is BreakerState.PROBATION:
            self.probation_clean += 1
            if self.probation_clean >= self.config.probation_ops:
                self.state = BreakerState.CLOSED

    def record_failure(self, now_op: int) -> bool:
        """Feed one IO error; returns True when this error trips the breaker.

        The caller (the node) reacts to a trip by demoting the disk.
        """
        self.health.record(False)
        if not self.config.enabled:
            return False
        if self.state is BreakerState.PROBATION:
            # Probation has no second chances: any error re-trips.
            self._trip(now_op)
            return True
        if (
            self.state is BreakerState.CLOSED
            and self.health.recent_failures() >= self.config.trip_failures
        ):
            self._trip(now_op)
            return True
        return False

    def _trip(self, now_op: int) -> None:
        self.state = BreakerState.OPEN
        self.tripped_at_op = now_op
        self.probation_clean = 0
        self.trips += 1
        self.health.reset_window()

    # ------------------------------------------------------------------
    # probe / re-admission (driven by the node's op counter)

    def should_probe(self, now_op: int) -> bool:
        return (
            self.config.enabled
            and self.state is BreakerState.OPEN
            and now_op - self.tripped_at_op >= self.config.cooldown_ops
        )

    def begin_probe(self) -> None:
        self.state = BreakerState.HALF_OPEN

    def on_probe(self, ok: bool, now_op: int) -> None:
        """Feed a probe result; a success moves the disk into probation."""
        self.probes += 1
        if ok:
            self.state = BreakerState.PROBATION
            self.probation_clean = 0
            self.readmissions += 1
            self.health.reset_window()
        else:
            # Restart the cooldown clock from the failed probe.
            self.state = BreakerState.OPEN
            self.tripped_at_op = now_op
