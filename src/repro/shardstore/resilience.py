"""Deterministic resilience primitives: retry policy and disk circuit breaker.

The paper's failure-injection dimension (section 4.4) requires that "any IO
may fail" while the node still either completes each request or fails it
with a typed retryable error.  This module supplies the *tolerance* side of
that contract:

* :class:`RetryPolicy` -- a bounded retry-with-backoff policy for transient
  :class:`~repro.shardstore.errors.IoError`\\ s.  Backoff is expressed in
  *logical units* so checkers never sleep; a wall-clock unit can be
  configured for production-style use.
* :class:`DiskHealth` -- a sliding window of per-disk IO outcomes with an
  error rate derived from it.
* :class:`CircuitBreaker` -- a per-disk breaker driven purely by the node's
  operation counter (no wall clock, so campaigns stay deterministic):

  ``CLOSED`` --(error threshold within the window)--> ``OPEN``
  --(cooldown ops elapse, probe scrub succeeds)--> ``PROBATION``
  --(clean ops)--> ``CLOSED``; a failed probe re-opens, an error during
  probation trips immediately.

The *deadline-aware request plane* extends the same contract into the time
domain: a disk that merely gets **slow** (a brownout) must not stall every
request behind it.  The primitives here are all clocked by logical units
derived from the node's op counter -- never wall time -- so campaign
artifacts stay byte-identical:

* :class:`LatencyEwma` -- integer fixed-point (milli-unit) exponential
  moving average of per-IO service cost, fed from
  :attr:`~repro.shardstore.disk.DiskStats.busy_units` deltas;
* :class:`AdmissionConfig`/:class:`DiskAdmission` -- a bounded virtual
  admission queue per disk.  Each request's estimated queue wait is
  compared against its logical deadline; requests are shed with typed
  :class:`~repro.shardstore.errors.OverloadedError` /
  :class:`~repro.shardstore.errors.DeadlineExceededError` *before* any
  substrate IO;
* :class:`RetryBudget` -- an op-clocked token bucket bounding how many
  retries a client may spend, so shedding does not trigger a retry storm;
* :attr:`BreakerState.SLOW` -- a brownout trip state for
  :class:`CircuitBreaker`, entered on a sustained high latency EWMA and
  healed through the same cooldown/probe/probation cycle as error trips.

Everything here is pure bookkeeping: the :class:`~repro.shardstore.rpc.
StorageNode` owns the actions (demoting a disk via shard migration, probing
via scrub, re-admitting into service).
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional, TypeVar

from .errors import DeadlineExceededError, IoError, OverloadedError

__all__ = [
    "RetryPolicy",
    "BreakerConfig",
    "BreakerState",
    "DiskHealth",
    "CircuitBreaker",
    "LatencyEwma",
    "AdmissionConfig",
    "DiskAdmission",
    "RetryBudget",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient IO errors.

    ``max_attempts`` counts the initial try: 3 means one try plus two
    retries.  Backoff between attempts is ``min(cap, start * multiplier **
    (failures - 1))`` logical units; the policy only sleeps when
    ``sleep_unit_seconds`` is nonzero, so checkers and tests run at full
    speed while a production configuration can map units to wall time.
    Non-transient errors are never retried.
    """

    max_attempts: int = 3
    backoff_start: int = 1
    backoff_multiplier: int = 2
    backoff_cap: int = 8
    sleep_unit_seconds: float = 0.0

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """A policy that never retries (the pre-resilience behaviour)."""
        return cls(max_attempts=1)

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def backoff_units(self, failures: int) -> int:
        """Logical backoff before the next attempt after ``failures`` errors."""
        if failures <= 0:
            return 0
        return min(
            self.backoff_cap,
            self.backoff_start * self.backoff_multiplier ** (failures - 1),
        )

    def call(
        self,
        fn: Callable[[], T],
        *,
        on_retry: Optional[Callable[[int, int, IoError], None]] = None,
        should_retry: Optional[Callable[[], bool]] = None,
    ) -> T:
        """Run ``fn``, retrying transient :class:`IoError` up to the budget.

        ``on_retry(attempt, backoff_units, exc)`` fires before each retry so
        callers can count retries and emit events.  ``should_retry`` is an
        extra gate consulted before every retry -- the hook a
        :class:`RetryBudget` plugs into; when it returns False the retry is
        abandoned and the error propagates even though ``max_attempts`` is
        not exhausted.  The final error (or any non-transient one)
        propagates unchanged.
        """
        failures = 0
        while True:
            try:
                return fn()
            except IoError as exc:
                if not exc.transient:
                    raise
                failures += 1
                if failures >= self.max_attempts:
                    raise
                if should_retry is not None and not should_retry():
                    raise
                units = self.backoff_units(failures)
                if on_retry is not None:
                    on_retry(failures, units, exc)
                if self.sleep_unit_seconds > 0.0:
                    time.sleep(units * self.sleep_unit_seconds)


class BreakerState(enum.Enum):
    """Lifecycle of one disk's circuit breaker."""

    CLOSED = "closed"  # healthy, in service
    OPEN = "open"  # tripped: demoted out of service, cooling down
    HALF_OPEN = "half-open"  # cooldown elapsed, awaiting a probe result
    PROBATION = "probation"  # re-admitted, watched for clean operation
    SLOW = "slow"  # brownout trip: demoted for sustained high latency

    @property
    def code(self) -> int:
        """Stable numeric encoding for metrics export."""
        return _STATE_CODES[self]


_STATE_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
    BreakerState.PROBATION: 3,
    BreakerState.SLOW: 4,
}

#: Breaker states in which the disk is demoted and awaiting cooldown/probe.
_TRIPPED_STATES = (BreakerState.OPEN, BreakerState.SLOW)


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for :class:`CircuitBreaker` (all thresholds in node ops)."""

    enabled: bool = True
    window: int = 16  # IO outcomes remembered per disk
    trip_failures: int = 3  # errors within the window that trip the breaker
    cooldown_ops: int = 16  # node ops a tripped disk waits before a probe
    probation_ops: int = 12  # clean node ops to close from probation

    @classmethod
    def disabled(cls) -> "BreakerConfig":
        return cls(enabled=False)


@dataclass
class DiskHealth:
    """Sliding-window health view of one disk's request-plane IO."""

    window: int = 16
    outcomes: Deque[bool] = field(default_factory=deque)  # True = ok
    total_errors: int = 0
    total_successes: int = 0

    def record(self, ok: bool) -> None:
        self.outcomes.append(ok)
        while len(self.outcomes) > self.window:
            self.outcomes.popleft()
        if ok:
            self.total_successes += 1
        else:
            self.total_errors += 1

    def recent_failures(self) -> int:
        return sum(1 for ok in self.outcomes if not ok)

    def error_rate(self) -> float:
        """Fraction of recent IO outcomes that failed (0.0 when idle)."""
        if not self.outcomes:
            return 0.0
        return self.recent_failures() / len(self.outcomes)

    def reset_window(self) -> None:
        self.outcomes.clear()


class CircuitBreaker:
    """Error-rate breaker for one disk, clocked by the node op counter."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self.health = DiskHealth(window=config.window)
        self.tripped_at_op = 0
        self.probation_clean = 0
        self.trips = 0
        self.slow_trips = 0
        self.probes = 0
        self.readmissions = 0
        # Which tripped state a failed probe should fall back to: a
        # still-slow disk re-enters SLOW, an erroring one re-enters OPEN.
        self._tripped_state = BreakerState.OPEN
        #: Observer fired as ``on_transition(old, new)`` on every state
        #: change.  The evidence plane journals breaker transitions through
        #: this hook -- including ``PROBATION -> CLOSED``, which happens
        #: inside :meth:`record_success` where the node cannot see it.
        self.on_transition: Optional[
            Callable[[BreakerState, BreakerState], None]
        ] = None

    def _set_state(self, new: BreakerState) -> None:
        old = self.state
        if new is old:
            return
        self.state = new
        if self.on_transition is not None:
            self.on_transition(old, new)

    # ------------------------------------------------------------------
    # outcome feed

    def record_success(self, now_op: int) -> None:
        self.health.record(True)
        if self.state is BreakerState.PROBATION:
            self.probation_clean += 1
            if self.probation_clean >= self.config.probation_ops:
                self._set_state(BreakerState.CLOSED)

    def record_failure(self, now_op: int) -> bool:
        """Feed one IO error; returns True when this error trips the breaker.

        The caller (the node) reacts to a trip by demoting the disk.
        """
        self.health.record(False)
        if not self.config.enabled:
            return False
        if self.state is BreakerState.PROBATION:
            # Probation has no second chances: any error re-trips.
            self._trip(now_op)
            return True
        if (
            self.state is BreakerState.CLOSED
            and self.health.recent_failures() >= self.config.trip_failures
        ):
            self._trip(now_op)
            return True
        return False

    def _trip(self, now_op: int) -> None:
        self._set_state(BreakerState.OPEN)
        self._tripped_state = BreakerState.OPEN
        self.tripped_at_op = now_op
        self.probation_clean = 0
        self.trips += 1
        self.health.reset_window()

    def trip_slow(self, now_op: int) -> None:
        """Brownout trip: demote for sustained high latency, not errors.

        The caller (the node's admission layer) decides *when* -- typically
        after the per-disk latency EWMA stays above threshold for several
        consecutive requests.  The healing path is identical to an error
        trip: cooldown, probe, probation; the probe additionally checks the
        measured per-IO cost, so a still-slow disk fails its probe and
        falls back to SLOW rather than OPEN.
        """
        if not self.config.enabled:
            return
        self._set_state(BreakerState.SLOW)
        self._tripped_state = BreakerState.SLOW
        self.tripped_at_op = now_op
        self.probation_clean = 0
        self.trips += 1
        self.slow_trips += 1
        self.health.reset_window()

    # ------------------------------------------------------------------
    # probe / re-admission (driven by the node's op counter)

    def should_probe(self, now_op: int) -> bool:
        return (
            self.config.enabled
            and self.state in _TRIPPED_STATES
            and now_op - self.tripped_at_op >= self.config.cooldown_ops
        )

    def begin_probe(self) -> None:
        self._set_state(BreakerState.HALF_OPEN)

    def on_probe(self, ok: bool, now_op: int) -> None:
        """Feed a probe result; a success moves the disk into probation."""
        self.probes += 1
        if ok:
            self._set_state(BreakerState.PROBATION)
            self.probation_clean = 0
            self.readmissions += 1
            self.health.reset_window()
        else:
            # Restart the cooldown clock from the failed probe, returning
            # to whichever tripped state (OPEN/SLOW) the disk came from.
            self._set_state(self._tripped_state)
            self.tripped_at_op = now_op


# ----------------------------------------------------------------------
# deadline-aware admission control (brownout / overload tolerance)


class LatencyEwma:
    """Integer fixed-point EWMA of per-IO service cost, in milli-units.

    Arithmetic is pure integer (floor division), so the trajectory is
    bit-identical on every platform and worker count -- a float EWMA would
    still be IEEE-deterministic, but integers make the artifact contract
    trivially auditable.  ``value`` is the conventional float view for
    gauges; comparisons against thresholds use the milli integer.
    """

    __slots__ = ("alpha_num", "alpha_den", "milli", "samples")

    def __init__(
        self,
        alpha_num: int = 1,
        alpha_den: int = 4,
        initial_milli: int = 1000,
    ) -> None:
        if not 0 < alpha_num <= alpha_den:
            raise ValueError("EWMA alpha must be in (0, 1]")
        self.alpha_num = alpha_num
        self.alpha_den = alpha_den
        self.milli = initial_milli
        self.samples = 0

    def update(self, sample_milli: int) -> int:
        """Fold in one per-IO cost sample (milli-units); returns the EWMA."""
        self.milli += (sample_milli - self.milli) * self.alpha_num // self.alpha_den
        self.samples += 1
        return self.milli

    @property
    def value(self) -> float:
        return self.milli / 1000.0


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning for the deadline-aware request plane (all units logical).

    The node's virtual clock advances ``arrival_interval_units`` per
    request-plane op, which exceeds a healthy disk's mean per-op service
    cost -- so a healthy queue drains and the backlog hovers near zero.
    Under a brownout (per-IO cost ramped by injection) or an overload burst
    (arrivals with the clock held), completed-work cost outpaces the clock
    and the backlog grows until requests shed.
    """

    #: Shed (raise typed errors) when the queue model says a request cannot
    #: meet its deadline.  ``False`` keeps all the accounting (including
    #: the deadline-violation counter) but executes everything -- the
    #: campaign's negative control.
    shedding: bool = True
    #: On a shed ``get``, try the key's replica shard on a healthy disk.
    hedge_reads: bool = True
    #: Default logical deadline carried by every request.
    deadline_units: int = 384
    #: Bounded admission queue: shed with ``OverloadedError`` when the
    #: estimated backlog reaches this many units.
    max_backlog_units: int = 1024
    #: Virtual-clock advance per request-plane op.
    arrival_interval_units: int = 8
    #: Write/reset IO (writeback, flush/drain, GC reclaim) and queued
    #: records charge the virtual queue at ``1/2**shift`` weight: they are
    #: throughput work the device overlaps with foreground requests, so
    #: billing them at full weight would make healthy reclaim churn look
    #: like a brownout.  Reads always bill at full cost, and the per-IO
    #: cost samples feeding the latency EWMA are never discounted.
    background_weight_shift: int = 3
    #: EWMA smoothing factor (alpha = num/den) for per-IO cost.
    ewma_alpha_num: int = 1
    ewma_alpha_den: int = 4
    #: Per-IO cost EWMA (milli-units) above which a disk counts as slow.
    slow_threshold_milli: int = 4000
    #: Consecutive slow completions before the breaker trips SLOW.
    slow_trip_requests: int = 3
    #: Probe acceptance: measured per-IO cost (milli-units) a probed disk
    #: must stay under to be re-admitted.
    probe_io_budget_milli: int = 2000
    #: Retry token-bucket capacity (per client; this node models one).
    retry_budget: int = 8
    #: Clock units per retry token refilled.
    retry_refill_units: int = 16

    @classmethod
    def no_shedding(cls, **overrides: object) -> "AdmissionConfig":
        """Accounting-only configuration (the ``--no-shedding`` control)."""
        overrides.setdefault("shedding", False)
        overrides.setdefault("hedge_reads", False)
        return cls(**overrides)  # type: ignore[arg-type]


class DiskAdmission:
    """Virtual admission queue for one disk, on the node's logical clock.

    ``busy_until`` is the absolute clock unit at which previously admitted
    work is estimated to finish; the *backlog* of a new request is how far
    that lies beyond ``now`` plus the writeback cost already queued in the
    IO scheduler.  :meth:`admit` sheds (typed errors) when the backlog
    breaches the queue bound or the request's deadline; :meth:`complete`
    charges measured cost and feeds the brownout detector.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.busy_until = 0
        self.ewma = LatencyEwma(config.ewma_alpha_num, config.ewma_alpha_den)
        self.slow_streak = 0
        self.inflight = 0
        self.admitted = 0
        self.shed_overload = 0
        self.shed_deadline = 0

    def backlog_units(self, now: int, pending_cost: int = 0) -> int:
        """Estimated queue wait, in clock units, for a request arriving now."""
        return max(0, self.busy_until - now) + max(0, pending_cost)

    def estimated_cost_units(self) -> int:
        """Expected service cost of one more request (at least one IO)."""
        return max(1, self.ewma.milli // 1000)

    def admit(self, now: int, deadline: int, pending_cost: int = 0) -> int:
        """Admit or shed a request; returns the backlog it saw.

        With shedding enabled, raises :class:`OverloadedError` when the
        backlog has reached the queue bound, or
        :class:`DeadlineExceededError` when backlog plus estimated service
        cost overruns ``deadline``.  Both fire *before* any substrate IO.
        With shedding disabled the request always passes; the caller is
        responsible for counting the deadline violation it just accepted.
        """
        backlog = self.backlog_units(now, pending_cost)
        if self.config.shedding:
            if backlog >= self.config.max_backlog_units:
                self.shed_overload += 1
                raise OverloadedError(
                    f"admission queue full: backlog {backlog} units >= "
                    f"bound {self.config.max_backlog_units}"
                )
            if backlog + self.estimated_cost_units() > deadline:
                self.shed_deadline += 1
                raise DeadlineExceededError(
                    f"estimated wait {backlog}+{self.estimated_cost_units()} "
                    f"units exceeds deadline {deadline}"
                )
        self.admitted += 1
        return backlog

    def complete(
        self,
        now: int,
        busy_delta: int,
        io_delta: int,
        charge_units: Optional[int] = None,
    ) -> bool:
        """Charge a finished request's measured cost; True = trip SLOW.

        ``busy_delta``/``io_delta`` are the disk's ``busy_units`` and
        IO-count deltas across the request.  The per-IO quotient feeds the
        latency EWMA; ``slow_trip_requests`` consecutive completions with
        the EWMA above threshold ask the caller to trip the breaker SLOW.
        ``charge_units`` overrides how much the virtual queue is billed
        (background writeback passes a discounted charge; the EWMA always
        sees the undiscounted per-IO cost).
        """
        charge = busy_delta if charge_units is None else charge_units
        self.busy_until = max(self.busy_until, now) + max(0, charge)
        if io_delta > 0:
            self.ewma.update(busy_delta * 1000 // io_delta)
            if self.ewma.milli >= self.config.slow_threshold_milli:
                self.slow_streak += 1
            else:
                self.slow_streak = 0
        return self.slow_streak >= self.config.slow_trip_requests

    def reset(self, now: int) -> None:
        """Forget queue state and latency history (probe-passed readmit)."""
        self.busy_until = now
        self.ewma = LatencyEwma(
            self.config.ewma_alpha_num, self.config.ewma_alpha_den
        )
        self.slow_streak = 0


class RetryBudget:
    """Op-clocked token bucket bounding a client's retries (storm control).

    Starts full; each retry spends a token and the bucket refills one token
    per ``refill_units`` of node-clock progress.  When empty, retries are
    abandoned early (the underlying error propagates) rather than hammering
    a browned-out disk.
    """

    def __init__(self, capacity: int, refill_units: int) -> None:
        if capacity < 0 or refill_units <= 0:
            raise ValueError("capacity must be >= 0 and refill_units > 0")
        self.capacity = capacity
        self.refill_units = refill_units
        self.tokens = capacity
        self.last_refill = 0
        self.spent = 0
        self.denied = 0

    def acquire(self, now: int) -> bool:
        """Spend one retry token; False when the budget is exhausted."""
        if now > self.last_refill:
            refill = (now - self.last_refill) // self.refill_units
            if refill:
                self.tokens = min(self.capacity, self.tokens + refill)
                self.last_refill += refill * self.refill_units
        else:
            self.last_refill = max(self.last_refill, now)
        if self.tokens > 0:
            self.tokens -= 1
            self.spent += 1
            return True
        self.denied += 1
        return False
