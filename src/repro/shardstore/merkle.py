"""Deterministic incremental Merkle trees over key -> digest maps.

This is the shared integrity primitive behind two planes (ROADMAP items
1 and 5a):

* **Cluster anti-entropy** (:mod:`repro.cluster.antientropy`): each
  replica maintains a :class:`MerkleMap` over its ``key -> (version,
  value-digest)`` records.  Two replicas compare roots and descend only
  into diverging subtrees, so synchronizing an almost-converged pair
  costs ``O(log)`` comparisons instead of a full key sweep.
* **Store integrity proofs** (:meth:`repro.shardstore.store.ShardStore.
  merkle_scrub`): the store keeps a content-addressed commitment tree
  updated at write time; scrub re-reads every live chunk and proves
  integrity by root equality instead of spot-checking.

The tree is a fixed-fanout, fixed-depth prefix trie over the *hash-ring
key space*: a key's leaf bucket is derived from the same 8-byte SHA-256
point :class:`repro.cluster.ring.HashRing` places it with, so bucket
boundaries are stable across membership changes and both planes bucket
identically.  All digests are 16-hex-char (64-bit) truncated SHA-256,
matching the evidence journal's digest convention; roots therefore drop
into journal records and Prometheus gauges (as 48-bit numeric prefixes)
unchanged.

Determinism contract: the root is a pure function of the ``(key,
digest)`` set -- independent of insertion order, deletion history, or
process identity -- which is what lets the campaign settlement gate
compare roots across replicas and lets CI compare them across runs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "DEFAULT_DEPTH",
    "DEFAULT_FANOUT",
    "EMPTY_DIGEST",
    "MerkleMap",
    "merkle_point",
    "numeric_root",
]

#: Digest length in hex chars (64 bits), matching ``journal.digest_bytes``.
DIGEST_LEN = 16

#: Default shape: 16-way fan-out, two levels -> 256 leaf buckets.  Wide
#: enough that small stores rarely collide buckets, small enough that a
#: full root recomputation is a few hundred hashes.
DEFAULT_FANOUT = 16
DEFAULT_DEPTH = 2

#: Digest of an empty bucket / empty tree (a domain-separated constant,
#: so "no keys" is distinguishable from "one key hashing to nothing").
EMPTY_DIGEST = hashlib.sha256(b"merkle:empty").hexdigest()[:DIGEST_LEN]


def merkle_point(key: bytes) -> int:
    """The 64-bit hash-ring point of ``key`` (same map as ``HashRing``)."""
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


def numeric_root(root: str) -> int:
    """48-bit numeric prefix of a root digest, for Prometheus gauges.

    Mirrors the journal chain-head gauge trick: floats in the exposition
    format hold 53 bits exactly, so a 48-bit prefix round-trips and two
    series are equal iff their roots agree on the first 12 hex chars.
    """
    return int(root[:12], 16)


def _leaf_digest(items: List[Tuple[bytes, str]]) -> str:
    """Digest of one leaf bucket: order-independent over its items."""
    if not items:
        return EMPTY_DIGEST
    h = hashlib.sha256(b"merkle:leaf")
    for key, digest in sorted(items):
        h.update(key.hex().encode("ascii"))
        h.update(b"=")
        h.update(digest.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()[:DIGEST_LEN]


def _node_digest(children: List[str]) -> str:
    """Digest of an internal node from its ordered child digests."""
    if all(child == EMPTY_DIGEST for child in children):
        return EMPTY_DIGEST
    h = hashlib.sha256(b"merkle:node")
    for child in children:
        h.update(child.encode("ascii"))
    return h.hexdigest()[:DIGEST_LEN]


class MerkleMap:
    """An incremental fixed-shape Merkle tree over a ``key -> digest`` map.

    ``set``/``remove`` are O(1) (they only mark the key's bucket dirty);
    ``root()`` lazily re-hashes dirty buckets and the internal levels.
    ``diff`` walks two trees top-down and returns only the diverging leaf
    buckets -- the anti-entropy descent.

    The shape (``fanout``, ``depth``) is fixed at construction; trees
    only compare against trees of the same shape.
    """

    def __init__(
        self, *, fanout: int = DEFAULT_FANOUT, depth: int = DEFAULT_DEPTH
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        # Bucket index = top bits of the 64-bit ring point; require a
        # power-of-two fanout so digit extraction is exact bit slicing.
        if fanout & (fanout - 1):
            raise ValueError("fanout must be a power of two")
        self.fanout = fanout
        self.depth = depth
        self._digit_bits = fanout.bit_length() - 1
        if self._digit_bits * depth > 64:
            raise ValueError("fanout**depth exceeds the 64-bit key space")
        self.num_buckets = fanout**depth
        self._entries: Dict[bytes, str] = {}
        self._buckets: List[Dict[bytes, str]] = [
            {} for _ in range(self.num_buckets)
        ]
        self._bucket_digests: List[str] = [EMPTY_DIGEST] * self.num_buckets
        self._dirty: set = set()
        # levels[0] is the root level (1 digest), levels[depth-1] has
        # fanout**(depth-1) digests; leaf digests live in _bucket_digests.
        self._levels: List[List[str]] = [
            [EMPTY_DIGEST] * (fanout**level) for level in range(depth)
        ]
        self._levels_stale = False

    # ------------------------------------------------------------------
    # map surface

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def get(self, key: bytes) -> Optional[str]:
        return self._entries.get(key)

    def keys(self) -> Iterator[bytes]:
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[bytes, str]]:
        return iter(self._entries.items())

    def bucket_of(self, key: bytes) -> int:
        return merkle_point(key) >> (64 - self._digit_bits * self.depth)

    def set(self, key: bytes, digest: str) -> None:
        """Insert or update ``key``'s leaf digest."""
        bucket = self.bucket_of(key)
        self._entries[key] = digest
        self._buckets[bucket][key] = digest
        self._dirty.add(bucket)
        self._levels_stale = True

    def remove(self, key: bytes) -> None:
        """Drop ``key`` (a no-op when absent -- removal is idempotent)."""
        if key not in self._entries:
            return
        bucket = self.bucket_of(key)
        del self._entries[key]
        self._buckets[bucket].pop(key, None)
        self._dirty.add(bucket)
        self._levels_stale = True

    def clear(self) -> None:
        self._entries.clear()
        for bucket in self._buckets:
            bucket.clear()
        self._bucket_digests = [EMPTY_DIGEST] * self.num_buckets
        self._dirty.clear()
        self._levels = [
            [EMPTY_DIGEST] * (self.fanout**level) for level in range(self.depth)
        ]
        self._levels_stale = False

    @classmethod
    def from_items(
        cls,
        items: Iterable[Tuple[bytes, str]],
        *,
        fanout: int = DEFAULT_FANOUT,
        depth: int = DEFAULT_DEPTH,
    ) -> "MerkleMap":
        tree = cls(fanout=fanout, depth=depth)
        for key, digest in items:
            tree.set(key, digest)
        return tree

    # ------------------------------------------------------------------
    # digests

    def _refresh(self) -> None:
        for bucket in self._dirty:
            self._bucket_digests[bucket] = _leaf_digest(
                list(self._buckets[bucket].items())
            )
        self._dirty.clear()
        if not self._levels_stale:
            return
        below = self._bucket_digests
        for level in range(self.depth - 1, -1, -1):
            digests = [
                _node_digest(below[i : i + self.fanout])
                for i in range(0, len(below), self.fanout)
            ]
            self._levels[level] = digests
            below = digests
        self._levels_stale = False

    def root(self) -> str:
        """The root digest (lazily recomputed after mutations)."""
        self._refresh()
        return self._levels[0][0]

    def bucket_digest(self, bucket: int) -> str:
        self._refresh()
        return self._bucket_digests[bucket]

    def bucket_items(self, bucket: int) -> Dict[bytes, str]:
        """The live ``key -> digest`` entries of one leaf bucket."""
        return dict(self._buckets[bucket])

    # ------------------------------------------------------------------
    # anti-entropy descent

    def diff(self, other: "MerkleMap") -> Tuple[List[int], int]:
        """Diverging leaf buckets vs ``other``, by top-down descent.

        Returns ``(buckets, nodes_compared)``: the sorted leaf-bucket
        indexes whose digests differ, and how many tree nodes were
        compared to find them (the cost the per-round budget bounds).
        Equal roots answer in one comparison -- the property that makes
        background sync affordable on a converged cluster.
        """
        if (self.fanout, self.depth) != (other.fanout, other.depth):
            raise ValueError("cannot diff Merkle trees of different shape")
        self._refresh()
        other._refresh()
        compared = 1
        if self._levels[0][0] == other._levels[0][0]:
            return [], compared
        # Frontier of diverging node indexes, level by level.
        frontier = [0]
        for level in range(1, self.depth):
            mine, theirs = self._levels[level], other._levels[level]
            next_frontier: List[int] = []
            for node in frontier:
                for child in range(
                    node * self.fanout, (node + 1) * self.fanout
                ):
                    compared += 1
                    if mine[child] != theirs[child]:
                        next_frontier.append(child)
            frontier = next_frontier
        buckets: List[int] = []
        for node in frontier:
            for child in range(node * self.fanout, (node + 1) * self.fanout):
                compared += 1
                if self._bucket_digests[child] != other._bucket_digests[child]:
                    buckets.append(child)
        return buckets, compared
