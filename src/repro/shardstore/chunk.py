"""Chunk framing and extent scanning.

All persistent data in ShardStore -- shard payloads and LSM-tree runs alike
-- is stored as *chunks* written onto extents (section 2.1).  A chunk's
on-disk frame follows the paper's section 5 description: a two-byte magic
header and a random UUID, with the UUID repeated at the end of the frame to
validate the chunk's length::

    magic(2) | uuid(16) | body_len(4) | crc32(body)(4) | body | uuid(16)
    body = kind(1) | key_len(2) | key | payload

The frame layout is exactly what makes the paper's bug #10 possible: if a
torn append loses the tail of the trailing UUID and the extent is then
re-used from the recovered write pointer, the bytes where the tail used to
be are the *next* chunk's magic -- and if the lost UUID bytes happened to
equal the magic, a sequential scan "successfully" decodes the corrupt chunk
and skips right over the live one.  :func:`scan_chunks` implements both the
buggy strictly-sequential scan (fault #10) and the fixed scan that also
probes every page boundary, so overlapping decodes can never hide a chunk.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .errors import CorruptionError, IoError

CHUNK_MAGIC = b"MC"
UUID_LEN = 16
_LEN_CRC = struct.Struct("<II")
_HEADER_LEN = 2 + UUID_LEN + _LEN_CRC.size  # magic + uuid + len + crc
FRAME_OVERHEAD = _HEADER_LEN + UUID_LEN  # plus trailing uuid
_BODY_HEADER = struct.Struct("<BH")  # kind + key length

KIND_DATA = 0
KIND_RUN = 1
_KNOWN_KINDS = (KIND_DATA, KIND_RUN)


@dataclass(frozen=True, order=True)
class Locator:
    """An opaque pointer to one chunk: extent, byte offset, frame length."""

    extent: int
    offset: int
    length: int

    def to_value(self) -> list:
        return [self.extent, self.offset, self.length]

    @classmethod
    def from_value(cls, value: object) -> "Locator":
        if (
            not isinstance(value, list)
            or len(value) != 3
            or not all(isinstance(v, int) for v in value)
            or any(v < 0 for v in value)
        ):
            raise CorruptionError("malformed locator")
        return cls(*value)


@dataclass(frozen=True)
class DecodedChunk:
    """A successfully decoded chunk frame."""

    kind: int
    key: bytes
    payload: bytes
    frame_length: int
    uuid: bytes


def frame_size(key: bytes, payload: "bytes | bytearray | memoryview") -> int:
    return FRAME_OVERHEAD + _BODY_HEADER.size + len(key) + len(payload)


def encode_chunk(
    kind: int, key: bytes, payload: "bytes | bytearray | memoryview", uuid: bytes
) -> bytes:
    """Serialize one chunk frame.

    ``payload`` may be any buffer (bytes or a memoryview slice of a larger
    shard value).  The body CRC is chained across the parts and the frame
    assembled with a single join, so payload bytes are copied exactly once
    -- on the old path they were copied at every layer boundary.
    """
    if len(uuid) != UUID_LEN:
        raise ValueError("uuid must be 16 bytes")
    if kind not in _KNOWN_KINDS:
        raise ValueError(f"unknown chunk kind {kind}")
    if len(key) > 0xFFFF:
        raise ValueError("key too long for chunk frame")
    body_header = _BODY_HEADER.pack(kind, len(key))
    body_len = _BODY_HEADER.size + len(key) + len(payload)
    crc = zlib.crc32(payload, zlib.crc32(key, zlib.crc32(body_header)))
    return b"".join(
        (
            CHUNK_MAGIC,
            uuid,
            _LEN_CRC.pack(body_len, crc),
            body_header,
            key,
            payload,
            uuid,
        )
    )


def decode_chunk(buf: bytes, offset: int = 0) -> DecodedChunk:
    """Decode an untrusted chunk frame at ``offset``.

    Raises :class:`CorruptionError` on any malformed input; never any other
    exception (checked by the serialization fuzz harness).
    """
    if offset < 0 or offset + _HEADER_LEN > len(buf):
        raise CorruptionError("chunk header out of bounds")
    if buf[offset : offset + 2] != CHUNK_MAGIC:
        raise CorruptionError("bad chunk magic")
    uuid = bytes(buf[offset + 2 : offset + 2 + UUID_LEN])
    body_len, crc = _LEN_CRC.unpack_from(buf, offset + 2 + UUID_LEN)
    body_start = offset + _HEADER_LEN
    trailer_start = body_start + body_len
    frame_end = trailer_start + UUID_LEN
    if body_len > len(buf) or frame_end > len(buf):
        raise CorruptionError("chunk frame out of bounds")
    # Validate through a view so the body is not copied just to be checked;
    # only the key and payload are materialised as bytes.
    view = memoryview(buf)
    if zlib.crc32(view[body_start:trailer_start]) != crc:
        raise CorruptionError("chunk body checksum mismatch")
    if view[trailer_start:frame_end] != uuid:
        raise CorruptionError("chunk trailing uuid mismatch")
    if body_len < _BODY_HEADER.size:
        raise CorruptionError("chunk body too short")
    kind, key_len = _BODY_HEADER.unpack_from(buf, body_start)
    if kind not in _KNOWN_KINDS:
        raise CorruptionError(f"unknown chunk kind {kind}")
    if _BODY_HEADER.size + key_len > body_len:
        raise CorruptionError("chunk key out of bounds")
    key_start = body_start + _BODY_HEADER.size
    key = bytes(view[key_start : key_start + key_len])
    payload = bytes(view[key_start + key_len : trailer_start])
    return DecodedChunk(
        kind=kind,
        key=key,
        payload=payload,
        frame_length=frame_end - offset,
        uuid=uuid,
    )


class PagedReader:
    """Lazily reads an extent page by page for scanning.

    Reclamation scans can hit injected IO failures mid-extent; reading page
    by page (rather than the whole extent up front) is what lets a
    transient error strike partway through a scan -- the setting of the
    paper's bug #5.
    """

    def __init__(
        self,
        read_fn: Callable[[int, int], bytes],
        limit: int,
        page_size: int,
    ) -> None:
        self._read_fn = read_fn  # (offset, length) -> bytes
        self.limit = limit
        self._page_size = page_size
        self._buf = bytearray()

    def ensure(self, upto: int) -> bytes:
        """Materialise bytes [0, min(upto, limit)); may raise IoError."""
        upto = min(upto, self.limit)
        while len(self._buf) < upto:
            start = len(self._buf)
            length = min(self._page_size, self.limit - start)
            self._buf += self._read_fn(start, length)
        return bytes(self._buf[:upto])


def scan_chunks(
    reader: PagedReader,
    page_size: int,
    *,
    sequential_only: bool = False,
    on_read_error: str = "raise",
) -> List[Tuple[int, DecodedChunk]]:
    """Find every decodable chunk on an extent.

    The **fixed** scan tries to decode at every page boundary *and* at the
    end of every successfully decoded chunk, collecting all hits; a corrupt
    chunk that happens to decode over a live one (the bug #10 collision)
    cannot hide the live chunk, because the live chunk's own page-aligned
    start is still probed.

    With ``sequential_only=True`` (fault #10) the scan is the paper's buggy
    original: strictly sequential, advancing past each decoded chunk's
    claimed footprint and skipping to the next page boundary on failure --
    so an overlapping decode swallows its successor.

    ``on_read_error`` is ``"raise"`` (fixed: abort the scan, reclamation
    retries later) or ``"truncate"`` (fault #5: treat the unreadable tail
    as end-of-extent, forgetting any chunks on it).
    """
    found: List[Tuple[int, DecodedChunk]] = []
    seen_offsets = set()
    limit = reader.limit

    def try_decode(offset: int) -> Optional[DecodedChunk]:
        if offset in seen_offsets:
            return None
        try:
            buf = reader.ensure(offset + _HEADER_LEN)
            if offset + _HEADER_LEN > len(buf):
                return None
            # Peek the claimed body length to bound the next read.
            body_len = _LEN_CRC.unpack_from(buf, offset + 2 + UUID_LEN)[0]
            frame_end = offset + _HEADER_LEN + body_len + UUID_LEN
            if frame_end > limit:
                return None
            buf = reader.ensure(frame_end)
            chunk = decode_chunk(buf, offset)
        except CorruptionError:
            return None
        except IoError:
            if on_read_error == "truncate":
                raise _ScanTruncated()
            raise
        seen_offsets.add(offset)
        return chunk

    try:
        if sequential_only:
            offset = 0
            while offset + FRAME_OVERHEAD <= limit:
                chunk = try_decode(offset)
                if chunk is not None:
                    found.append((offset, chunk))
                    offset += chunk.frame_length
                else:
                    offset = (offset // page_size + 1) * page_size
        else:
            candidates = sorted(range(0, limit, page_size))
            pending = list(reversed(candidates))
            while pending:
                offset = pending.pop()
                if offset + FRAME_OVERHEAD > limit:
                    continue
                chunk = try_decode(offset)
                if chunk is None:
                    continue
                found.append((offset, chunk))
                follow = offset + chunk.frame_length
                if follow % page_size != 0 and follow + FRAME_OVERHEAD <= limit:
                    # Probe the position right after this chunk (chunks are
                    # appended back to back, often off page boundaries).
                    next_chunk = try_decode(follow)
                    while next_chunk is not None:
                        found.append((follow, next_chunk))
                        follow += next_chunk.frame_length
                        next_chunk = (
                            try_decode(follow)
                            if follow + FRAME_OVERHEAD <= limit
                            else None
                        )
    except _ScanTruncated:
        pass
    found.sort(key=lambda item: item[0])
    return found


class _ScanTruncated(Exception):
    """Internal: fault #5 swallowed a read error mid-scan."""
