"""Background scrubbing: proactive integrity verification.

Storage fleets scrub continuously: bit rot and latent sector errors are
found by re-reading and re-validating data before a client does (the
paper's section 7 treats all on-disk bytes as untrusted for exactly this
reason).  The scrubber walks every live index entry, reads each referenced
chunk through the normal read path, and validates framing, checksums, and
key ownership -- without changing any state.

In the validation alphabets scrubbing is a background operation that is a
no-op in the reference model; including it both widens coverage (every
live chunk gets decoded each pass) and gives corruption-type faults (#1,
#2, #10) another surface to manifest on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .chunk_store import ChunkStore
from .errors import CorruptionError, IoError
from .lsm import LsmIndex
from .merkle import MerkleMap
from .observability.journal import digest_bytes

#: Leaf digests for keys whose bytes cannot be content-addressed right
#: now.  Distinct domain-separated constants: a corrupt chunk and a
#: transiently unreadable one must diverge from any honest commitment
#: (and from each other), never silently match it.
CORRUPT_LEAF = hashlib.sha256(b"merkle:corrupt").hexdigest()[:16]
IO_ERROR_LEAF = hashlib.sha256(b"merkle:io-error").hexdigest()[:16]


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    keys_checked: int = 0
    chunks_checked: int = 0
    runs_checked: int = 0
    #: (key or run locator description, error message)
    errors: List[Tuple[str, str]] = field(default_factory=list)
    io_errors: int = 0
    #: Keys whose chunks failed validation (inputs to scrub-repair).
    bad_keys: List[bytes] = field(default_factory=list)
    #: LSM run chunks that failed validation.
    bad_runs: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors


@dataclass
class MerkleScrubReport:
    """Outcome of one Merkle integrity proof pass.

    ``proven`` means the root of the *actual* tree (every live value
    re-read through the chunk store and content-addressed now) equals the
    root of the *expected* tree (the store's write-time commitment) -- a
    whole-store integrity proof, not a sample.  When the roots differ the
    descent pins the blast radius to ``diverging`` keys, which feed the
    same heal-or-quarantine path a sampling scrub uses.
    """

    expected_root: str = ""
    actual_root: str = ""
    keys_checked: int = 0
    #: Tree nodes compared during the descent (1 when the roots match).
    compared: int = 0
    #: Keys whose content digest disagrees with the commitment (corrupt,
    #: unreadable, missing, or unexpected).
    diverging: List[bytes] = field(default_factory=list)
    io_errors: int = 0

    @property
    def proven(self) -> bool:
        return self.expected_root == self.actual_root


@dataclass
class RepairReport:
    """Outcome of one scrub-repair pass (:meth:`ShardStore.scrub_repair`).

    ``repaired`` keys were re-read successfully (cache or a surviving
    replica chunk) and rewritten to fresh chunks; ``quarantined`` keys were
    unrecoverable and removed from the index so clients get a typed
    :class:`~repro.shardstore.errors.NotFoundError` instead of silent
    corruption.  ``run_compactions`` counts compactions triggered to rewrite
    corrupt LSM run chunks.
    """

    scanned: ScrubReport = field(default_factory=ScrubReport)
    repaired: List[bytes] = field(default_factory=list)
    quarantined: List[bytes] = field(default_factory=list)
    run_compactions: int = 0
    #: Merkle mode only: the proof before and after repair.
    merkle: Optional[MerkleScrubReport] = None
    merkle_after: Optional[MerkleScrubReport] = None

    @property
    def clean(self) -> bool:
        if self.merkle is not None:
            return self.merkle.proven
        return self.scanned.clean

    @property
    def proven(self) -> bool:
        """Merkle mode: does the store prove intact *after* repair?"""
        report = self.merkle_after or self.merkle
        return report is not None and report.proven


class Scrubber:
    """Re-reads and validates every live chunk the index references."""

    def __init__(self, chunk_store: ChunkStore, index: LsmIndex) -> None:
        self.chunk_store = chunk_store
        self.index = index

    def scrub(self) -> ScrubReport:
        """One full pass.  Transient IO errors are counted, not fatal:
        a scrub must degrade gracefully on a flaky disk."""
        report = ScrubReport()
        for key in self.index.keys():
            locators = self.index.get(key)
            if locators is None:
                continue  # deleted between listing and read: fine
            report.keys_checked += 1
            for locator in locators:
                try:
                    self.chunk_store.get_chunk(locator, expected_key=key)
                    report.chunks_checked += 1
                except CorruptionError as exc:
                    report.errors.append((repr(key), str(exc)))
                    if key not in report.bad_keys:
                        report.bad_keys.append(key)
                except IoError:
                    report.io_errors += 1
        for locator in self.index.run_locators():
            try:
                self.chunk_store.get_chunk(locator)
                report.runs_checked += 1
            except CorruptionError as exc:
                report.errors.append((f"run@{locator}", str(exc)))
                report.bad_runs += 1
            except IoError:
                report.io_errors += 1
        return report

    def merkle_scrub(self, expected: MerkleMap) -> MerkleScrubReport:
        """Prove store integrity by root comparison against ``expected``.

        Re-reads every live key's bytes through the chunk store, hashes
        them content-addressed into an *actual* tree of the same shape as
        the write-time commitment, and compares roots: equality proves
        every live value intact in one comparison.  On divergence the
        Merkle descent pins the exact keys -- corrupt and transiently
        unreadable values get distinct marker leaves so they can never
        masquerade as the committed content.
        """
        report = MerkleScrubReport()
        actual = MerkleMap(fanout=expected.fanout, depth=expected.depth)
        for key in self.index.keys():
            locators = self.index.get(key)
            if locators is None:
                continue  # deleted between listing and read: fine
            report.keys_checked += 1
            try:
                value = self.chunk_store.get_shard(key, locators)
            except CorruptionError:
                actual.set(key, CORRUPT_LEAF)
            except IoError:
                report.io_errors += 1
                actual.set(key, IO_ERROR_LEAF)
            else:
                actual.set(key, digest_bytes(value))
        report.expected_root = expected.root()
        report.actual_root = actual.root()
        buckets, report.compared = expected.diff(actual)
        for bucket in buckets:
            mine = expected.bucket_items(bucket)
            theirs = actual.bucket_items(bucket)
            for key in sorted(set(mine) | set(theirs)):
                if mine.get(key) != theirs.get(key):
                    report.diverging.append(key)
        return report
