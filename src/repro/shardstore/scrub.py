"""Background scrubbing: proactive integrity verification.

Storage fleets scrub continuously: bit rot and latent sector errors are
found by re-reading and re-validating data before a client does (the
paper's section 7 treats all on-disk bytes as untrusted for exactly this
reason).  The scrubber walks every live index entry, reads each referenced
chunk through the normal read path, and validates framing, checksums, and
key ownership -- without changing any state.

In the validation alphabets scrubbing is a background operation that is a
no-op in the reference model; including it both widens coverage (every
live chunk gets decoded each pass) and gives corruption-type faults (#1,
#2, #10) another surface to manifest on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .chunk_store import ChunkStore
from .errors import CorruptionError, IoError
from .lsm import LsmIndex


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    keys_checked: int = 0
    chunks_checked: int = 0
    runs_checked: int = 0
    #: (key or run locator description, error message)
    errors: List[Tuple[str, str]] = field(default_factory=list)
    io_errors: int = 0
    #: Keys whose chunks failed validation (inputs to scrub-repair).
    bad_keys: List[bytes] = field(default_factory=list)
    #: LSM run chunks that failed validation.
    bad_runs: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors


@dataclass
class RepairReport:
    """Outcome of one scrub-repair pass (:meth:`ShardStore.scrub_repair`).

    ``repaired`` keys were re-read successfully (cache or a surviving
    replica chunk) and rewritten to fresh chunks; ``quarantined`` keys were
    unrecoverable and removed from the index so clients get a typed
    :class:`~repro.shardstore.errors.NotFoundError` instead of silent
    corruption.  ``run_compactions`` counts compactions triggered to rewrite
    corrupt LSM run chunks.
    """

    scanned: ScrubReport = field(default_factory=ScrubReport)
    repaired: List[bytes] = field(default_factory=list)
    quarantined: List[bytes] = field(default_factory=list)
    run_compactions: int = 0

    @property
    def clean(self) -> bool:
        return self.scanned.clean


class Scrubber:
    """Re-reads and validates every live chunk the index references."""

    def __init__(self, chunk_store: ChunkStore, index: LsmIndex) -> None:
        self.chunk_store = chunk_store
        self.index = index

    def scrub(self) -> ScrubReport:
        """One full pass.  Transient IO errors are counted, not fatal:
        a scrub must degrade gracefully on a flaky disk."""
        report = ScrubReport()
        for key in self.index.keys():
            locators = self.index.get(key)
            if locators is None:
                continue  # deleted between listing and read: fine
            report.keys_checked += 1
            for locator in locators:
                try:
                    self.chunk_store.get_chunk(locator, expected_key=key)
                    report.chunks_checked += 1
                except CorruptionError as exc:
                    report.errors.append((repr(key), str(exc)))
                    if key not in report.bad_keys:
                        report.bad_keys.append(key)
                except IoError:
                    report.io_errors += 1
        for locator in self.index.run_locators():
            try:
                self.chunk_store.get_chunk(locator)
                report.runs_checked += 1
            except CorruptionError as exc:
                report.errors.append((f"run@{locator}", str(exc)))
                report.bad_runs += 1
            except IoError:
                report.io_errors += 1
        return report
