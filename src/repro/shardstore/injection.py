"""Seeded, deterministic failure-injection plans (section 4.4).

The paper's failure-injection mode asserts that *any* IO may fail and the
node must still either complete each operation or fail it with a typed
retryable error.  A :class:`FaultPlan` makes that dimension systematic: it
is a seeded schedule of faults addressed by **(operation count, disk,
extent)** coordinates -- no wall clock anywhere -- so a campaign shard
replays byte-identically from its seed alone.

Fault kinds map onto the disk's injection primitives
(:meth:`~repro.shardstore.disk.InMemoryDisk.arm_fault` /
:meth:`~repro.shardstore.disk.InMemoryDisk.corrupt`):

==================  ========================================================
``transient-read``   next read on the extent fails (``IoError(transient)``)
``transient-write``  next write on the extent fails
``torn-write``       next write lands a durable prefix, then fails
``permanent``        every IO on the extent fails until faults are cleared
``permanent-disk``   every data-extent IO on one disk fails (a dying disk)
``bit-flip``         one durable bit flips silently (CRC catches it later)
``heal``             all faults on one disk clear (the disk was replaced)
``slow-disk``        one disk's per-IO latency ramps to ``arg`` units (gray
                     failure / brownout; latency EWMA + SLOW breaker react)
``burst``            ``arg`` arrivals land in zero logical time (the node's
                     op clock freezes; admission backlog builds and sheds)
==================  ========================================================

Plans only ever target *data* extents: superblock/metadata extents carry
the recovery machinery itself, and corrupting those models a different
failure class (a dead node) than the per-IO contract this campaign checks.

The checker side lives in :mod:`repro.campaign.injection`; the tolerance
side (retry/backoff, the disk circuit breaker, scrub-repair) lives in
:mod:`repro.shardstore.resilience`, :mod:`repro.shardstore.rpc` and
:mod:`repro.shardstore.store`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_TRANSIENT_READ",
    "FAULT_TRANSIENT_WRITE",
    "FAULT_TORN_WRITE",
    "FAULT_PERMANENT",
    "FAULT_PERMANENT_DISK",
    "FAULT_BIT_FLIP",
    "FAULT_HEAL",
    "FAULT_SLOW_DISK",
    "FAULT_BURST",
    "FAULT_NODE_CRASH",
    "FAULT_NODE_RESTART",
    "FAULT_PARTITION",
    "FAULT_PARTITION_HEAL",
    "FAULT_NODE_SLOW",
    "BROWNOUT_RAMP",
    "OVERLOAD_BURSTS",
    "OVERLOAD_SLOWDOWNS",
    "STORE_PROFILES",
    "NODE_PROFILES",
    "CLUSTER_PROFILES",
    "PlannedFault",
    "FaultPlan",
    "FaultInjector",
]

FAULT_TRANSIENT_READ = "transient-read"
FAULT_TRANSIENT_WRITE = "transient-write"
FAULT_TORN_WRITE = "torn-write"
FAULT_PERMANENT = "permanent"
FAULT_PERMANENT_DISK = "permanent-disk"
FAULT_BIT_FLIP = "bit-flip"
FAULT_HEAL = "heal"
FAULT_SLOW_DISK = "slow-disk"
FAULT_BURST = "burst"

# Cluster-level fault kinds: ``disk`` is reused as the *node id* (the plan
# coordinate system stays (op index, target, extent) -- only the target's
# meaning widens from disk to node).  ``node-crash`` takes the node down and
# dirty-reboots its disks on ``node-restart`` (un-drained writes are lost);
# ``partition`` makes the node unreachable from the router for ``arg`` ops
# without losing state; ``node-slow`` holds ``arg`` arrivals at the node so
# its admission queue backs up and sheds.
FAULT_NODE_CRASH = "node-crash"
FAULT_NODE_RESTART = "node-restart"
FAULT_PARTITION = "partition"
FAULT_PARTITION_HEAL = "partition-heal"
FAULT_NODE_SLOW = "node-slow"

#: Store-level plan profiles: which fault kinds a profile draws from.
STORE_PROFILES: Dict[str, Tuple[str, ...]] = {
    "transient": (FAULT_TRANSIENT_READ, FAULT_TRANSIENT_WRITE, FAULT_TORN_WRITE),
    "corruption": (
        FAULT_TRANSIENT_READ,
        FAULT_TRANSIENT_WRITE,
        FAULT_TORN_WRITE,
        FAULT_BIT_FLIP,
    ),
    "mixed": (
        FAULT_TRANSIENT_READ,
        FAULT_TRANSIENT_WRITE,
        FAULT_TORN_WRITE,
        FAULT_PERMANENT,
        FAULT_BIT_FLIP,
    ),
}

#: Node-level plan profiles.  ``permanent`` guarantees one dying disk with
#: no heal event -- the scenario the circuit breaker must survive (and the
#: one the CI negative test proves fails with the breaker disabled).
NODE_PROFILES: Dict[str, Tuple[str, ...]] = {
    "transient": (FAULT_TRANSIENT_READ, FAULT_TRANSIENT_WRITE, FAULT_TORN_WRITE),
    "permanent": (
        FAULT_TRANSIENT_READ,
        FAULT_TRANSIENT_WRITE,
        FAULT_PERMANENT_DISK,
    ),
    "mixed": (
        FAULT_TRANSIENT_READ,
        FAULT_TRANSIENT_WRITE,
        FAULT_TORN_WRITE,
        FAULT_PERMANENT_DISK,
        FAULT_HEAL,
    ),
    # Gray-failure profiles (brownouts; the deadline-aware request plane
    # reacts).  Point faults stay mild -- no corruption, no dying disk --
    # because these plans gate on *latency* behaviour, not repair.
    "brownout": (
        FAULT_TRANSIENT_READ,
        FAULT_TRANSIENT_WRITE,
        FAULT_SLOW_DISK,
        FAULT_HEAL,
    ),
    "overload": (
        FAULT_TRANSIENT_READ,
        FAULT_TRANSIENT_WRITE,
        FAULT_SLOW_DISK,
        FAULT_BURST,
    ),
}

#: Cluster-level plan profiles (node-granularity storms driven through
#: the :class:`~repro.cluster.router.ClusterRouter`).  Every outage window
#: is paired with its heal/restart event and concurrent outages never
#: exceed a strict minority of the cluster, so the acknowledged-write
#: durability property is *supposed* to hold -- the campaign checks it.
CLUSTER_PROFILES: Dict[str, Tuple[str, ...]] = {
    "node-crash": (FAULT_NODE_CRASH, FAULT_NODE_RESTART),
    "partition": (FAULT_PARTITION, FAULT_PARTITION_HEAL, FAULT_NODE_SLOW),
    "cluster-mixed": (
        FAULT_NODE_CRASH,
        FAULT_NODE_RESTART,
        FAULT_PARTITION,
        FAULT_PARTITION_HEAL,
        FAULT_NODE_SLOW,
    ),
}

#: Latency ramp (units per IO) a brownout plan walks the disks through.
BROWNOUT_RAMP: Tuple[int, ...] = (8, 16, 24)

#: Burst sizes (held arrivals) storm plans draw from.
OVERLOAD_BURSTS: Tuple[int, ...] = (48, 64, 96)

#: Moderate per-IO slowdowns an overload plan pairs with its bursts.
OVERLOAD_SLOWDOWNS: Tuple[int, ...] = (4, 6, 8)


@dataclass(frozen=True)
class PlannedFault:
    """One scheduled fault: *before* operation ``op_index``, do ``kind``.

    ``arg`` parameterises kinds that need a magnitude: the per-IO latency
    for ``slow-disk``, the number of held arrivals for ``burst``.  Point
    faults leave it 0.
    """

    op_index: int
    kind: str
    disk: int = 0
    extent: int = 0
    arg: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "op": self.op_index,
            "kind": self.kind,
            "disk": self.disk,
            "extent": self.extent,
            "arg": self.arg,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one operation sequence."""

    seed: int
    profile: str
    ops: int
    faults: Tuple[PlannedFault, ...]

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        ops: int,
        extents: Iterable[int],
        profile: str = "transient",
        num_disks: int = 0,
        fault_count: Optional[int] = None,
    ) -> "FaultPlan":
        """Draw a plan from ``seed``.

        ``num_disks`` = 0 generates a store-level plan (one disk, extent
        coordinates only); > 0 a node-level plan that also picks disks.
        ``permanent``/``mixed`` node profiles schedule at most one dying
        disk (never disk 0, so the node always keeps a survivor) killed in
        the first half of the sequence; ``mixed`` may heal it later.

        ``brownout`` walks *every* disk through the :data:`BROWNOUT_RAMP`
        latency steps early in the sequence (a fleet-wide gray failure:
        the SLOW breaker can demote disks, but the last one limps along
        slow, so pressure is sustained), lands one arrival burst mid-ramp,
        and heals one disk later -- the replaced-disk event that gives
        migration and hedges a fast target again.  ``overload`` slows all
        disks moderately (:data:`OVERLOAD_SLOWDOWNS`) and then schedules
        three arrival bursts from :data:`OVERLOAD_BURSTS` across the rest
        of the sequence.  Neither draws corruption or dying-disk faults:
        they gate on the latency/admission behaviour, not on repair.
        """
        if ops <= 0:
            raise ValueError("ops must be positive")
        extent_list = sorted(set(extents))
        if not extent_list:
            raise ValueError("a fault plan needs target extents")
        node = num_disks > 0
        profiles = NODE_PROFILES if node else STORE_PROFILES
        if profile not in profiles:
            raise ValueError(
                f"unknown {'node' if node else 'store'} profile {profile!r}"
            )
        kinds = profiles[profile]
        rng = random.Random(seed)
        count = fault_count if fault_count is not None else max(2, ops // 8)
        faults: List[PlannedFault] = []
        if node and FAULT_PERMANENT_DISK in kinds and num_disks > 1:
            dying = rng.randrange(1, num_disks)
            kill_at = rng.randrange(max(1, ops // 4), max(2, ops // 2))
            faults.append(
                PlannedFault(kill_at, FAULT_PERMANENT_DISK, disk=dying)
            )
            if FAULT_HEAL in kinds and rng.random() < 0.5 and kill_at + 2 < ops:
                heal_at = rng.randrange(kill_at + 2, ops)
                faults.append(PlannedFault(heal_at, FAULT_HEAL, disk=dying))
        if node and profile == "brownout":
            start = rng.randrange(max(1, ops // 8), max(2, ops // 6 + 1))
            step = max(1, ops // 12)
            for disk in range(num_disks):
                for i, latency in enumerate(BROWNOUT_RAMP):
                    faults.append(
                        PlannedFault(
                            start + i * step,
                            FAULT_SLOW_DISK,
                            disk=disk,
                            arg=latency,
                        )
                    )
            faults.append(
                PlannedFault(
                    start + step + 1,
                    FAULT_BURST,
                    arg=rng.choice(OVERLOAD_BURSTS),
                )
            )
            ramp_end = start + (len(BROWNOUT_RAMP) - 1) * step
            heal_at = rng.randrange(
                ramp_end + 2, max(ramp_end + 3, ops * 3 // 4)
            )
            faults.append(
                PlannedFault(heal_at, FAULT_HEAL, disk=rng.randrange(num_disks))
            )
        if node and profile == "overload":
            slow_at = rng.randrange(max(1, ops // 8), max(2, ops // 6 + 1))
            for disk in range(num_disks):
                faults.append(
                    PlannedFault(
                        slow_at,
                        FAULT_SLOW_DISK,
                        disk=disk,
                        arg=rng.choice(OVERLOAD_SLOWDOWNS),
                    )
                )
            for i in range(3):
                faults.append(
                    PlannedFault(
                        slow_at + 2 + i * max(1, ops // 5),
                        FAULT_BURST,
                        arg=rng.choice(OVERLOAD_BURSTS),
                    )
                )
        point_kinds = [
            k
            for k in kinds
            if k
            not in (FAULT_PERMANENT_DISK, FAULT_HEAL, FAULT_SLOW_DISK, FAULT_BURST)
        ]
        for _ in range(count):
            faults.append(
                PlannedFault(
                    op_index=rng.randrange(ops),
                    kind=rng.choice(point_kinds),
                    disk=rng.randrange(num_disks) if node else 0,
                    extent=rng.choice(extent_list),
                )
            )
        faults.sort(key=lambda f: (f.op_index, f.kind, f.disk, f.extent, f.arg))
        return cls(seed=seed, profile=profile, ops=ops, faults=tuple(faults))

    @classmethod
    def generate_cluster(
        cls,
        seed: int,
        *,
        ops: int,
        num_nodes: int,
        profile: str = "cluster-mixed",
        windows: int = 3,
    ) -> "FaultPlan":
        """Draw a node-granularity storm plan from ``seed``.

        ``disk`` carries the *node id*.  The plan schedules outage windows
        -- crash..restart or partition..heal pairs -- with two invariants
        the durability property depends on: a node is never in two
        overlapping windows, and at no op index are more than a strict
        minority of nodes down or partitioned at once.  Windows are long
        relative to the hinted-handoff buffer, so hint overflow (and hence
        replica divergence that only read-repair can converge) is expected,
        not exceptional.  ``node-slow`` events hold ``arg`` arrivals at one
        node so its admission queue sheds -- a gray replica, not a dead one.
        """
        if ops <= 0:
            raise ValueError("ops must be positive")
        if num_nodes < 3:
            raise ValueError("cluster plans need at least 3 nodes")
        if profile not in CLUSTER_PROFILES:
            raise ValueError(f"unknown cluster profile {profile!r}")
        kinds = CLUSTER_PROFILES[profile]
        rng = random.Random(seed)
        minority = max(1, (num_nodes - 1) // 2)
        crash_kind = FAULT_NODE_CRASH in kinds
        part_kind = FAULT_PARTITION in kinds
        spans: List[Tuple[int, int, int]] = []
        faults: List[PlannedFault] = []
        for _ in range(windows * 4):
            if len(spans) >= windows:
                break
            node = rng.randrange(num_nodes)
            start = rng.randrange(max(1, ops // 10), max(2, ops // 2))
            length = rng.randrange(max(4, ops // 6), max(5, ops // 3))
            end = min(ops - 2, start + length)
            if end <= start:
                continue
            overlapping = [
                s for s in spans if not (end < s[0] or s[1] < start)
            ]
            if any(s[2] == node for s in overlapping):
                continue
            if len(overlapping) + 1 > minority:
                continue
            spans.append((start, end, node))
            is_crash = (
                rng.random() < 0.5 if (crash_kind and part_kind) else crash_kind
            )
            if is_crash:
                faults.append(PlannedFault(start, FAULT_NODE_CRASH, disk=node))
                faults.append(PlannedFault(end, FAULT_NODE_RESTART, disk=node))
            else:
                faults.append(PlannedFault(start, FAULT_PARTITION, disk=node))
                faults.append(
                    PlannedFault(end, FAULT_PARTITION_HEAL, disk=node)
                )
        if FAULT_NODE_SLOW in kinds:
            for _ in range(rng.randrange(1, 3)):
                faults.append(
                    PlannedFault(
                        rng.randrange(max(1, ops // 8), max(2, ops - 1)),
                        FAULT_NODE_SLOW,
                        disk=rng.randrange(num_nodes),
                        arg=rng.choice(OVERLOAD_BURSTS),
                    )
                )
        faults.sort(key=lambda f: (f.op_index, f.kind, f.disk, f.extent, f.arg))
        return cls(seed=seed, profile=profile, ops=ops, faults=tuple(faults))

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for fault in self.faults:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return dict(sorted(out.items()))

    @property
    def has_permanent(self) -> bool:
        permanent = {FAULT_PERMANENT, FAULT_PERMANENT_DISK}
        healed = {f.disk for f in self.faults if f.kind == FAULT_HEAL}
        return any(
            f.kind in permanent and f.disk not in healed for f in self.faults
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "ops": self.ops,
            "counts": self.counts(),
            "faults": [fault.to_json() for fault in self.faults],
        }


class FaultInjector:
    """Walks a :class:`FaultPlan` alongside an operation sequence.

    The driver calls :meth:`due` with each operation index (monotonically
    increasing); every planned fault scheduled at or before that index is
    handed out exactly once, in plan order.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._cursor = 0
        self.delivered = 0

    def due(self, op_index: int) -> Sequence[PlannedFault]:
        out: List[PlannedFault] = []
        while (
            self._cursor < len(self.plan.faults)
            and self.plan.faults[self._cursor].op_index <= op_index
        ):
            out.append(self.plan.faults[self._cursor])
            self._cursor += 1
        self.delivered += len(out)
        return out

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.plan.faults)
