"""Registry of the 16 issues from the paper's Fig. 5, as injectable faults.

The paper's headline result is a catalog of 16 bugs its validation stack
prevented from reaching production.  To *reproduce* that evaluation we need
the bugs themselves: each entry here re-implements one Fig. 5 issue as a
toggleable fault inside the corresponding component.  With all faults off,
the implementation is correct and every checker passes; enabling a fault
reintroduces the bug, and the Fig. 5 benchmark
(`benchmarks/test_fig5_detection_matrix.py`) demonstrates that the matching
checker detects it.

Fault flags are carried on a :class:`FaultSet` threaded through component
constructors -- never global state -- so tests remain deterministic and
parallel-safe.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable


class Fault(enum.Enum):
    """One member per Fig. 5 issue, numbered as in the paper."""

    # -- functional correctness (detected by conformance PBT, section 4) --
    RECLAIM_OFF_BY_ONE = 1
    # #1 Chunk store: off-by-one in reclamation for chunks of size close to
    # PAGE_SIZE -- the scan under-counts the chunk's footprint and misses a
    # chunk whose frame ends exactly at a page boundary.
    CACHE_NOT_DRAINED_ON_RESET = 2
    # #2 Buffer cache: cache was not correctly drained after resetting an
    # extent -- reads after the extent is reused can return stale pages.
    SHUTDOWN_SKIPS_METADATA_AFTER_RESET = 3
    # #3 Index: metadata was not flushed correctly during shutdown if an
    # extent was reset -- a clean reboot loses recent index entries.
    DISK_RETURN_DROPS_SHARDS = 4
    # #4 API: shards could be lost if a disk was removed from service and
    # then later returned.
    RECLAIM_FORGETS_ON_READ_ERROR = 5
    # #5 Chunk store: reclamation could forget chunks after a transient
    # read IO error -- the scan treats the error like "no more chunks".

    # -- crash consistency (detected by the section 5 checker) -----------
    SUPERBLOCK_WRONG_DEP_AFTER_REBOOT = 6
    # #6 Superblock: the dependency for extent-ownership records was
    # incorrect after a reboot (a stale pre-reboot flush promise is reused,
    # so operations report persistent before the post-reboot superblock
    # record is durable).
    SOFT_HARD_POINTER_MISMATCH_ON_RESET = 7
    # #7 Superblock: mismatch between soft and hard write pointers in a
    # crash after an extent reset -- the pointer-zero superblock update
    # does not depend on the reset (and its evacuations) persisting.
    CACHE_WRITE_MISSING_SOFT_PTR_DEP = 8
    # #8 Buffer cache: writes did not include a dependency on the soft
    # write pointer update -- data can be durable while the recovered
    # pointer excludes it.
    MODEL_STALE_AFTER_CRASH_RECLAIM = 9
    # #9 Chunk store: the *reference model* was not updated correctly
    # after a crash during reclamation (a bug in the validation artifact
    # itself, caught because model and implementation then diverge).
    UUID_MAGIC_COLLISION_SCAN = 10
    # #10 Chunk store: reclamation could forget chunks after a crash and
    # UUID collision -- the exact torn-write/overlapping-chunk scenario
    # of the paper's section 5 example.

    # -- concurrency (detected by stateless model checking, section 6) ---
    LOCATOR_RACE_WRITE_FLUSH = 11
    # #11 Chunk store: chunk locators could become invalid after a race
    # between write and flush.
    BUFFER_POOL_DEADLOCK = 12
    # #12 Superblock: buffer pool exhaustion could cause threads waiting
    # for a superblock update to deadlock.
    LIST_REMOVE_RACE = 13
    # #13 API: race between control-plane operations for listing and
    # removal of shards.
    COMPACTION_RECLAIM_RACE = 14
    # #14 Index: race between reclamation and LSM compaction could lose
    # recent index entries -- the paper's section 6 example.
    MODEL_REUSES_LOCATORS = 15
    # #15 Chunk store: the reference model could re-use chunk locators,
    # which other code assumed were unique (another validation-artifact
    # bug, caught by an invariant check).
    BULK_CREATE_REMOVE_RACE = 16
    # #16 API: race between control-plane bulk operations for creating
    # and removing shards.


#: Fig. 5 metadata: paper's component and property class for each issue.
FAULT_CATALOG: Dict[Fault, Dict[str, str]] = {
    Fault.RECLAIM_OFF_BY_ONE: {
        "component": "Chunk store",
        "property": "Functional Correctness",
        "description": "Off-by-one error in reclamation for chunks of size "
        "close to PAGE_SIZE",
    },
    Fault.CACHE_NOT_DRAINED_ON_RESET: {
        "component": "Buffer cache",
        "property": "Functional Correctness",
        "description": "Cache was not correctly drained after resetting an extent",
    },
    Fault.SHUTDOWN_SKIPS_METADATA_AFTER_RESET: {
        "component": "Index",
        "property": "Functional Correctness",
        "description": "Metadata was not flushed correctly during shutdown "
        "if an extent was reset",
    },
    Fault.DISK_RETURN_DROPS_SHARDS: {
        "component": "API",
        "property": "Functional Correctness",
        "description": "Shards could be lost if a disk was removed from "
        "service and then later returned",
    },
    Fault.RECLAIM_FORGETS_ON_READ_ERROR: {
        "component": "Chunk store",
        "property": "Functional Correctness",
        "description": "Reclamation could forget chunks after a transient "
        "read IO error",
    },
    Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT: {
        "component": "Superblock",
        "property": "Crash Consistency",
        "description": "Superblock Dependency for extent ownership was "
        "incorrect after a reboot",
    },
    Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET: {
        "component": "Superblock",
        "property": "Crash Consistency",
        "description": "Mismatch between soft and hard write pointers in a "
        "crash after an extent reset",
    },
    Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP: {
        "component": "Buffer cache",
        "property": "Crash Consistency",
        "description": "Writes did not include a dependency on the soft "
        "write pointer update",
    },
    Fault.MODEL_STALE_AFTER_CRASH_RECLAIM: {
        "component": "Chunk store",
        "property": "Crash Consistency",
        "description": "Reference model was not updated correctly after a "
        "crash during reclamation",
    },
    Fault.UUID_MAGIC_COLLISION_SCAN: {
        "component": "Chunk store",
        "property": "Crash Consistency",
        "description": "Reclamation could forget chunks after a crash and "
        "UUID collision",
    },
    Fault.LOCATOR_RACE_WRITE_FLUSH: {
        "component": "Chunk store",
        "property": "Concurrency",
        "description": "Chunk locators could become invalid after a race "
        "between write and flush",
    },
    Fault.BUFFER_POOL_DEADLOCK: {
        "component": "Superblock",
        "property": "Concurrency",
        "description": "Buffer pool exhaustion could cause threads waiting "
        "for a superblock update to deadlock",
    },
    Fault.LIST_REMOVE_RACE: {
        "component": "API",
        "property": "Concurrency",
        "description": "Race between control plane operations for listing "
        "and removal of shards",
    },
    Fault.COMPACTION_RECLAIM_RACE: {
        "component": "Index",
        "property": "Concurrency",
        "description": "Race between reclamation and LSM compaction could "
        "lose recent index entries",
    },
    Fault.MODEL_REUSES_LOCATORS: {
        "component": "Chunk store",
        "property": "Concurrency",
        "description": "Reference model could re-use chunk locators, which "
        "other code assumed were unique",
    },
    Fault.BULK_CREATE_REMOVE_RACE: {
        "component": "API",
        "property": "Concurrency",
        "description": "Race between control plane bulk operations for "
        "creating and removing shards",
    },
}


class FaultSet:
    """An immutable set of enabled faults, threaded through components."""

    __slots__ = ("_enabled",)

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._enabled: FrozenSet[Fault] = frozenset(faults)

    @classmethod
    def none(cls) -> "FaultSet":
        return cls()

    @classmethod
    def only(cls, fault: Fault) -> "FaultSet":
        return cls((fault,))

    def enabled(self, fault: Fault) -> bool:
        return fault in self._enabled

    def with_(self, fault: Fault) -> "FaultSet":
        return FaultSet(self._enabled | {fault})

    def __iter__(self):
        return iter(sorted(self._enabled, key=lambda f: f.value))

    def __bool__(self) -> bool:
        return bool(self._enabled)

    def __repr__(self) -> str:
        names = ", ".join(f.name for f in self)
        return f"FaultSet({names})"


def component_of(fault: Fault) -> str:
    """The paper's Fig. 5 component for ``fault`` (fault-event log labels)."""
    return FAULT_CATALOG[fault]["component"]


def detector_for(fault: Fault) -> str:
    """Which checker in this repo demonstrates the fault (Fig. 5 bench)."""
    prop = FAULT_CATALOG[fault]["property"]
    if prop == "Functional Correctness":
        return "conformance PBT"
    if prop == "Crash Consistency":
        return "crash-consistency PBT"
    return "stateless model checking"
