"""Chunk reclamation: the garbage-collection background task.

Reclamation (section 2.1) selects an extent, scans it to find all chunks,
reverse-looks-up each chunk in the index -- the LSM tree for shard data,
the LSM metadata for run chunks -- evacuates live chunks to a new extent
(updating their pointers), drops unreferenced chunks, and finally resets
the extent's write pointer so the space can be reused.

The crash-consistent ordering the paper describes is expressed through
dependencies: the reset is queued with a dependency on every evacuation
write *and* every index/metadata update, so the destructive step cannot
reach the medium before the copies and their pointers are durable.  The
superblock is told about the reset (:meth:`Superblock.note_reset`) so the
extent's published pointer is held back until the reset itself is durable.

Three Fig. 5 issues live here:

* fault #1 -- an off-by-one truncates the payload of evacuated chunks whose
  frame ends exactly on a page boundary;
* fault #5 -- a transient read error mid-scan is treated as end-of-extent,
  forgetting (and then destroying) every chunk after it;
* fault #10 -- the strictly-sequential scan that an overlapping corrupt
  decode can fool (the paper's section 5 example), selected in
  :func:`repro.shardstore.chunk.scan_chunks`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.concurrency.primitives import yield_point

from .buffer_cache import BufferCache
from .chunk import KIND_DATA, KIND_RUN, Locator, PagedReader, scan_chunks
from .chunk_store import ChunkStore
from .config import StoreConfig
from .dependency import Dependency
from .errors import ShardStoreError
from .faults import Fault
from .lsm import LsmIndex
from .superblock import Superblock


@dataclass
class ReclaimResult:
    """What one reclamation pass did (consumed by tests and benches)."""

    extent: int
    scanned_chunks: int = 0
    evacuated: int = 0
    dropped: int = 0
    keys_touched: Set[bytes] = field(default_factory=set)
    reset_done: bool = False


class Reclaimer:
    """Runs reclamation passes over data extents."""

    def __init__(
        self,
        chunk_store: ChunkStore,
        index: LsmIndex,
        cache: BufferCache,
        superblock: Superblock,
        config: StoreConfig,
    ) -> None:
        self.chunk_store = chunk_store
        self.index = index
        self.cache = cache
        self.superblock = superblock
        self.config = config
        self.faults = config.faults
        self.recorder = config.recorder
        #: Keys whose chunks were moved by the most recent pass -- consumed
        #: by the crash-aware reference model (and its fault #9).
        self.last_touched_keys: Set[bytes] = set()

    def reclaim(
        self, extent: int, *, max_evacuations: Optional[int] = None
    ) -> Optional[ReclaimResult]:
        """Reclaim one extent; returns None if the extent was skipped.

        A transient IO error aborts the pass with :class:`IoError` -- the
        extent is left untouched and can be retried (fault #5 instead
        swallows the error and destroys whatever the truncated scan missed).

        ``max_evacuations`` interrupts the pass after that many chunk
        copies -- a preempted background GC.  The pass then stops *before*
        the reset: copies made so far and their index updates stand (they
        are idempotent against a retry), the extent keeps its data, and
        ``reset_done`` is False.  This is how the crash alphabet reaches
        "crash during reclamation" states (the setting of the paper's
        issue #9).
        """
        if not self.chunk_store.begin_reclaim(extent):
            return None
        try:
            # Guarded: reclamation runs from the put path under allocation
            # pressure, so an unguarded span would tax the fast path.
            if not self.recorder.enabled:
                return self._reclaim_claimed(extent, max_evacuations)
            with self.recorder.span("reclaim", extent=extent):
                return self._reclaim_claimed(extent, max_evacuations)
        finally:
            self.chunk_store.end_reclaim(extent)

    def _reclaim_claimed(
        self, extent: int, max_evacuations: Optional[int] = None
    ) -> ReclaimResult:
        result = ReclaimResult(extent=extent)
        scheduler = self.cache.scheduler
        limit = scheduler.soft_pointer(extent)
        page = self.config.geometry.page_size
        on_read_error = (
            "truncate"
            if self.faults.enabled(Fault.RECLAIM_FORGETS_ON_READ_ERROR)
            else "raise"
        )
        if self.recorder.enabled:
            if on_read_error == "truncate":
                self.recorder.fault_event(
                    Fault.RECLAIM_FORGETS_ON_READ_ERROR,
                    "Chunk store",
                    f"scan of extent {extent} will treat a read error as "
                    "end-of-extent",
                )
            if self.faults.enabled(Fault.UUID_MAGIC_COLLISION_SCAN):
                self.recorder.fault_event(
                    Fault.UUID_MAGIC_COLLISION_SCAN,
                    "Chunk store",
                    f"sequential-only scan of extent {extent}",
                )
        reader = PagedReader(
            lambda off, length: self.cache.read(extent, off, length), limit, page
        )
        chunks = scan_chunks(
            reader,
            page,
            sequential_only=self.faults.enabled(Fault.UUID_MAGIC_COLLISION_SCAN),
            on_read_error=on_read_error,
        )
        result.scanned_chunks = len(chunks)
        deps: List[Dependency] = []
        touched: Set[bytes] = set()
        interrupted = False
        for offset, chunk in chunks:
            if max_evacuations is not None and result.evacuated >= max_evacuations:
                interrupted = True
                break
            locator = Locator(extent, offset, chunk.frame_length)
            yield_point(f"reclaim: considering chunk at {extent}:{offset}")
            if chunk.kind == KIND_DATA:
                dep = self._evacuate_data(locator, chunk, touched)
            else:
                dep = self._evacuate_run(locator, chunk)
            if dep is not None:
                deps.append(dep)
                result.evacuated += 1
            else:
                result.dropped += 1
        if interrupted:
            # Preempted mid-pass: no reset, no release.  The evacuation
            # copies and index updates already made stand on their own;
            # a retry re-scans and treats the moved chunks as dead.
            result.keys_touched = touched
            self.last_touched_keys = touched
            return result
        if self.faults.enabled(Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET,
                    "Superblock",
                    f"reset of extent {extent} queued without persisting its "
                    "prerequisites",
                )
        else:
            # Persist the reclamation's prerequisites before queueing the
            # destructive reset.  This covers more than the evacuation
            # dependencies collected above: chunks dropped as *dead* are
            # only safely destroyable once the index/metadata state that
            # de-referenced them (a compaction's merged run, a tombstone's
            # run) is on the medium -- otherwise a crash recovers the older
            # metadata, which still points into this extent.  Flushing the
            # index and superblock and draining eligible writebacks makes
            # every prerequisite durable, so the reset is enqueued with an
            # already-persistent dependency and can never deadlock behind
            # unresolved pointer promises.  (Fault #7 is precisely this
            # wait being skipped: the soft pointer moves ahead of the
            # medium.)
            self.index.flush()
            self.superblock.flush()
            while scheduler.pump_one():
                pass
        base = (
            Dependency.all_(deps)
            if deps
            else Dependency.root(scheduler.tracker)
        )
        reset_dep = scheduler.reset(extent, base, label=f"reclaim-reset@{extent}")
        self.superblock.note_reset(extent, reset_dep)
        self.cache.invalidate_extent(extent)
        self.chunk_store.release_extent(extent)
        result.reset_done = True
        result.keys_touched = touched
        self.last_touched_keys = touched
        if self.recorder.enabled:
            self.recorder.count("reclaim.extents_reclaimed")
            self.recorder.count("reclaim.chunks_evacuated", result.evacuated)
            self.recorder.count("reclaim.chunks_dropped", result.dropped)
        return result

    def _evacuate_data(
        self, locator: Locator, chunk, touched: Set[bytes]
    ) -> Optional[Dependency]:
        """Copy a live shard-data chunk elsewhere; returns None if dead."""
        current = self.index.data_locators(chunk.key)
        if current is None or locator not in current:
            return None
        payload = chunk.payload
        if (
            self.faults.enabled(Fault.RECLAIM_OFF_BY_ONE)
            and payload
            and (locator.offset + locator.length) % self.config.geometry.page_size == 0
        ):
            # Fault #1: the boundary arithmetic drops the final byte of
            # chunks whose frame ends exactly on a page boundary.
            payload = payload[:-1]
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.RECLAIM_OFF_BY_ONE,
                    "Chunk store",
                    f"evacuation of {locator} dropped the final payload byte",
                )
        new_loc, write_dep = self.chunk_store.put_chunk(
            KIND_DATA, chunk.key, payload, priority=True
        )
        if self.recorder.enabled:
            self.recorder.count("reclaim.bytes_moved", len(payload))
        index_dep = self.index.replace_data_locator(
            chunk.key, locator, new_loc, write_dep
        )
        touched.add(chunk.key)
        if index_dep is None:
            # The entry changed under us (delete/overwrite); the copy is
            # garbage and the original is dead -- nothing to order on.
            return None
        return write_dep.and_(index_dep)

    def _evacuate_run(self, locator: Locator, chunk) -> Optional[Dependency]:
        """Copy a live LSM-run chunk elsewhere; returns None if dead."""
        if not self.index.is_run_live(locator):
            return None
        new_loc, write_dep = self.chunk_store.put_chunk(
            KIND_RUN, chunk.key, chunk.payload, priority=True
        )
        if self.recorder.enabled:
            self.recorder.count("reclaim.bytes_moved", len(chunk.payload))
        try:
            meta_dep = self.index.relocate_run(locator, new_loc, write_dep)
        except ShardStoreError:
            # The run was retired (concurrent compaction) between the
            # liveness check and the relocation; the copy is garbage.
            return None
        return write_dep.and_(meta_dep)

    # ------------------------------------------------------------------

    def reclaimable_extents(self) -> List[int]:
        """Extents a background pass could target right now."""
        return [
            extent
            for extent in self.chunk_store.owned_extents()
            if extent != self.chunk_store.open_extent
            and not self.chunk_store.is_pinned(extent)
        ]
