"""Prometheus text-format exposition of the metrics registry.

:func:`render_prometheus` turns the JSON-able snapshots the rest of the
observability layer already produces (:meth:`Metrics.snapshot`, merged
campaign blocks, :meth:`TimingRecorder.latency_snapshot`) into the
Prometheus exposition format (version 0.0.4) that ``repro metrics-serve``
serves on ``/metrics``.  Stdlib only; nothing here imports an HTTP server.

Mapping:

* counters   -> ``repro_<name>_total`` (TYPE counter)
* gauges     -> ``repro_<name>`` (last) and ``repro_<name>_peak`` (max)
* histograms -> ``repro_<name>`` (TYPE histogram) with cumulative
  ``_bucket{le=...}`` samples, ``_sum`` and ``_count``
* latency histograms (nanoseconds, from a TimingRecorder) ->
  ``repro_latency_seconds{section="<name>"}`` with bounds scaled to seconds
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_NAME_OK.sub('_', name)}"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _bound_key(bound: str) -> float:
    return float("inf") if bound == "inf" else float(bound)


def _histogram_lines(
    metric: str,
    snapshot: Dict[str, Any],
    *,
    scale: float = 1.0,
    labels: str = "",
) -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` samples for one histogram."""
    lines: List[str] = []
    cumulative = 0
    extra = f",{labels}" if labels else ""
    for bound in sorted(snapshot.get("buckets", {}), key=_bound_key):
        cumulative += snapshot["buckets"][bound]
        if bound == "inf":
            continue
        le = _format_value(int(bound) * scale if scale != 1.0 else int(bound))
        lines.append(f'{metric}_bucket{{le="{le}"{extra}}} {cumulative}')
    label_block = f"{{{labels}}}" if labels else ""
    lines.append(
        f'{metric}_bucket{{le="+Inf"{extra}}} {snapshot.get("count", 0)}'
    )
    total = snapshot.get("total", 0)
    lines.append(
        f"{metric}_sum{label_block} "
        f"{_format_value(total * scale if scale != 1.0 else total)}"
    )
    lines.append(f'{metric}_count{label_block} {snapshot.get("count", 0)}')
    return lines


def render_prometheus(
    metrics: Optional[Dict[str, Any]],
    *,
    latency: Optional[Dict[str, Any]] = None,
    extra_counters: Optional[Dict[str, int]] = None,
    extra_gauges: Optional[Dict[str, float]] = None,
    labeled_counters: Optional[Dict[str, Dict[str, int]]] = None,
    labeled_gauges: Optional[Dict[str, Dict[str, float]]] = None,
    label: str = "node",
    namespace: str = "repro",
) -> str:
    """Render metric snapshots as a Prometheus text-format page.

    ``metrics`` is a :meth:`Metrics.snapshot` dict (or a merged campaign
    block); ``latency`` is a :meth:`TimingRecorder.latency_snapshot` dict
    in nanoseconds, exposed in seconds per Prometheus convention;
    ``extra_counters`` adds flat name->int counters (e.g. ``NodeStats``);
    ``extra_gauges`` adds flat name->float gauges (e.g. the breaker
    states and error rates from ``StorageNode.health_snapshot()``).

    ``labeled_counters`` / ``labeled_gauges`` map a metric name to
    ``{label value -> number}`` and render one sample per label value
    under the ``label`` key (default ``node``) -- the cluster demo uses
    this to break breaker/queue/shed/hedge series out per storage node:
    ``repro_cluster_shed_overload_total{node="node2"} 3``.
    """
    lines: List[str] = []
    metrics = metrics or {}

    for name in sorted(labeled_counters or {}):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(
            f"# HELP {metric} Monotonic counter {name} (per {label})"
        )
        lines.append(f"# TYPE {metric} counter")
        for value_key in sorted(labeled_counters[name]):
            lines.append(
                f'{metric}{{{label}="{value_key}"}} '
                f"{_format_value(labeled_counters[name][value_key])}"
            )

    for name in sorted(labeled_gauges or {}):
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} Gauge {name} (per {label})")
        lines.append(f"# TYPE {metric} gauge")
        for value_key in sorted(labeled_gauges[name]):
            lines.append(
                f'{metric}{{{label}="{value_key}"}} '
                f"{_format_value(labeled_gauges[name][value_key])}"
            )

    counters = dict(metrics.get("counters", {}))
    for name, value in (extra_counters or {}).items():
        counters[name] = value
    for name in sorted(counters):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# HELP {metric} Monotonic counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")

    gauges = dict(metrics.get("gauges", {}))
    for name, value in (extra_gauges or {}).items():
        gauges[name] = value
    for name in sorted(gauges):
        value = gauges[name]
        metric = _metric_name(name, namespace)
        last = value.get("last") if isinstance(value, dict) else value
        peak = value.get("max") if isinstance(value, dict) else value
        if last is not None:
            lines.append(f"# HELP {metric} Gauge {name} (last set value)")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(last)}")
        if peak is not None:
            lines.append(f"# HELP {metric}_peak Gauge {name} (peak value)")
            lines.append(f"# TYPE {metric}_peak gauge")
            lines.append(f"{metric}_peak {_format_value(peak)}")

    for name in sorted(metrics.get("histograms", {})):
        metric = _metric_name(name, namespace)
        lines.append(f"# HELP {metric} Distribution of {name}")
        lines.append(f"# TYPE {metric} histogram")
        lines.extend(_histogram_lines(metric, metrics["histograms"][name]))

    if latency:
        metric = f"{namespace}_latency_seconds"
        lines.append(
            f"# HELP {metric} Wall-clock section latency by component span"
        )
        lines.append(f"# TYPE {metric} histogram")
        for name in sorted(latency):
            lines.extend(
                _histogram_lines(
                    metric,
                    latency[name],
                    scale=1e-9,
                    labels=f'section="{name}"',
                )
            )

    return "\n".join(lines) + "\n"
