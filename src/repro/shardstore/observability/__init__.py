"""Observability for the ShardStore: tracing, metrics, fault-event log.

The paper's methodology depends on *seeing why a checker fired*: minimized
failing histories are only half the story without the trace of what the
implementation actually did.  This package is the zero-dependency
instrumentation backbone threaded through every ShardStore component --
op-level spans nesting into IO-scheduler pumps and disk writes, counters
and histograms for the cache/LSM/scheduler/reclamation, and a structured
fault-event log keyed to the Fig. 5 :class:`~repro.shardstore.faults.Fault`
enum so traced campaign artifacts show exactly which injected buggy branch
executed, and when.

The default :data:`NULL_RECORDER` keeps the hot path allocation-free;
pass a :class:`RingRecorder` via ``StoreConfig(recorder=...)`` (or
``repro campaign --trace``) to capture.
"""

from .metrics import (
    HISTOGRAM_BOUNDS,
    LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    counter_value,
    merge_histogram_snapshots,
    merge_metrics,
    percentile_from_snapshot,
    percentiles_from_snapshot,
)
from .journal import (
    GENESIS_CHAIN,
    JOURNAL_VERSION,
    Journal,
    JournalError,
    classify_error,
    digest_bytes,
    digest_keys,
    journal_head,
    read_journal,
    seal_on_signal,
    verify_chain,
)
from .prometheus import render_prometheus
from .recorder import (
    DEFAULT_TRACE_CAPACITY,
    MAX_FAULT_EVENTS,
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    Recorder,
    RingRecorder,
)
from .render import (
    filter_trace,
    render_fault_events,
    render_metrics,
    render_snapshot,
    render_trace,
)
from .timing import TimingRecorder, component_of_latency

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "merge_metrics",
    "merge_histogram_snapshots",
    "percentile_from_snapshot",
    "percentiles_from_snapshot",
    "counter_value",
    "HISTOGRAM_BOUNDS",
    "LATENCY_BOUNDS_NS",
    "GENESIS_CHAIN",
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "classify_error",
    "digest_bytes",
    "digest_keys",
    "journal_head",
    "read_journal",
    "seal_on_signal",
    "verify_chain",
    "Recorder",
    "TimingRecorder",
    "component_of_latency",
    "render_prometheus",
    "NullRecorder",
    "RingRecorder",
    "NULL_RECORDER",
    "NULL_SPAN",
    "DEFAULT_TRACE_CAPACITY",
    "MAX_FAULT_EVENTS",
    "filter_trace",
    "render_metrics",
    "render_fault_events",
    "render_trace",
    "render_snapshot",
]
