"""Zero-dependency metric primitives: counters, gauges, histograms.

Every value here is a plain int so that snapshots are JSON-able and --
critically for the campaign runner -- deterministic: metrics from a traced
campaign shard must be byte-identical across reruns and worker counts, so
nothing in this module may consult wall-clock time or object identity.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

#: Histogram bucket upper bounds (inclusive), powers of two.  The final
#: bucket is open-ended and keyed ``"inf"`` in snapshots.
HISTOGRAM_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time level; the snapshot keeps the last and peak values."""

    __slots__ = ("last", "max")

    def __init__(self) -> None:
        self.last = 0
        self.max = 0

    def set(self, value: int) -> None:
        self.last = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, int]:
        return {"last": self.last, "max": self.max}


class Histogram:
    """Power-of-two bucketed distribution of integer observations."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: int) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> Dict[str, Any]:
        buckets = {}
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if self.buckets[index]:
                buckets[str(bound)] = self.buckets[index]
        if self.buckets[-1]:
            buckets["inf"] = self.buckets[-1]
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class Metrics:
    """A named registry of counters/gauges/histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, amount: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.add(amount)

    def gauge(self, name: str, value: int) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: int) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot with deterministically sorted names."""
        return {
            "counters": {
                name: self.counters[name].snapshot()
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].snapshot()
                for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)
            },
        }


def merge_metrics(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard metric snapshots into one campaign-level block.

    Counters sum; gauges keep the peak observed anywhere (``last`` is
    meaningless across shards and is dropped); histograms merge bucket-wise.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            peak = value["max"] if isinstance(value, dict) else value
            gauges[name] = max(gauges.get(name, 0), peak)
        for name, value in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "count": value["count"],
                    "total": value["total"],
                    "min": value["min"],
                    "max": value["max"],
                    "buckets": dict(value["buckets"]),
                }
                continue
            merged["min"] = min(merged["min"], value["min"])
            merged["max"] = max(merged["max"], value["max"])
            merged["count"] += value["count"]
            merged["total"] += value["total"]
            for bound, count in value["buckets"].items():
                merged["buckets"][bound] = (
                    merged["buckets"].get(bound, 0) + count
                )
    for merged in histograms.values():
        merged["buckets"] = {
            bound: merged["buckets"][bound]
            for bound in sorted(
                merged["buckets"], key=lambda b: (b == "inf", len(b), b)
            )
        }
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: {"max": gauges[name]} for name in sorted(gauges)},
        "histograms": {
            name: histograms[name] for name in sorted(histograms)
        },
    }


def counter_value(snapshot: Dict[str, Any], name: str) -> int:
    """Convenience lookup into a :meth:`Metrics.snapshot` dict."""
    return snapshot.get("counters", {}).get(name, 0)


__all__: List[str] = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "merge_metrics",
    "counter_value",
    "HISTOGRAM_BOUNDS",
]
