"""Zero-dependency metric primitives: counters, gauges, histograms.

Every value here is a plain int so that snapshots are JSON-able and --
critically for the campaign runner -- deterministic: metrics from a traced
campaign shard must be byte-identical across reruns and worker counts, so
nothing in this module may consult wall-clock time or object identity.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Histogram bucket upper bounds (inclusive), powers of two.  The final
#: bucket is open-ended and keyed ``"inf"`` in snapshots.
HISTOGRAM_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)

#: Log-spaced bucket bounds for wall-clock latencies, in nanoseconds:
#: powers of two from 1us to ~34s.  Used by the bench harness's
#: :class:`~repro.shardstore.observability.timing.TimingRecorder`; these
#: values never enter campaign artifacts (the determinism contract).
LATENCY_BOUNDS_NS: Tuple[int, ...] = tuple(
    1 << shift for shift in range(10, 36)
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time level; the snapshot keeps the last and peak values."""

    __slots__ = ("last", "max")

    def __init__(self) -> None:
        self.last = 0
        self.max = 0

    def set(self, value: int) -> None:
        self.last = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, int]:
        return {"last": self.last, "max": self.max}


class Histogram:
    """Log-bucketed distribution of integer observations.

    The default bounds suit op/byte counts; pass ``bounds=LATENCY_BOUNDS_NS``
    for nanosecond latencies.  Bounds must be sorted ascending; values above
    the last bound land in the open-ended ``"inf"`` bucket.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "bounds")

    def __init__(self, bounds: Sequence[int] = HISTOGRAM_BOUNDS) -> None:
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: int) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        # bisect_left finds the first bound >= value (bounds are inclusive
        # upper edges); values past the last bound land in the "inf" bucket.
        self.buckets[bisect_left(self.bounds, value)] += 1

    def snapshot(self) -> Dict[str, Any]:
        buckets = {}
        for index, bound in enumerate(self.bounds):
            if self.buckets[index]:
                buckets[str(bound)] = self.buckets[index]
        if self.buckets[-1]:
            buckets["inf"] = self.buckets[-1]
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class Metrics:
    """A named registry of counters/gauges/histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, amount: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.add(amount)

    def gauge(self, name: str, value: int) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: int) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot with deterministically sorted names."""
        return {
            "counters": {
                name: self.counters[name].snapshot()
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].snapshot()
                for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)
            },
        }


def _bound_sort_key(bound: str) -> Tuple[bool, int, str]:
    return (bound == "inf", len(bound), bound)


def merge_histogram_snapshots(
    snapshots: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge histogram snapshots (``Histogram.snapshot()`` dicts) bucket-wise.

    Associative and commutative, so per-shard (or per-op-type) histograms
    can be combined in any grouping -- the property the campaign aggregator
    and the bench harness both rely on.  Returns an empty-histogram snapshot
    when nothing is given.
    """
    merged: Optional[Dict[str, Any]] = None
    for snap in snapshots:
        if not snap or not snap.get("count"):
            continue
        if merged is None:
            merged = {
                "count": snap["count"],
                "total": snap["total"],
                "min": snap["min"],
                "max": snap["max"],
                "buckets": dict(snap["buckets"]),
            }
            continue
        merged["min"] = min(merged["min"], snap["min"])
        merged["max"] = max(merged["max"], snap["max"])
        merged["count"] += snap["count"]
        merged["total"] += snap["total"]
        for bound, count in snap["buckets"].items():
            merged["buckets"][bound] = merged["buckets"].get(bound, 0) + count
    if merged is None:
        return {"count": 0, "total": 0, "min": 0, "max": 0, "buckets": {}}
    merged["buckets"] = {
        bound: merged["buckets"][bound]
        for bound in sorted(merged["buckets"], key=_bound_sort_key)
    }
    return merged


def percentile_from_snapshot(
    snapshot: Dict[str, Any], quantile: float
) -> Optional[int]:
    """The ``quantile`` (0..1] percentile of a histogram snapshot.

    Bucketed histograms only know each observation's bucket, so the answer
    is the *upper bound* of the bucket holding the rank-th observation,
    clamped to the observed ``[min, max]`` range (the open-ended ``inf``
    bucket reports ``max``).  Returns ``None`` for an empty histogram.
    """
    count = snapshot.get("count", 0)
    if not count:
        return None
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    rank = max(1, -(-int(quantile * count * 10**9) // 10**9))  # ceil
    cumulative = 0
    for bound in sorted(snapshot["buckets"], key=_bound_sort_key):
        cumulative += snapshot["buckets"][bound]
        if cumulative >= rank:
            if bound == "inf":
                return snapshot["max"]
            return min(max(int(bound), snapshot["min"]), snapshot["max"])
    return snapshot["max"]


def percentiles_from_snapshot(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The standard latency digest: p50/p90/p99/p999 of one snapshot."""
    return {
        "p50": percentile_from_snapshot(snapshot, 0.50),
        "p90": percentile_from_snapshot(snapshot, 0.90),
        "p99": percentile_from_snapshot(snapshot, 0.99),
        "p999": percentile_from_snapshot(snapshot, 0.999),
    }


def merge_metrics(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard metric snapshots into one campaign-level block.

    Counters sum; gauges keep the peak observed anywhere (``last`` is
    meaningless across shards and is dropped); histograms merge bucket-wise
    via :func:`merge_histogram_snapshots`.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, int] = {}
    histogram_parts: Dict[str, List[Dict[str, Any]]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            peak = value["max"] if isinstance(value, dict) else value
            gauges[name] = max(gauges.get(name, 0), peak)
        for name, value in snap.get("histograms", {}).items():
            histogram_parts.setdefault(name, []).append(value)
    histograms = {
        name: merge_histogram_snapshots(parts)
        for name, parts in histogram_parts.items()
    }
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: {"max": gauges[name]} for name in sorted(gauges)},
        "histograms": {
            name: histograms[name] for name in sorted(histograms)
        },
    }


def counter_value(snapshot: Dict[str, Any], name: str) -> int:
    """Convenience lookup into a :meth:`Metrics.snapshot` dict."""
    return snapshot.get("counters", {}).get(name, 0)


__all__: List[str] = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "merge_metrics",
    "merge_histogram_snapshots",
    "percentile_from_snapshot",
    "percentiles_from_snapshot",
    "counter_value",
    "HISTOGRAM_BOUNDS",
    "LATENCY_BOUNDS_NS",
]
