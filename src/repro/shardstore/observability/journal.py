"""Durable operation journal: the evidence plane's chained JSONL log.

The validation story so far only produces evidence *inside* purpose-built
harnesses: a PBT run or a campaign shard checks conformance while it
executes, then throws the history away.  The journal turns any live run --
``repro bench``, the metrics demo node, a campaign shard -- into *checkable
evidence after the fact*: one ordered JSONL log of every request-plane
operation (op id, kind, key/value digests, outcome, logical tick, causal
component spans, retry/fault context) plus the resilience plane's breaker
transitions, sheds, scrub repairs and reboots.

Two properties make the log evidence rather than debug output:

* **Determinism** -- records carry logical ticks and digests only, never
  wall-clock time or raw payload bytes, so the same seed and workload
  produce a byte-identical journal (the PR 1 determinism contract extended
  to journals).
* **Tamper evidence** -- every record carries a ``chain`` digest over the
  record body and the previous record's chain (a hash chain).  Editing,
  reordering or deleting an interior record breaks the chain; deleting the
  tail removes the ``seal`` record written by :meth:`Journal.close`.

Offline tooling lives in :mod:`repro.evidence`: ``repro check-trace``
replays a journal against the flat reference model and ``repro invariants``
mines Daikon-style properties from it.

Nesting guard
-------------
One journal instance is shared by a :class:`~repro.shardstore.rpc.
StorageNode` and all its per-disk stores (``StoreConfig.journal`` is
propagated).  Only the *outermost* operation emits a record: a node ``put``
that delegates to a per-disk store ``put`` (plus replica writes, breaker
probes, demotion migrations) is one logical operation and must produce one
record, from the layer the client actually called.  ``begin_op`` tracks
depth; nested calls are invisible.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

from ..errors import (
    DeadlineExceededError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
)

_T = TypeVar("_T")

__all__ = [
    "CHAIN_LEN",
    "DIGEST_LEN",
    "GENESIS_CHAIN",
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "canonical_json",
    "chain_digest",
    "classify_error",
    "digest_bytes",
    "digest_key_digests",
    "digest_keys",
    "journal_head",
    "read_journal",
    "seal_on_signal",
    "verify_chain",
]

#: Journal record-format version (bumped on incompatible schema changes).
JOURNAL_VERSION = 1

#: Hex chars of SHA-256 kept for key/value digests (64-bit identification;
#: journals never carry raw key or value bytes).
DIGEST_LEN = 16

#: Hex chars of the per-record hash-chain digest.
CHAIN_LEN = 16

#: The chain value "before" the genesis record.
GENESIS_CHAIN = "0" * CHAIN_LEN

#: Cap on causal span names attached to one op record (the op's own
#: component spans; deterministic, so a cap truncates identically on every
#: rerun).
MAX_OP_SPANS = 12


class JournalError(Exception):
    """A journal file could not be read or written."""


def digest_bytes(data: bytes) -> str:
    """Stable short digest of raw key/value bytes (never the bytes)."""
    return hashlib.sha256(data).hexdigest()[:DIGEST_LEN]


def digest_keys(keys: List[bytes]) -> str:
    """Order-insensitive digest of a key *set* (for ``keys`` op records).

    Sorted by per-key digest (not raw key) so the trace checker, which
    only ever sees digests, can recompute it from the model's key set.
    """
    return digest_key_digests(digest_bytes(key) for key in keys)


def digest_key_digests(key_digests: Iterable[str]) -> str:
    """:func:`digest_keys` over already-digested keys."""
    h = hashlib.sha256()
    for kd in sorted(key_digests):
        h.update(kd.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()[:DIGEST_LEN]


def canonical_json(body: Dict[str, Any]) -> str:
    """The canonical encoding the chain digest is computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def chain_digest(prev: str, body_json: str) -> str:
    """Next chain value: hash of the previous chain plus the record body."""
    return hashlib.sha256((prev + body_json).encode("utf-8")).hexdigest()[
        :CHAIN_LEN
    ]


def classify_error(exc: BaseException) -> str:
    """Map an exception to a journal outcome string.

    Typed sheds get their own outcomes (the checker proves they left state
    unchanged); not-found is an ordinary semantic outcome; anything else is
    ``error:<Type>`` (the checker treats the op's effect as uncertain).
    """
    if isinstance(exc, OverloadedError):
        return "shed_overload"
    if isinstance(exc, DeadlineExceededError):
        return "shed_deadline"
    if isinstance(exc, (NotFoundError, KeyNotFoundError)):
        return "not_found"
    return f"error:{type(exc).__name__}"


class Journal:
    """Append-only JSONL op journal with a per-record hash chain.

    ``path=None`` keeps the journal in memory only (campaign shards, the
    metrics demo node); with a path every record is written through as it
    is produced.  Records are retained in memory either way -- journals
    are bounded by the run that produces them, and in-process consumers
    (the live conformance checker, the evidence gauges) read
    :attr:`entries` without re-parsing.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        meta: Optional[Dict[str, Any]] = None,
        node: Optional[str] = None,
    ) -> None:
        self.path = path
        self.meta: Dict[str, Any] = dict(meta or {})
        #: Journal identity.  In a cluster every per-node journal (and the
        #: router's own) carries a distinct ``node`` id in its genesis meta
        #: *and in every record body*, so merged multi-journal tooling
        #: (``repro invariants``, the cluster trace checker) attributes each
        #: witness to the node that produced it instead of colliding on
        #: per-journal op ids.  The id participates in the hash chain, so
        #: two nodes' journals can never be spliced into one another.
        self.node = node
        if node is not None:
            self.meta.setdefault("node", node)
        #: Parsed records, in write order (including genesis and seal).
        self.entries: List[Dict[str, Any]] = []
        self.head = GENESIS_CHAIN
        self.records_written = 0
        self.bytes_written = 0
        self.sealed = False
        self._seq = 0  # monotone op id
        self._depth = 0  # nesting guard (see module docstring)
        self._open: Optional[Dict[str, Any]] = None
        self._counts: Dict[str, int] = {}
        self._annotation: Dict[str, Any] = {}
        self._recorder: Any = None
        self._fh = open(path, "w", encoding="utf-8") if path else None
        try:
            self._write({"kind": "genesis", "v": JOURNAL_VERSION, "meta": self.meta})
        except Exception:
            if self._fh is not None:
                self._fh.close()
            raise

    # ------------------------------------------------------------------
    # recorder streaming (causal spans / fault context)

    def attach_recorder(self, recorder: Any) -> None:
        """Stream a :class:`RingRecorder`'s spans/fault events into op
        records and stamp records with its logical tick."""
        self._recorder = recorder
        recorder.journal = self

    def on_trace_entry(self, entry: Dict[str, Any]) -> None:
        """Called by an attached recorder for every trace-ring entry."""
        record = self._open
        if record is None:
            return
        if entry.get("type") == "span":
            spans = record.setdefault("spans", [])
            if len(spans) < MAX_OP_SPANS:
                spans.append(entry["name"])
        elif entry.get("type") == "event" and entry.get("name") == "fault":
            record["faults"] = record.get("faults", 0) + 1

    def note_retry(self) -> None:
        """Count one retry attempt against the currently open op."""
        record = self._open
        if record is not None:
            record["retries"] = record.get("retries", 0) + 1

    def annotate(self, **fields: Any) -> None:
        """Attach ``fields`` to the *next* record this journal emits.

        The cluster router uses this to stamp each replica-side record with
        the cluster op id (``cop``) that caused it, so the merged-journal
        checker can corroborate an acknowledged quorum write against the
        per-node journals of its ackers.  Consumed by the first emitted
        record; a nested (suppressed) op does not consume it.
        """
        self._annotation.update(fields)

    def _tick_now(self) -> int:
        if self._recorder is not None:
            return self._recorder._tick
        return self.records_written

    # ------------------------------------------------------------------
    # op lifecycle

    def begin_op(
        self,
        kind: str,
        *,
        key: Optional[bytes] = None,
        value: Optional[bytes] = None,
        fields: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Open a top-level op; returns None (and emits nothing) if nested.

        Every ``begin_op`` must be balanced by :meth:`end_op` -- including
        the nested case -- so the depth guard stays consistent across
        exceptions.
        """
        self._depth += 1
        if self._depth > 1 or self.sealed:
            return None
        # The op id is allocated at *write* time (see end_op): records land
        # in completion order, and a standalone record_op (say, a breaker
        # transition fired mid-drain) may be written while this op is still
        # open.  Begin-time ids would then go backwards in the file.
        record: Dict[str, Any] = {"kind": kind}
        if key is not None:
            record["key"] = digest_bytes(key)
        if value is not None:
            record["value"] = digest_bytes(value)
        if fields:
            record.update(fields)
        if self._annotation:
            record.update(self._annotation)
            self._annotation = {}
        self._open = record
        return record

    def end_op(
        self, handle: Optional[Dict[str, Any]], out: str, **fields: Any
    ) -> None:
        """Close an op opened by :meth:`begin_op` and write its record."""
        self._depth = max(0, self._depth - 1)
        if handle is None:
            return
        self._open = None
        self._seq += 1
        handle["op"] = self._seq
        handle["out"] = out
        for name, val in fields.items():
            if val is not None:
                handle[name] = val
        handle["tick"] = self._tick_now()
        self._bump(handle["kind"], out)
        self._write(handle)

    def call(
        self,
        kind: str,
        fn: Callable[[], _T],
        *,
        key: Optional[bytes] = None,
        value: Optional[bytes] = None,
        fields: Optional[Dict[str, Any]] = None,
        classify: Optional[Callable[[_T], Dict[str, Any]]] = None,
    ) -> _T:
        """Run ``fn`` as one journaled op, classifying its outcome.

        ``classify(result)`` supplies extra record fields derived from a
        successful result (a get's value digest, a contains' boolean).
        Exceptions become typed outcomes via :func:`classify_error` and
        propagate unchanged.
        """
        handle = self.begin_op(kind, key=key, value=value, fields=fields)
        if handle is None:
            try:
                return fn()
            finally:
                self._depth = max(0, self._depth - 1)
        try:
            result = fn()
        except BaseException as exc:
            self.end_op(handle, classify_error(exc))
            raise
        extra = classify(result) if classify is not None else None
        self.end_op(handle, "ok", **(extra or {}))
        return result

    def record_op(
        self,
        kind: str,
        *,
        key: Optional[bytes] = None,
        value: Optional[bytes] = None,
        out: str = "ok",
        **fields: Any,
    ) -> Optional[Dict[str, Any]]:
        """Write one standalone record (breaker transition, mutant probe).

        Unlike :meth:`begin_op`, this ignores the nesting guard: breaker
        transitions triggered mid-operation are still evidence and land in
        write order, before the record of the op that triggered them.
        """
        if self.sealed:
            return None
        self._seq += 1
        record: Dict[str, Any] = {"op": self._seq, "kind": kind, "out": out}
        if key is not None:
            record["key"] = digest_bytes(key)
        if value is not None:
            record["value"] = digest_bytes(value)
        for name, val in fields.items():
            if val is not None:
                record[name] = val
        if self._annotation:
            record.update(self._annotation)
            self._annotation = {}
        record["tick"] = self._tick_now()
        self._bump(kind, out)
        self._write(record)
        return record

    def close(self) -> str:
        """Seal the journal (counter summary + final chain) and return the
        chain head.  A journal missing its seal was truncated."""
        if self.sealed:
            return self.head
        counts = {name: self._counts[name] for name in sorted(self._counts)}
        self._write(
            {
                "kind": "seal",
                "ops": self._seq,
                "records": self.records_written + 1,
                "counts": counts,
            }
        )
        self.sealed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return self.head

    # ------------------------------------------------------------------
    # internals

    def _bump(self, kind: str, out: str) -> None:
        name = f"{kind}:{out}"
        self._counts[name] = self._counts.get(name, 0) + 1

    def _write(self, body: Dict[str, Any]) -> None:
        if self.sealed:
            raise JournalError("journal is sealed")
        if self.node is not None and "node" not in body:
            body["node"] = self.node
        body_json = canonical_json(body)
        chain = chain_digest(self.head, body_json)
        record = dict(body)
        record["chain"] = chain
        line = canonical_json(record)
        self.head = chain
        self.entries.append(record)
        self.records_written += 1
        self.bytes_written += len(line) + 1
        if self._fh is not None:
            self._fh.write(line + "\n")
            self._fh.flush()


# ----------------------------------------------------------------------
# graceful shutdown


class seal_on_signal:
    """Context manager: seal journals even when the run is interrupted.

    A journal missing its seal record reads as truncated (``--require-seal``
    fails), so a bench run or metrics server killed by Ctrl-C or a
    supervisor's SIGTERM would leave evidence that cannot be
    distinguished from tampering.  This installs SIGINT/SIGTERM handlers
    that convert the signal into a :class:`KeyboardInterrupt` (so the
    wrapped loop unwinds through its normal cleanup) and, on *any* exit,
    seals every journal (idempotent -- :meth:`Journal.close` on a sealed
    journal just returns the head) before restoring the previous
    handlers.  Journal writes flush per record, so everything up to the
    interrupt is already on disk; the seal makes the tail verifiable.

    Handlers can only be installed from the main thread; elsewhere this
    degrades to seal-on-exit only.
    """

    def __init__(self, *journals: Optional[Journal]) -> None:
        self.journals = [j for j in journals if j is not None]
        self._previous: Dict[int, Any] = {}

    def __enter__(self) -> "seal_on_signal":
        import signal

        def interrupt(signum: int, frame: Any) -> None:
            raise KeyboardInterrupt(f"signal {signum}")

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(sig, interrupt)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        import signal

        for journal in self.journals:
            try:
                journal.close()
            except Exception:  # noqa: BLE001 - best-effort on shutdown
                pass
        for sig, handler in self._previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# offline helpers (the ``repro check-trace`` / ``repro invariants`` side)


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a journal file into its records (no verification)."""
    entries: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError as exc:
                    raise JournalError(
                        f"{path}:{lineno}: invalid journal record: {exc}"
                    ) from exc
                if not isinstance(entry, dict):
                    raise JournalError(
                        f"{path}:{lineno}: journal record is not an object"
                    )
                entries.append(entry)
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    return entries


def verify_chain(entries: List[Dict[str, Any]]) -> List[str]:
    """Recompute the hash chain; returns problems (empty = intact).

    A record whose stored chain does not match the recomputation was
    edited, reordered, or had a predecessor deleted.  Verification resumes
    from the stored value so one tampered record reports once rather than
    cascading.
    """
    problems: List[str] = []
    if not entries:
        return ["journal is empty (no genesis record)"]
    if entries[0].get("kind") != "genesis":
        problems.append("first record is not a genesis record")
    prev = GENESIS_CHAIN
    for index, entry in enumerate(entries):
        stored = entry.get("chain")
        body = {name: val for name, val in entry.items() if name != "chain"}
        expected = chain_digest(prev, canonical_json(body))
        if stored != expected:
            problems.append(
                f"record {index} (kind={entry.get('kind')!r}): chain digest "
                f"mismatch -- tampered, reordered, or a predecessor deleted"
            )
            prev = stored if isinstance(stored, str) else expected
        else:
            prev = expected
    return problems


def journal_head(entries: List[Dict[str, Any]]) -> str:
    """The chain head (last record's chain) of a parsed journal."""
    if not entries:
        return GENESIS_CHAIN
    chain = entries[-1].get("chain")
    return chain if isinstance(chain, str) else GENESIS_CHAIN
