"""Wall-clock timing on top of the logical-tick recorder.

:class:`TimingRecorder` extends :class:`RingRecorder` with opt-in monotonic
wall-clock measurement: every :meth:`span` additionally observes its
duration into a log-bucketed latency histogram, and the hot-path
:meth:`timed` hook (guarded by ``recorder.timing`` at call sites) measures
component sections -- disk IO, cache fills, LSM flushes, scheduler pumps --
without emitting trace-ring events.

The wall-clock data lives in a *separate* store (:attr:`latency`) and a
separate snapshot (:meth:`latency_snapshot`): :meth:`snapshot` is inherited
unchanged, so traced campaign artifacts stay byte-identical across reruns
(the PR 1 determinism contract).  Only the bench harness and the metrics
endpoint read latencies.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from .metrics import (
    LATENCY_BOUNDS_NS,
    Histogram,
    percentiles_from_snapshot,
)
from .recorder import RingRecorder, _Span

__all__ = ["TimingRecorder", "component_of_latency"]


#: Undotted span names that are background work, not request-plane ops;
#: they get their own component so op busy-share is not double-counted.
_BACKGROUND_SPANS = ("reclaim", "scrub")


def component_of_latency(name: str) -> str:
    """The component a latency series belongs to (its dotted prefix).

    Undotted names are op-level spans (``put``, ``get``, ``flush``...) and
    group under ``"op"``, except background work (reclamation, scrubbing)
    which stands alone; ``node.*`` spans are the RPC layer.
    """
    if "." not in name:
        return name if name in _BACKGROUND_SPANS else "op"
    return name.split(".", 1)[0]


class _TimedSection:
    """Measures one wall-clock section into the recorder's latency store."""

    __slots__ = ("_recorder", "name", "_start")

    def __init__(self, recorder: "TimingRecorder", name: str) -> None:
        self._recorder = recorder
        self.name = name
        self._start = 0

    def __enter__(self) -> "_TimedSection":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._recorder.observe_latency(
            self.name, time.perf_counter_ns() - self._start
        )
        return False


class _TimedSpan(_TimedSection):
    """A ring span that also records its wall-clock duration."""

    __slots__ = ()

    def __exit__(self, *exc: Any) -> bool:
        self._recorder.observe_latency(
            self.name, time.perf_counter_ns() - self._start
        )
        self._recorder._end_span(self.name, failed=exc[0] is not None)
        return False


class TimingRecorder(RingRecorder):
    """A :class:`RingRecorder` that additionally measures wall time.

    Spans keep their logical-tick ring entries (depth, order) *and* feed a
    per-name latency histogram; ``timed`` sections feed histograms only.
    """

    timing = True

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity=capacity)
        self.latency: Dict[str, Histogram] = {}

    def observe_latency(self, name: str, duration_ns: int) -> None:
        histogram = self.latency.get(name)
        if histogram is None:
            histogram = self.latency[name] = Histogram(
                bounds=LATENCY_BOUNDS_NS
            )
        histogram.observe(duration_ns)

    def span(self, name: str, **fields: Any) -> _Span:
        entry: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "depth": self._depth,
        }
        if fields:
            entry["fields"] = fields
        self._emit(entry)
        self._depth += 1
        return _TimedSpan(self, name)

    def timed(self, name: str) -> _TimedSection:
        return _TimedSection(self, name)

    def latency_snapshot(self) -> Dict[str, Any]:
        """Per-name latency histograms with percentile digests (ns).

        Deliberately *not* part of :meth:`snapshot`: wall-clock values must
        never reach campaign artifacts.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self.latency):
            snap = self.latency[name].snapshot()
            snap.update(percentiles_from_snapshot(snap))
            out[name] = snap
        return out
