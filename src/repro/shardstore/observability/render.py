"""Human-readable rendering of traces and metrics (CLI output).

These renderers back ``repro stats`` and ``repro trace`` and the metrics
digest in ``repro campaign`` summaries.  They accept the JSON-able dicts
produced by :meth:`RingRecorder.snapshot` / ``merge_metrics`` so they work
identically on live recorders and on campaign artifacts loaded from disk.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .timing import component_of_latency


def render_metrics(metrics: Dict[str, Any]) -> str:
    """Render one metrics snapshot (or merged campaign block) as a table."""
    lines: List[str] = []
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters:
        lines.append(f"{'counter':<36} {'value':>12}")
        lines.append("-" * 49)
        for name in sorted(counters):
            lines.append(f"{name:<36} {counters[name]:>12,}")
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        if hits or misses:
            rate = hits / max(hits + misses, 1)
            lines.append(f"{'cache hit rate':<36} {rate:>11.1%}")
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<36} {'last':>6} {'max':>6}")
        lines.append("-" * 50)
        for name in sorted(gauges):
            value = gauges[name]
            last = value.get("last", "-") if isinstance(value, dict) else value
            peak = value.get("max", value) if isinstance(value, dict) else value
            lines.append(f"{name:<36} {last!s:>6} {peak!s:>6}")
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<28} {'count':>8} {'total':>10} {'min':>6} {'max':>6}"
        )
        lines.append("-" * 62)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"{name:<28} {h['count']:>8,} {h['total']:>10,} "
                f"{h['min']:>6} {h['max']:>6}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def render_fault_events(events: Iterable[Dict[str, Any]]) -> str:
    """Render the structured fault-event log."""
    rows = list(events)
    if not rows:
        return "(no fault events)"
    lines = [f"{'tick':>6}  {'id':>3}  {'component':<14} fault / detail"]
    lines.append("-" * 60)
    for event in rows:
        detail = f" -- {event['detail']}" if event.get("detail") else ""
        lines.append(
            f"{event.get('tick', 0):>6}  #{event['id']:<2}  "
            f"{event['component']:<14} {event['fault']}{detail}"
        )
    return "\n".join(lines)


def filter_trace(
    events: Iterable[Dict[str, Any]],
    *,
    component: Optional[str] = None,
    op: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Narrow a trace to one component and/or one op's span subtrees.

    ``component`` keeps entries whose name maps to that component (same
    grouping as the latency breakdown: dotted prefix, or ``op`` for
    undotted request-plane spans).  ``op`` keeps each matching top-level
    span together with everything nested inside it.
    """
    out: List[Dict[str, Any]] = []
    active_depth: Optional[int] = None
    for event in events:
        keep = True
        if op is not None:
            depth = int(event.get("depth", 0))
            if active_depth is None:
                keep = event.get("type") == "span" and event.get("name") == op
                if keep:
                    active_depth = depth
            elif (
                event.get("type") == "end"
                and depth <= active_depth
            ):
                keep = event.get("name") == op and depth == active_depth
                active_depth = None
        if keep and component is not None:
            name = str(event.get("name", ""))
            if component_of_latency(name) != component:
                keep = False
        if keep:
            out.append(event)
    return out


def render_trace(
    events: Iterable[Dict[str, Any]], *, dropped: int = 0
) -> str:
    """Render a trace ring: spans indented by depth, ticks in the margin.

    ``dropped`` is the recorder's ``trace_dropped`` count: how many older
    entries the ring evicted before this snapshot was taken.
    """
    rows = list(events)
    if not rows:
        return "(empty trace)"
    lines: List[str] = []
    if dropped:
        lines.append(
            f"(ring evicted {dropped:,} older entries before this window)"
        )
    for event in rows:
        indent = "  " * int(event.get("depth", 0))
        kind = event.get("type", "event")
        name = event.get("name", "?")
        fields = event.get("fields") or {}
        suffix = ""
        if fields:
            rendered = " ".join(
                f"{key}={fields[key]}" for key in sorted(fields)
            )
            suffix = f" [{rendered}]"
        if kind == "span":
            marker = "+ "
        elif kind == "end":
            marker = "- "
            if event.get("failed"):
                suffix += " FAILED"
        else:
            marker = ". "
        lines.append(f"{event.get('tick', 0):>6}  {indent}{marker}{name}{suffix}")
    return "\n".join(lines)


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Full rendering of one recorder snapshot (stats + faults + trace)."""
    sections = [
        render_metrics(snapshot.get("metrics", {})),
        "",
        "fault events:",
        render_fault_events(snapshot.get("fault_events", [])),
        "",
        "trace:",
        render_trace(
            snapshot.get("trace", []),
            dropped=snapshot.get("trace_dropped", 0),
        ),
    ]
    return "\n".join(sections)
