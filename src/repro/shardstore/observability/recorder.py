"""Trace recorders: the observability backbone of the ShardStore.

Two implementations of one interface:

* :class:`NullRecorder` -- the default.  Every method is a no-op, ``span``
  returns a shared singleton context manager, and ``enabled`` is ``False``
  so hot paths (disk IO, cache page lookups, scheduler pumps) can skip the
  call entirely with an attribute check.  The hot path stays
  allocation-free when observability is off.
* :class:`RingRecorder` -- a bounded ring buffer of trace events plus a
  :class:`~repro.shardstore.observability.metrics.Metrics` registry and a
  structured fault-event log keyed to the Fig. 5
  :class:`~repro.shardstore.faults.Fault` enum.

Events are stamped with a *logical tick counter*, never wall-clock time:
traced campaign shards must stay byte-identical across reruns and worker
counts (the PR 1 determinism contract), and wall time would break that.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List

from .metrics import Metrics

#: Ring capacity: enough to hold the interesting suffix of a failing
#: sequence without letting long campaigns accumulate unbounded traces.
DEFAULT_TRACE_CAPACITY = 256

#: Fault-event log cap; overflow is counted, never silently dropped.
MAX_FAULT_EVENTS = 1024


class _NullSpan:
    """Shared no-op context manager returned by disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Recorder:
    """Interface (and no-op base) for trace/metric recording.

    Components hold a reference to a recorder and guard instrumentation
    with ``if self.recorder.enabled:`` on hot paths; colder call sites may
    call methods unconditionally since the base implementations are no-ops.
    """

    enabled = False
    #: True only on recorders that measure wall-clock durations (the bench
    #: harness's TimingRecorder).  Hot paths guard ``timed`` calls with
    #: ``if self.recorder.timing:`` exactly as they guard events with
    #: ``enabled``, so campaign runs never pay for (or observe) wall time.
    timing = False

    def span(self, name: str, **fields: Any) -> Any:
        """Context manager bracketing one operation (nests)."""
        return NULL_SPAN

    def timed(self, name: str) -> Any:
        """Context manager measuring one wall-clock component section.

        Unlike :meth:`span` this never emits a trace-ring event: durations
        go to a latency histogram only, keeping logical traces (and thus
        campaign artifacts) free of wall-clock data.
        """
        return NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: int) -> None:
        pass

    def observe(self, name: str, value: int) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def fault_event(self, fault: Any, component: str, detail: str = "") -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}


class NullRecorder(Recorder):
    """The default recorder: records nothing, allocates nothing."""


#: Shared default instance; components fall back to this when no recorder
#: is configured, so ``self.recorder`` is never ``None``.
NULL_RECORDER = NullRecorder()


class _Span:
    """Context manager emitted by :meth:`RingRecorder.span`."""

    __slots__ = ("_recorder", "name")

    def __init__(self, recorder: "RingRecorder", name: str) -> None:
        self._recorder = recorder
        self.name = name

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._recorder._end_span(self.name, failed=exc[0] is not None)
        return False


class RingRecorder(Recorder):
    """Bounded in-memory recorder: trace ring + metrics + fault events."""

    enabled = True

    #: Optional :class:`~repro.shardstore.observability.journal.Journal`
    #: this recorder streams trace entries into (set by
    #: ``Journal.attach_recorder``); class attribute so the hot path pays
    #: one attribute check when no journal is attached.
    journal: Any = None

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.capacity = capacity
        self.events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.metrics = Metrics()
        self.fault_events: List[Dict[str, Any]] = []
        self.fault_events_dropped = 0
        #: Events evicted from the ring by overflow -- surfaced in
        #: ``snapshot()``/``stats``/``trace`` so truncation is never silent.
        self.trace_dropped = 0
        self._tick = 0
        self._depth = 0

    def _emit(self, entry: Dict[str, Any]) -> None:
        self._tick += 1
        entry["tick"] = self._tick
        if len(self.events) == self.capacity:
            self.trace_dropped += 1
            self.metrics.count("trace.dropped")
        self.events.append(entry)
        if self.journal is not None:
            self.journal.on_trace_entry(entry)

    def span(self, name: str, **fields: Any) -> _Span:
        entry: Dict[str, Any] = {"type": "span", "name": name, "depth": self._depth}
        if fields:
            entry["fields"] = fields
        self._emit(entry)
        self._depth += 1
        return _Span(self, name)

    def _end_span(self, name: str, failed: bool = False) -> None:
        self._depth = max(0, self._depth - 1)
        entry: Dict[str, Any] = {"type": "end", "name": name, "depth": self._depth}
        if failed:
            entry["failed"] = True
        self._emit(entry)

    def count(self, name: str, amount: int = 1) -> None:
        self.metrics.count(name, amount)

    def gauge(self, name: str, value: int) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: int) -> None:
        self.metrics.observe(name, value)

    def event(self, name: str, **fields: Any) -> None:
        entry: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "depth": self._depth,
        }
        if fields:
            entry["fields"] = fields
        self._emit(entry)

    def fault_event(self, fault: Any, component: str, detail: str = "") -> None:
        """Log one structured fault event keyed to the Fig. 5 catalog.

        ``fault`` is a :class:`repro.shardstore.faults.Fault`; it is stored
        by name/id so the log is JSON-able without the enum.
        """
        self.metrics.count("faults.events")
        if len(self.fault_events) >= MAX_FAULT_EVENTS:
            self.fault_events_dropped += 1
            return
        record = {
            "id": fault.value,
            "fault": fault.name,
            "component": component,
            "detail": detail,
            "tick": self._tick + 1,
        }
        self.fault_events.append(record)
        self.event("fault", fault=fault.name, component=component)

    def trace(self) -> List[Dict[str, Any]]:
        """The ring contents, oldest first (JSON-able copies)."""
        return [dict(entry) for entry in self.events]

    def snapshot(self) -> Dict[str, Any]:
        """Everything the campaign artifact embeds for one traced shard."""
        snap: Dict[str, Any] = {
            "metrics": self.metrics.snapshot(),
            "fault_events": [dict(event) for event in self.fault_events],
            "trace": self.trace(),
        }
        if self.fault_events_dropped:
            snap["fault_events_dropped"] = self.fault_events_dropped
        if self.trace_dropped:
            snap["trace_dropped"] = self.trace_dropped
        return snap
