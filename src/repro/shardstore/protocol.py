"""The storage node's wire protocol: request/response marshalling.

The paper's section 8.3 singles out "parsing of S3's messaging protocol,
request routing, and business logic" as code the team was still working to
validate.  This module builds that layer for our node -- a compact,
self-describing wire format over the canonical value codec -- and closes
the validation gap the paper calls out:

* request/response decoders are **untrusted-byte** decoders and join the
  section 7 panic-freedom fuzz set (any input either parses or raises
  ``CorruptionError``);
* :func:`dispatch` routes a decoded request to a
  :class:`~repro.shardstore.rpc.StorageNode` and marshals the outcome, so
  conformance suites can drive the node through the wire format itself.

Wire format: one request/response is a codec record whose payload is a
dict with an ``op``/``status`` discriminator and per-operation fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Protocol, Tuple, runtime_checkable

from repro.serialization.codec import decode_record, encode_record

from .errors import (
    CorruptionError,
    InvalidRequestError,
    NotFoundError,
    RetryableError,
    ShardStoreError,
)
from .rpc import StorageNode


@runtime_checkable
class KVNode(Protocol):
    """The unified key-value surface (tentpole of the observability API).

    Both :class:`~repro.shardstore.store.ShardStore` (one disk) and
    :class:`~repro.shardstore.rpc.StorageNode` (many disks behind the RPC
    layer) structurally conform, so harnesses, checkers, and the CLI can be
    written once against this protocol.  Contract highlights:

    * ``delete`` of an absent key raises
      :class:`~repro.shardstore.errors.KeyNotFoundError` on *both*
      surfaces -- no Optional-return branching;
    * invalid keys are rejected identically everywhere via
      :func:`~repro.shardstore.errors.validate_key`;
    * ``flush()`` returns an object whose ``is_persistent()`` becomes True
      once the flushed state is durable (a ``Dependency`` for the store, a
      cross-tracker conjunction for the node);
    * ``drain()`` writes back everything pending.
    """

    def put(self, key: bytes, value: bytes) -> Any: ...

    def get(self, key: bytes) -> bytes: ...

    def delete(self, key: bytes) -> Any: ...

    def contains(self, key: bytes) -> bool: ...

    def keys(self) -> List[bytes]: ...

    def flush(self) -> Any: ...

    def drain(self) -> None: ...

#: Protocol page size: requests are padded like on-disk records so the
#: same scan/seal tooling applies to message logs.
WIRE_PAGE = 64

OPS_WITH_KEY = ("get", "put", "delete", "migrate")


@dataclass(frozen=True)
class Request:
    """A decoded request."""

    op: str
    key: bytes = b""
    value: bytes = b""
    target_disk: int = 0
    pairs: Tuple[Tuple[bytes, bytes], ...] = ()
    keys: Tuple[bytes, ...] = ()


@dataclass(frozen=True)
class Response:
    """A decoded response."""

    status: str  # "ok" | "not_found" | "retry" | "invalid" | "error"
    value: bytes = b""
    shards: Tuple[bytes, ...] = ()
    count: int = 0
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def encode_request(request: Request) -> bytes:
    payload = {
        "op": request.op,
        "key": request.key,
        "value": request.value,
        "target_disk": request.target_disk,
        "pairs": [[k, v] for k, v in request.pairs],
        "keys": list(request.keys),
    }
    return encode_record(payload, WIRE_PAGE)


def decode_request(data: bytes) -> Request:
    """Parse an untrusted request; raises :class:`CorruptionError` only."""
    value, _ = decode_record(data, 0)
    if not isinstance(value, dict):
        raise CorruptionError("request payload is not a mapping")
    op = value.get("op")
    if op not in ("get", "put", "delete", "list", "bulk_create", "bulk_delete",
                  "migrate", "scrub"):
        raise CorruptionError(f"unknown request op {op!r}")
    key = value.get("key", b"")
    raw_value = value.get("value", b"")
    target = value.get("target_disk", 0)
    if not isinstance(key, bytes) or not isinstance(raw_value, bytes):
        raise CorruptionError("request key/value must be bytes")
    if not isinstance(target, int):
        raise CorruptionError("request target_disk must be an integer")
    raw_pairs = value.get("pairs", [])
    pairs: List[Tuple[bytes, bytes]] = []
    if not isinstance(raw_pairs, list):
        raise CorruptionError("request pairs must be a list")
    for item in raw_pairs:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not isinstance(item[0], bytes)
            or not isinstance(item[1], bytes)
        ):
            raise CorruptionError("malformed bulk pair")
        pairs.append((item[0], item[1]))
    raw_keys = value.get("keys", [])
    if not isinstance(raw_keys, list) or not all(
        isinstance(k, bytes) for k in raw_keys
    ):
        raise CorruptionError("request keys must be a list of bytes")
    return Request(
        op=op,
        key=key,
        value=raw_value,
        target_disk=target,
        pairs=tuple(pairs),
        keys=tuple(raw_keys),
    )


def encode_response(response: Response) -> bytes:
    payload = {
        "status": response.status,
        "value": response.value,
        "shards": list(response.shards),
        "count": response.count,
        "message": response.message,
    }
    return encode_record(payload, WIRE_PAGE)


def decode_response(data: bytes) -> Response:
    """Parse an untrusted response; raises :class:`CorruptionError` only."""
    value, _ = decode_record(data, 0)
    if not isinstance(value, dict):
        raise CorruptionError("response payload is not a mapping")
    status = value.get("status")
    if status not in ("ok", "not_found", "retry", "invalid", "error"):
        raise CorruptionError(f"unknown response status {status!r}")
    body = value.get("value", b"")
    if not isinstance(body, bytes):
        raise CorruptionError("response value must be bytes")
    raw_shards = value.get("shards", [])
    if not isinstance(raw_shards, list) or not all(
        isinstance(s, bytes) for s in raw_shards
    ):
        raise CorruptionError("response shards must be a list of bytes")
    count = value.get("count", 0)
    if not isinstance(count, int):
        raise CorruptionError("response count must be an integer")
    message = value.get("message", "")
    if not isinstance(message, str):
        raise CorruptionError("response message must be a string")
    return Response(
        status=status,
        value=body,
        shards=tuple(raw_shards),
        count=count,
        message=message,
    )


def dispatch(node: StorageNode, raw_request: bytes) -> bytes:
    """Decode, route, execute, and marshal one request.

    Malformed bytes become an ``invalid`` response rather than an
    exception: the node must shrug off garbage from the network exactly as
    it shrugs off garbage from the disk.
    """
    try:
        request = decode_request(raw_request)
    except CorruptionError as exc:
        return encode_response(Response(status="invalid", message=str(exc)))
    try:
        return encode_response(_execute(node, request))
    except InvalidRequestError as exc:
        return encode_response(Response(status="invalid", message=str(exc)))
    except NotFoundError as exc:
        return encode_response(Response(status="not_found", message=str(exc)))
    except RetryableError as exc:
        return encode_response(Response(status="retry", message=str(exc)))
    except ShardStoreError as exc:
        return encode_response(Response(status="error", message=str(exc)))


def _execute(node: StorageNode, request: Request) -> Response:
    if request.op == "get":
        return Response(status="ok", value=node.get(request.key))
    if request.op == "put":
        node.put(request.key, request.value)
        return Response(status="ok")
    if request.op == "delete":
        node.delete(request.key)
        return Response(status="ok")
    if request.op == "list":
        return Response(status="ok", shards=tuple(node.keys()))
    if request.op == "bulk_create":
        count = node.bulk_create(list(request.pairs))
        return Response(status="ok", count=count)
    if request.op == "bulk_delete":
        count = node.bulk_delete(list(request.keys))
        return Response(status="ok", count=count)
    if request.op == "migrate":
        moved = node.migrate_shard(request.key, request.target_disk)
        return Response(status="ok" if moved else "not_found")
    if request.op == "scrub":
        reports = node.scrub_all()
        bad = sum(len(report.errors) for report in reports.values())
        return Response(
            status="ok" if bad == 0 else "error",
            count=bad,
            message="" if bad == 0 else f"{bad} corrupt chunks found",
        )
    raise InvalidRequestError(f"unroutable op {request.op!r}")
